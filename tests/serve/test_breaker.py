"""Circuit-breaker state machine + its integration into QueryService."""

import pytest

from repro.runtime.faults import corrupt_md2d
from repro.runtime.ladder import QualityLevel
from repro.serve import (
    BreakerState,
    CircuitBreaker,
    MetricsRegistry,
    QueryRequest,
    QueryService,
)


class TestStateMachine:
    def test_starts_closed_and_allows_exact(self):
        breaker = CircuitBreaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow_exact()

    def test_consecutive_failures_trip_open(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow_exact()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_then_half_open_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ops=3)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # Two short-circuited rounds spend the cooldown down to its last
        # op...
        assert not breaker.allow_exact()
        assert not breaker.allow_exact()
        # ...and the call that spends that last op transitions to
        # HALF_OPEN and is itself the probe — no wasted round.
        assert breaker.allow_exact()
        assert breaker.state is BreakerState.HALF_OPEN
        # Until the probe resolves, further rounds keep probing.
        assert breaker.allow_exact()

    def test_cooldown_never_underflows_below_zero(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ops=1)
        breaker.record_failure()
        assert breaker.allow_exact()  # spends the single op: the probe
        breaker.record_failure()  # probe failed: re-open, full cooldown
        assert breaker.snapshot()["cooldown_remaining"] == 1
        assert breaker.allow_exact()  # again exactly one op to probe

    def test_half_open_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ops=1)
        breaker.record_failure()
        breaker.allow_exact()  # spends the cooldown -> HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens_immediately(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_ops=1)
        for _ in range(3):
            breaker.record_failure()
        breaker.allow_exact()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()  # one probe failure suffices
        assert breaker.state is BreakerState.OPEN

    def test_reset_forces_closed(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow_exact()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_ops=0)
        with pytest.raises(ValueError):
            CircuitBreaker(fallback=QualityLevel.EXACT_INDEXED)

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ops=4)
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "open"
        assert snapshot["opened_total"] == 1
        assert snapshot["fallback"] == "EXACT_FALLBACK"


class TestTransitionMetrics:
    def test_every_transition_is_counted(self):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_ops=2, metrics=metrics
        )
        breaker.record_failure()          # -> OPEN
        breaker.allow_exact()             # cooldown 1 (short-circuit)
        breaker.allow_exact()             # cooldown 0 -> HALF_OPEN probe
        breaker.record_success()          # -> CLOSED
        counters = metrics.snapshot()["counters"]
        assert counters["serve.breaker.opened"] == 1
        assert counters["serve.breaker.half_open"] == 1
        assert counters["serve.breaker.closed"] == 1
        # The transitioning call probes instead of short-circuiting.
        assert counters["serve.breaker.short_circuited"] == 1


class TestServiceIntegration:
    def _service(self, framework, **kwargs):
        return QueryService(
            framework,
            workers=1,
            breaker=CircuitBreaker(failure_threshold=2, cooldown_ops=3),
            integrity_gate=True,
            **kwargs,
        )

    def test_breaker_routes_to_exact_fallback(self, serve_framework):
        service = self._service(serve_framework)
        corrupt_md2d(serve_framework, mode="nan", count=2, seed=4)
        request = QueryRequest.range_query(
            serve_framework.objects.get(0).position, 8.0
        )
        response = service.execute(request)
        # The integrity gate detects the corruption; the request is served
        # degraded (breaker-flagged) instead of failing or lying.
        assert response.breaker
        assert response.quality is QualityLevel.EXACT_FALLBACK
        service.stop()

    def test_breaker_opens_then_recovers_after_heal(self, serve_framework):
        service = self._service(serve_framework)
        handle = corrupt_md2d(serve_framework, mode="negative", count=1, seed=5)
        position = serve_framework.objects.get(0).position
        for _ in range(2):  # two failures trip the threshold
            service.execute(QueryRequest.knn(position, 2))
        assert service.breaker.state is BreakerState.OPEN
        handle.undo()
        # Cooldown rounds still short-circuit (correct, exact fallback)...
        responses = [
            service.execute(QueryRequest.knn(position, 2)) for _ in range(2)
        ]
        assert all(r.breaker for r in responses)
        # ...then the round that spends the last cooldown op is the
        # half-open probe: it sees the healed index and closes.
        probe = service.execute(QueryRequest.knn(position, 2))
        assert not probe.breaker
        assert probe.quality is QualityLevel.EXACT_INDEXED
        assert service.breaker.state is BreakerState.CLOSED
        service.stop()

    def test_without_gate_corruption_raises_not_degrades(self, serve_framework):
        # The gate, not the breaker, is the detection layer: a service with
        # a breaker but no gate only degrades when the query itself throws.
        service = QueryService(
            serve_framework,
            workers=1,
            breaker=CircuitBreaker(failure_threshold=1, cooldown_ops=2),
            integrity_gate=False,
        )
        corrupt_md2d(serve_framework, mode="nan", count=3, seed=6)
        position = serve_framework.objects.get(0).position
        response = service.execute(QueryRequest.knn(position, 2))
        # NaN poison does not throw — it silently skews answers, which is
        # exactly what the chaos differential oracle exists to catch.
        assert response.quality is QualityLevel.EXACT_INDEXED
        service.stop()

    def test_breaker_state_in_metrics_snapshot(self, serve_framework):
        service = self._service(serve_framework)
        snapshot = service.metrics_snapshot()
        assert snapshot["breaker"]["state"] == "closed"
        service.breaker.record_failure()
        service.breaker.record_failure()
        assert service.metrics_snapshot()["breaker"]["state"] == "open"
        assert (
            service.metrics_snapshot()["counters"]["serve.breaker.opened"] == 1
        )
        service.stop()

    def test_deadline_blowout_counts_as_breaker_failure(self, serve_framework):
        from repro.exceptions import DeadlineExceededError

        breaker = CircuitBreaker(failure_threshold=1, cooldown_ops=2)
        service = QueryService(serve_framework, workers=1, breaker=breaker)
        # Simulate what the exact path does on DeadlineExceededError.
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        position = serve_framework.objects.get(0).position
        response = service.execute(QueryRequest.pt2pt(position, position))
        assert response.breaker
        assert response.quality is QualityLevel.EXACT_FALLBACK
        assert isinstance(DeadlineExceededError("x"), Exception)
        service.stop()
