"""Tests for the ``python -m repro`` command-line interface."""

import xml.etree.ElementTree as ET

import pytest

from repro.cli import main
from repro.io import save_space
from repro.model.figure1 import P, Q, build_figure1


@pytest.fixture
def plan_file(tmp_path):
    path = tmp_path / "plan.json"
    save_space(build_figure1(), path)
    return str(path)


class TestInfo:
    def test_clean_plan(self, plan_file, capsys):
        assert main(["info", plan_file]) == 0
        out = capsys.readouterr().out
        assert "partitions:  10" in out
        assert "doors:       11" in out
        assert "one-way:     2" in out
        assert "lint: clean" in out

    def test_dirty_plan_exits_nonzero(self, tmp_path, capsys):
        from repro.geometry import Point, Segment, rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(1, 2), one_way=True
        )
        path = tmp_path / "trap.json"
        save_space(builder.build(), path)
        assert main(["info", str(path)]) == 1
        assert "no-way-out" in capsys.readouterr().out


class TestDistance:
    def test_motivating_example(self, plan_file, capsys):
        code = main(
            ["distance", plan_file, str(P.x), str(P.y), str(Q.x), str(Q.y)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "distance: 3.24 m" in out
        assert "d15" in out

    def test_unreachable(self, tmp_path, capsys):
        from repro.geometry import Point, Segment, rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(2, 1), one_way=True
        )
        path = tmp_path / "oneway.json"
        save_space(builder.build(), path)
        assert main(["distance", str(path), "5", "5", "12", "2"]) == 1
        assert "unreachable" in capsys.readouterr().out


class TestRender:
    def test_renders_svg(self, plan_file, tmp_path, capsys):
        out_file = tmp_path / "plan.svg"
        assert main(["render", plan_file, "-o", str(out_file)]) == 0
        root = ET.fromstring(out_file.read_text())
        assert root.tag.endswith("svg")


class TestExport:
    def test_export_figure1_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "figure1.json"
        assert main(["export-figure1", str(out_file)]) == 0
        assert main(["info", str(out_file)]) == 0


class TestAudit:
    def test_audit_lists_traffic_and_failures(self, plan_file, capsys):
        assert main(["audit", plan_file]) == 0
        out = capsys.readouterr().out
        assert "door traffic" in out
        assert "single points of failure:" in out
        assert "d13" in out

    def test_audit_evacuation_safe(self, plan_file, capsys):
        assert main(["audit", plan_file, "--exits", "0"]) == 0
        assert "all partitions safe" in capsys.readouterr().out

    def test_audit_evacuation_trapped(self, tmp_path, capsys):
        from repro.geometry import Point, Segment, rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(1, 2), one_way=True
        )
        path = tmp_path / "trap.json"
        save_space(builder.build(), path)
        assert main(["audit", str(path), "--exits", "1"]) == 1
        assert "TRAPPED" in capsys.readouterr().out


class TestDot:
    def test_dot_output(self, plan_file, capsys):
        assert main(["dot", plan_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph indoor {")
        assert "dir=both" in out


class TestBenchPassthrough:
    def test_arguments_are_forwarded(self, monkeypatch):
        import repro.bench.__main__ as bench_cli

        received = {}

        def fake_main(argv):
            received["argv"] = argv
            return 0

        monkeypatch.setattr(bench_cli, "main", fake_main)
        assert main(["bench", "fig6", "fig7"]) == 0
        assert received["argv"] == ["fig6", "fig7"]


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
