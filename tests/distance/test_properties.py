"""Property-based tests of the distance layer on random indoor spaces.

These are the library's strongest correctness guarantees: on arbitrary
grid plans (with and without one-way doors), the three position-to-position
algorithms agree, distances form a metric-like structure, and the bulk
matrix builder matches the paper-faithful Algorithm-1 builder.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distance import (
    build_distance_matrix,
    build_distance_matrix_reference,
    d2d_distance,
    d2d_path,
    pt2pt_distance_basic,
    pt2pt_distance_memoized,
    pt2pt_distance_refined,
    pt2pt_path,
)
from tests.strategies import grid_plans, plan_with_points

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestAlgorithmAgreement:
    @RELAXED
    @given(plan_with_points(count=2))
    def test_all_algorithms_agree_on_bidirectional_plans(self, data):
        plan, (a, b) = data
        basic = pt2pt_distance_basic(plan.space, a, b)
        assert pt2pt_distance_refined(plan.space, a, b) == pytest.approx(basic)
        assert pt2pt_distance_memoized(plan.space, a, b) == pytest.approx(basic)

    @RELAXED
    @given(plan_with_points(count=2, one_way_probability=0.5))
    def test_all_algorithms_agree_with_one_way_doors(self, data):
        plan, (a, b) = data
        basic = pt2pt_distance_basic(plan.space, a, b)
        refined = pt2pt_distance_refined(plan.space, a, b)
        memoized = pt2pt_distance_memoized(plan.space, a, b)
        if math.isinf(basic):
            assert math.isinf(refined) and math.isinf(memoized)
        else:
            assert refined == pytest.approx(basic)
            assert memoized == pytest.approx(basic)

    @RELAXED
    @given(plan_with_points(count=2))
    def test_path_distance_matches_algorithms(self, data):
        plan, (a, b) = data
        path = pt2pt_path(plan.space, a, b)
        assert path.distance == pytest.approx(
            pt2pt_distance_refined(plan.space, a, b)
        )


class TestMetricStructure:
    @RELAXED
    @given(plan_with_points(count=1))
    def test_identity(self, data):
        plan, (a,) = data
        assert pt2pt_distance_refined(plan.space, a, a) == 0.0

    @RELAXED
    @given(plan_with_points(count=2))
    def test_symmetry_on_bidirectional_plans(self, data):
        plan, (a, b) = data
        forward = pt2pt_distance_refined(plan.space, a, b)
        backward = pt2pt_distance_refined(plan.space, b, a)
        assert forward == pytest.approx(backward)

    @RELAXED
    @given(plan_with_points(count=3))
    def test_triangle_inequality(self, data):
        plan, (a, b, c) = data
        ab = pt2pt_distance_refined(plan.space, a, b)
        bc = pt2pt_distance_refined(plan.space, b, c)
        ac = pt2pt_distance_refined(plan.space, a, c)
        assert ac <= ab + bc + 1e-6

    @RELAXED
    @given(plan_with_points(count=2))
    def test_distance_at_least_euclidean(self, data):
        """Walking can never beat the straight line."""
        plan, (a, b) = data
        assert pt2pt_distance_refined(plan.space, a, b) >= a.distance_to(b) - 1e-9

    @RELAXED
    @given(plan_with_points(count=2))
    def test_connected_plan_is_always_reachable(self, data):
        plan, (a, b) = data  # spanning-tree doors are all bidirectional
        assert not math.isinf(pt2pt_distance_refined(plan.space, a, b))


class TestDoorGraphConsistency:
    @RELAXED
    @given(grid_plans(one_way_probability=0.4))
    def test_bulk_matrix_matches_reference(self, plan):
        graph = plan.space.distance_graph
        bulk = build_distance_matrix(graph)
        reference = build_distance_matrix_reference(graph)
        np.testing.assert_allclose(bulk.matrix, reference.matrix)

    @RELAXED
    @given(grid_plans(one_way_probability=0.3), st.integers(0, 10_000))
    def test_d2d_path_legs_sum_to_distance(self, plan, pick):
        doors = plan.space.door_ids
        if len(doors) < 2:
            return
        source = doors[pick % len(doors)]
        target = doors[(pick * 7 + 3) % len(doors)]
        path = d2d_path(plan.space.distance_graph, source, target)
        if not path.is_reachable:
            assert math.isinf(
                d2d_distance(plan.space.distance_graph, source, target)
            )
            return
        graph = plan.space.distance_graph
        total = sum(
            graph.fd2d(partition, path.doors[i], path.doors[i + 1])
            for i, partition in enumerate(path.partitions)
        )
        assert total == pytest.approx(path.distance)

    @RELAXED
    @given(grid_plans())
    def test_matrix_symmetric_without_one_way_doors(self, plan):
        matrix = build_distance_matrix(plan.space.distance_graph).matrix
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-9)
