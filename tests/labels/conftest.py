"""Shared fixtures for the 2-hop labeling tests."""

import pytest

from repro.index import IndexFramework
from repro.model.figure1 import build_figure1
from repro.synthetic import BuildingConfig, generate_building


@pytest.fixture(scope="module")
def building_space():
    """A 3-floor synthetic building — multi-floor, staircases, ~34 doors."""
    return generate_building(
        BuildingConfig(floors=3, rooms_per_floor=6)
    ).space


@pytest.fixture(scope="module")
def building_pair(building_space):
    """(labels framework, matrix framework) over the same building."""
    return (
        IndexFramework.build(building_space, backend="labels"),
        IndexFramework.build(building_space, backend="matrix"),
    )


@pytest.fixture
def figure1_pair():
    """(labels framework, matrix framework) over a fresh Figure-1 space.

    Function-scoped: several tests mutate the topology afterwards.
    """
    space = build_figure1()
    return (
        IndexFramework.build(space, backend="labels"),
        IndexFramework.build(space, backend="matrix"),
    )
