"""Tests for multi-stop tour planning."""

import itertools
import random

import pytest

from repro.distance import pt2pt_distance_memoized
from repro.exceptions import QueryError, UnreachableError
from repro.geometry import Point, Segment, rectangle
from repro.model import IndoorSpaceBuilder
from repro.routing import plan_tour
from repro.routing.tour import _path_cost, _distance_table
from tests.strategies import build_grid_plan


@pytest.fixture(scope="module")
def corridor_space():
    """Three rooms in a row off a corridor — distances are intuitive."""
    builder = IndoorSpaceBuilder()
    builder.add_partition(1, rectangle(0, 4, 30, 8), name="corridor")
    for i in range(3):
        builder.add_partition(2 + i, rectangle(i * 10, 0, i * 10 + 10, 4))
        builder.add_door(
            1 + i,
            Segment(Point(i * 10 + 4, 4), Point(i * 10 + 6, 4)),
            connects=(2 + i, 1),
        )
    return builder.build()


class TestPlanTour:
    def test_visits_rooms_in_spatial_order(self, corridor_space):
        start = Point(1, 6)  # west end of the corridor
        stops = [Point(25, 2), Point(5, 2), Point(15, 2)]  # east, west, middle
        plan = plan_tour(corridor_space, start, stops)
        assert plan.order == (1, 2, 0)  # west room, middle room, east room
        assert plan.exact
        assert len(plan.leg_distances) == 3
        assert plan.total_distance == pytest.approx(sum(plan.leg_distances))

    def test_single_stop(self, corridor_space):
        start = Point(1, 6)
        stop = Point(15, 2)
        plan = plan_tour(corridor_space, start, [stop])
        assert plan.order == (0,)
        assert plan.total_distance == pytest.approx(
            pt2pt_distance_memoized(corridor_space, start, stop)
        )

    def test_no_stops_raises(self, corridor_space):
        with pytest.raises(QueryError):
            plan_tour(corridor_space, Point(1, 6), [])

    def test_unreachable_stop_raises(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(2, 1), one_way=True
        )
        space = builder.build()
        with pytest.raises(UnreachableError):
            plan_tour(space, Point(5, 5), [Point(12, 2)])

    def test_exact_matches_exhaustive_enumeration(self):
        plan_obj = build_grid_plan(3, 3, seed=5)
        rng = random.Random(3)
        start = plan_obj.random_interior_point(rng)
        stops = [plan_obj.random_interior_point(rng) for _ in range(5)]
        plan = plan_tour(plan_obj.space, start, stops)
        assert plan.exact
        table = _distance_table(plan_obj.space, start, stops)
        best = min(
            _path_cost(table, list(perm))
            for perm in itertools.permutations(range(5))
        )
        assert plan.total_distance == pytest.approx(best)

    def test_heuristic_mode_beyond_exact_limit(self):
        plan_obj = build_grid_plan(4, 3, seed=9)
        rng = random.Random(4)
        start = plan_obj.random_interior_point(rng)
        stops = [plan_obj.random_interior_point(rng) for _ in range(12)]
        plan = plan_tour(plan_obj.space, start, stops)
        assert not plan.exact
        assert sorted(plan.order) == list(range(12))  # every stop once
        assert plan.total_distance == pytest.approx(sum(plan.leg_distances))
        # The heuristic must beat (or match) the identity ordering.
        table = _distance_table(plan_obj.space, start, stops)
        assert plan.total_distance <= _path_cost(table, list(range(12))) + 1e-9

    def test_asymmetric_distances_are_respected(self):
        """A one-way door makes A -> B cheap and B -> A expensive; the
        planner must exploit the cheap direction."""
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10), name="A")
        builder.add_partition(2, rectangle(10, 0, 20, 10), name="B")
        builder.add_partition(3, rectangle(0, 10, 20, 14), name="loop corridor")
        # Direct shortcut A -> B (one-way), long way back via the corridor.
        builder.add_door(
            1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2), one_way=True
        )
        builder.add_door(2, Segment(Point(4, 10), Point(6, 10)), connects=(1, 3))
        builder.add_door(3, Segment(Point(14, 10), Point(16, 10)), connects=(2, 3))
        space = builder.build()
        start = Point(2, 5)  # in A
        stop_b = Point(18, 5)  # in B
        stop_a = Point(8, 2)  # in A
        plan = plan_tour(space, start, [stop_b, stop_a])
        # Visiting A's stop first, then using the one-way shortcut into B,
        # avoids ever paying the expensive B -> A direction.
        assert plan.order == (1, 0)
