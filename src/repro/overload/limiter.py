"""AIMD adaptive concurrency limiting against a latency SLO.

A fixed admission-queue bound is the wrong control surface for
overload: the queue length that keeps p99 inside the SLO depends on how
fast the hardware drains it, which varies per host and per workload
mix.  :class:`AdaptiveConcurrencyLimiter` replaces the fixed bound with
a limit the service *measures* its way to — classic
additive-increase / multiplicative-decrease over the served-latency
signal:

* every ``adjust_every`` completed requests, compare the windowed p99
  against ``slo_ms``;
* breach → multiplicative decrease (``limit ×= decrease_factor``,
  floored at ``min_limit``) — shed hard, recover capacity;
* healthy → additive increase (``limit += increase_by``, capped at
  ``max_limit``) — probe for headroom.

A single observation beyond ``brake_factor × slo_ms`` triggers an
immediate decrease (at most once per adjustment window) so a sudden
stall does not wait out the window while the queue melts down.

The limiter only *publishes* a limit; admission control stays where it
always was (``QueryService.submit`` occupancy shedding, the sharded
tier's in-flight gate).  Occupancy relative to ``limit`` feeds the
existing :class:`~repro.serve.service.ShedPolicy` quality ladder, so
"over the limit" degrades answers rung by rung instead of failing them.

Adjustment is op-counted — no wall clock — so limiter trajectories
replay deterministically from a workload's latency sequence.
"""

from __future__ import annotations

import math
from collections import deque
# Late-bound factory lookup (not ``from threading import Lock``) so
# the LockWitness session's patched factory sees these allocations.
import threading
from typing import Any, Deque, Dict, Optional

from repro.serve.metrics import MetricsRegistry


class AdaptiveConcurrencyLimiter:
    """AIMD concurrency limit tracking measured p99 vs ``slo_ms``."""

    def __init__(
        self,
        slo_ms: float = 100.0,
        initial_limit: int = 32,
        min_limit: int = 4,
        max_limit: int = 512,
        adjust_every: int = 32,
        increase_by: int = 2,
        decrease_factor: float = 0.6,
        brake_factor: float = 3.0,
        window: int = 256,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if not (1 <= min_limit <= initial_limit <= max_limit):
            raise ValueError(
                "limits must satisfy 1 <= min_limit <= initial_limit"
                " <= max_limit"
            )
        if adjust_every < 1:
            raise ValueError("adjust_every must be >= 1")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if increase_by < 1:
            raise ValueError("increase_by must be >= 1")
        self.slo_ms = float(slo_ms)
        self.min_limit = int(min_limit)
        self.max_limit = int(max_limit)
        self.adjust_every = int(adjust_every)
        self.increase_by = int(increase_by)
        self.decrease_factor = float(decrease_factor)
        self.brake_factor = float(brake_factor)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._limit = int(initial_limit)
        self._samples: Deque[float] = deque(maxlen=int(window))
        self._since_adjust = 0
        self._braked_this_window = False
        self._increases = 0
        self._decreases = 0
        self._last_p99_ms = 0.0

    @property
    def limit(self) -> int:
        """The current admission limit (concurrent/queued requests)."""
        with self._lock:
            return self._limit

    def occupancy(self, outstanding: int) -> float:
        """Outstanding work as a fraction of the current limit."""
        with self._lock:
            return outstanding / self._limit

    def observe(self, latency_ms: float) -> None:
        """Feed one served-request latency; adjusts the limit in-band."""
        decreased = increased = False
        with self._lock:
            self._samples.append(float(latency_ms))
            self._since_adjust += 1
            braking = (
                latency_ms > self.brake_factor * self.slo_ms
                and not self._braked_this_window
                and self._limit > self.min_limit
            )
            if braking:
                self._braked_this_window = True
                self._decrease_locked()
                decreased = True
            elif self._since_adjust >= self.adjust_every:
                self._since_adjust = 0
                self._braked_this_window = False
                self._last_p99_ms = self._p99_locked()
                if self._last_p99_ms > self.slo_ms:
                    self._decrease_locked()
                    decreased = True
                elif self._limit < self.max_limit:
                    self._limit = min(
                        self.max_limit, self._limit + self.increase_by
                    )
                    self._increases += 1
                    increased = True
        if decreased:
            self.metrics.increment("overload.limit_decreased")
        if increased:
            self.metrics.increment("overload.limit_increased")

    def _decrease_locked(self) -> None:
        self._limit = max(
            self.min_limit, int(self._limit * self.decrease_factor)
        )
        self._decreases += 1

    def _p99_locked(self) -> float:
        ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = max(0, math.ceil(0.99 * len(ordered)) - 1)
        return ordered[rank]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe state for readiness probes and reports."""
        with self._lock:
            return {
                "limit": self._limit,
                "slo_ms": self.slo_ms,
                "min_limit": self.min_limit,
                "max_limit": self.max_limit,
                "p99_ms": round(self._last_p99_ms, 3),
                "increases": self._increases,
                "decreases": self._decreases,
            }
