"""Topological significance of doors (paper §IV-A future research).

Two complementary notions:

* *betweenness*: a door that intermediate shortest paths keep passing
  through is a traffic concentrator — precompute harder around it, expect
  congestion at it;
* *criticality*: a door whose closure strictly reduces partition-level
  reachability is a single point of failure.

Both operate purely on the model layer (no object data needed).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.distance.door_to_door import d2d_path
from repro.model.builder import IndoorSpace
from repro.model.topology import Topology


def door_betweenness(
    space: IndoorSpace,
    sample_pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> Dict[int, float]:
    """Fraction of door-to-door shortest paths each door participates in.

    Endpoints count as participation (a door everyone starts or ends at is
    significant too).  With ``sample_pairs`` unset, all ordered door pairs
    are evaluated — O(N²) path computations, fine up to a few hundred doors;
    pass a sample for big buildings.

    Returns:
        door id → fraction in [0, 1] of evaluated reachable pairs whose
        shortest path visits the door.  0 for doors on no evaluated path.
    """
    door_ids = space.door_ids
    graph = space.distance_graph
    if sample_pairs is None:
        sample_pairs = [
            (a, b) for a in door_ids for b in door_ids if a != b
        ]
    counts: Dict[int, int] = {door_id: 0 for door_id in door_ids}
    evaluated = 0
    for source, target in sample_pairs:
        path = d2d_path(graph, source, target)
        if not path.is_reachable:
            continue
        evaluated += 1
        for door_id in set(path.doors):
            counts[door_id] += 1
    if evaluated == 0:
        return {door_id: 0.0 for door_id in door_ids}
    return {door_id: counts[door_id] / evaluated for door_id in door_ids}


def strongly_connected_partitions(space: IndoorSpace) -> List[FrozenSet[int]]:
    """The strongly connected components of the accessibility graph
    (iterative Tarjan), largest first."""
    graph = space.accessibility
    vertices = list(graph.vertices)
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    components: List[FrozenSet[int]] = []
    counter = [0]

    for root in vertices:
        if root in index_of:
            continue
        # Iterative Tarjan with an explicit work stack of (vertex, iterator).
        work = [(root, iter([e.target for e in graph.out_edges(root)]))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            vertex, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append(
                        (
                            successor,
                            iter(
                                [e.target for e in graph.out_edges(successor)]
                            ),
                        )
                    )
                    advanced = True
                    break
                if on_stack.get(successor):
                    lowlink[vertex] = min(lowlink[vertex], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
            if lowlink[vertex] == index_of[vertex]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == vertex:
                        break
                components.append(frozenset(component))
    components.sort(key=len, reverse=True)
    return components


def _reachable_pair_count(topology: Topology, closed_door: Optional[int]) -> int:
    """Number of ordered partition pairs (a, b), a != b, with a route from a
    to b when ``closed_door`` is impassable."""
    adjacency: Dict[int, List[int]] = {p: [] for p in topology.partition_ids}
    for source, target, door_id in topology.directed_edges():
        if door_id != closed_door:
            adjacency[source].append(target)
    total = 0
    for start in topology.partition_ids:
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        total += len(seen) - 1
    return total


def critical_doors(space: IndoorSpace) -> List[int]:
    """Doors whose closure strictly reduces partition reachability.

    A door between two partitions that are also connected another way is
    redundant; a door that is the only route between parts of the building
    is critical — close it (fire, security lockdown) and some partition pair
    becomes unreachable.  O(doors × (partitions + edges)).
    """
    topology = space.topology
    baseline = _reachable_pair_count(topology, closed_door=None)
    critical = []
    for door_id in topology.door_ids:
        if _reachable_pair_count(topology, closed_door=door_id) < baseline:
            critical.append(door_id)
    return critical
