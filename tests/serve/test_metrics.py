"""Counters, latency histograms, and the registry snapshot."""

import threading

import pytest

from repro.serve import Counter, LatencyHistogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("requests")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)

    def test_thread_safety(self):
        counter = Counter("x")

        def bump():
            for _ in range(1000):
                counter.increment()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestLatencyHistogram:
    def test_percentiles_nearest_rank(self):
        histogram = LatencyHistogram("lat")
        for value in range(1, 101):  # 1..100 ms
            histogram.observe(float(value))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0

    def test_percentile_bounds_checked(self):
        histogram = LatencyHistogram("lat")
        with pytest.raises(ValueError):
            histogram.percentile(0)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_empty_snapshot(self):
        snapshot = LatencyHistogram("lat").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_ms"] == 0.0

    def test_snapshot_fields(self):
        histogram = LatencyHistogram("lat")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["mean_ms"] == pytest.approx(2.5)
        assert snapshot["max_ms"] == 4.0

    def test_window_bounds_memory_but_count_is_exact(self):
        histogram = LatencyHistogram("lat", window=10)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        # Percentiles reflect the 10 most recent samples (90..99).
        assert histogram.percentile(50) >= 90.0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyHistogram("lat", window=0)


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_convenience_helpers(self):
        registry = MetricsRegistry()
        registry.increment("served", 3)
        registry.observe("lat", 12.0)
        assert registry.counter("served").value == 3
        assert registry.histogram("lat").count == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.increment("b")
        registry.increment("a", 2)
        registry.observe("lat", 5.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 2, "b": 1}
        assert snapshot["latency"]["lat"]["count"] == 1
        assert list(snapshot["counters"]) == ["a", "b"]  # sorted

    def test_snapshot_is_a_deep_copy(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.observe("lat", 5.0)
        snapshot = registry.snapshot()
        snapshot["counters"]["a"] = 99
        snapshot["latency"]["lat"]["count"] = 99
        assert registry.snapshot()["counters"]["a"] == 1
        assert registry.snapshot()["latency"]["lat"]["count"] == 1


class TestScopedMetrics:
    def test_prefix_namespaces_counters_and_histograms(self):
        registry = MetricsRegistry()
        scoped = registry.scoped("shard.2")
        scoped.increment("serve.requests", 3)
        scoped.observe("serve.latency_ms", 7.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["shard.2.serve.requests"] == 3
        assert snapshot["latency"]["shard.2.serve.latency_ms"]["count"] == 1

    def test_scopes_nest(self):
        registry = MetricsRegistry()
        registry.scoped("shard.0").scoped("serve").increment("requests")
        assert registry.snapshot()["counters"]["shard.0.serve.requests"] == 1

    def test_scoped_shares_the_parent_registry_objects(self):
        registry = MetricsRegistry()
        scoped = registry.scoped("shard.1")
        assert scoped.counter("x") is registry.counter("shard.1.x")
