"""Backend plumbing through ShardSpec and the materialize ladder."""

import pickle

import pytest

from repro.index import IndexFramework
from repro.shard import FloorPlacement
from repro.shard.spec import materialize, shard_specs


@pytest.fixture(scope="module")
def labels_shard_framework(shard_framework_fixture):
    """The shard population re-indexed through the labels backend."""
    return IndexFramework.build(
        shard_framework_fixture.space,
        list(shard_framework_fixture.objects),
        backend="labels",
    )


@pytest.fixture(scope="module")
def labels_specs(labels_shard_framework):
    placement = FloorPlacement.for_space(labels_shard_framework.space, 3)
    return shard_specs(labels_shard_framework, placement, cache_capacity=8)


class TestBackendField:
    def test_specs_carry_the_framework_backend(
        self, labels_specs, shard_framework_fixture
    ):
        assert all(spec.backend == "labels" for spec in labels_specs)
        placement = FloorPlacement.for_space(
            shard_framework_fixture.space, 3
        )
        dense = shard_specs(shard_framework_fixture, placement)
        assert all(spec.backend == "matrix" for spec in dense)

    def test_backend_survives_pickling(self, labels_specs):
        clone = pickle.loads(pickle.dumps(labels_specs[0]))
        assert clone.backend == "labels"
        assert clone == labels_specs[0]


class TestMaterialize:
    def test_rebuild_rung_honors_the_backend(self, labels_specs):
        framework, source, arena = materialize(labels_specs[0])
        assert source == "rebuild"
        assert arena is None
        assert framework.distance_index.kind == "labels"
        assert framework.build_config["backend"] == "labels"

    def test_arena_rung_is_skipped_for_labels(
        self, labels_shard_framework, shard_framework_fixture
    ):
        """A shared dense arena cannot serve a labels worker — the ladder
        must fall through to the next rung instead of attaching."""
        from repro.shard import SharedIndexArena

        placement = FloorPlacement.for_space(
            labels_shard_framework.space, 3
        )
        arena = SharedIndexArena.create(
            shard_framework_fixture.distance_index
        )
        try:
            spec = shard_specs(
                labels_shard_framework, placement, arena=arena
            )[0]
            assert spec.arena is not None
            framework, source, attached = materialize(spec)
            assert source == "rebuild"
            assert attached is None
            assert framework.distance_index.kind == "labels"
        finally:
            arena.unlink()

    def test_materialized_labels_match_the_dense_answers(
        self, labels_specs, shard_framework_fixture
    ):
        framework, _, _ = materialize(labels_specs[0])
        dense = shard_framework_fixture.distance_index
        for u in dense.door_ids:
            for v in dense.door_ids:
                assert framework.distance_index.distance(
                    u, v
                ) == dense.distance(u, v)
