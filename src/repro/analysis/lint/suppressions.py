"""Inline suppression syntax: ``# repro: noqa REP00x``.

Two forms, mirroring the granularity checkers need:

* **Line** — ``# repro: noqa REP002`` on (or trailing) the offending
  line suppresses the named rules there; ``# repro: noqa`` with no rule
  list suppresses every rule on that line.  Several rules may be listed,
  comma- or space-separated: ``# repro: noqa REP001, REP003``.
* **File** — ``# repro: noqa-file REP002`` anywhere in the first dozen
  lines suppresses the named rules (or, bare, all rules) for the whole
  file.  Use sparingly; prefer line-level suppression with a reason in
  the surrounding comment.

Suppressions are deliberate, reviewable exemptions; the committed
baseline (see :mod:`repro.analysis.lint.baseline`) is for *legacy* debt
that predates a rule.  New code should suppress (with justification) or
fix, never grow the baseline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

_LINE_RE = re.compile(r"#\s*repro:\s*noqa(?!-file)(?:\s+([A-Z0-9,\s]+?))?\s*(?:#|$)")
_FILE_RE = re.compile(r"#\s*repro:\s*noqa-file(?:\s+([A-Z0-9,\s]+?))?\s*(?:#|$)")
_RULE_RE = re.compile(r"[A-Z]+[0-9]+")

#: How many leading lines are scanned for ``noqa-file`` pragmas.
FILE_PRAGMA_WINDOW = 12

#: Sentinel rule-set meaning "every rule".
ALL_RULES: FrozenSet[str] = frozenset({"*"})


def _parse_rules(raw: Optional[str]) -> FrozenSet[str]:
    if raw is None:
        return ALL_RULES
    rules = frozenset(_RULE_RE.findall(raw))
    return rules or ALL_RULES


@dataclass(frozen=True)
class SuppressionTable:
    """Which rules are suppressed on which lines of one file."""

    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_wide: FrozenSet[str] = field(default_factory=frozenset)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionTable":
        by_line: Dict[int, FrozenSet[str]] = {}
        file_wide: FrozenSet[str] = frozenset()
        for number, text in enumerate(source.splitlines(), start=1):
            match = _LINE_RE.search(text)
            if match:
                rules = _parse_rules(match.group(1))
                by_line[number] = by_line.get(number, frozenset()) | rules
            if number <= FILE_PRAGMA_WINDOW:
                match = _FILE_RE.search(text)
                if match:
                    file_wide = file_wide | _parse_rules(match.group(1))
        return cls(by_line=by_line, file_wide=file_wide)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` may not be reported at ``line``."""
        if "*" in self.file_wide or rule in self.file_wide:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return "*" in rules or rule in rules
