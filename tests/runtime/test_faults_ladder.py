"""Acceptance tests for the fault harness and degradation ladder.

With every fault injected by ``runtime/faults.py`` — corrupt M_d2d, dropped
DPT records, mid-query index loss, stale epoch — range and kNN queries on
the Figure-1 plan must still return the *same result sets* as the exact
path, via a lower ladder rung, tagged correctly.  Never a wrong answer,
never a hang.
"""

import math

import pytest

from repro.exceptions import CorruptIndexError, QueryError
from repro.model.figure1 import P, Q
from repro.queries import knn_query, range_query
from repro.runtime import (
    QualityLevel,
    ResilientQueryEngine,
    check_index_integrity,
    corrupt_md2d,
    drop_dpt_records,
    install_flaky_distance_index,
    require_index_integrity,
)

RADII = [4.0, 9.0, 15.0]


@pytest.fixture
def resilient(figure1_framework):
    return ResilientQueryEngine(figure1_framework)


def _exact_range(framework, radius):
    return range_query(framework, P, radius)


def _exact_knn(framework, k):
    return knn_query(framework, P, k)


class TestMd2dCorruption:
    @pytest.mark.parametrize("mode", ["nan", "negative", "asymmetric"])
    def test_range_results_survive_corruption(
        self, figure1_framework, resilient, mode
    ):
        expected = {r: _exact_range(figure1_framework, r) for r in RADII}
        handle = corrupt_md2d(figure1_framework, mode, count=4, seed=11)
        try:
            for radius in RADII:
                result = resilient.range_query(P, radius)
                assert result.value == expected[radius], (mode, radius)
                assert result.quality is QualityLevel.EXACT_FALLBACK
                assert result.quality.is_exact
                assert result.failures  # the indexed rung was tried and failed
                assert result.failures[0].level is QualityLevel.EXACT_INDEXED
        finally:
            handle.undo()
        # After undo the exact indexed rung answers again.
        restored = resilient.range_query(P, RADII[0])
        assert restored.quality is QualityLevel.EXACT_INDEXED
        assert restored.value == expected[RADII[0]]

    @pytest.mark.parametrize("mode", ["nan", "negative"])
    def test_knn_results_survive_corruption(
        self, figure1_framework, resilient, mode
    ):
        expected = _exact_knn(figure1_framework, 5)
        handle = corrupt_md2d(figure1_framework, mode, count=3, seed=7)
        try:
            result = resilient.knn(P, k=5)
            assert result.quality is QualityLevel.EXACT_FALLBACK
            assert [oid for oid, _ in result.value] == [
                oid for oid, _ in expected
            ]
            for (_, got), (_, want) in zip(result.value, expected):
                assert got == pytest.approx(want)
        finally:
            handle.undo()

    def test_integrity_check_names_the_fault(self, figure1_framework):
        handle = corrupt_md2d(figure1_framework, "nan", count=2, seed=1)
        try:
            issues = check_index_integrity(figure1_framework)
            assert any(issue.code == "md2d-nan" for issue in issues)
            with pytest.raises(CorruptIndexError):
                require_index_integrity(figure1_framework)
        finally:
            handle.undo()
        assert check_index_integrity(figure1_framework) == []

    def test_corruption_is_seed_deterministic(self, figure1_framework):
        first = corrupt_md2d(figure1_framework, "negative", count=3, seed=42)
        cells_first = first.cells
        first.undo()
        second = corrupt_md2d(figure1_framework, "negative", count=3, seed=42)
        cells_second = second.cells
        second.undo()
        assert cells_first == cells_second

    def test_asymmetric_corruption_detected_without_one_way_doors(self):
        # A plan with no one-way doors must have a symmetric matrix, so the
        # asymmetry check fires there (Figure 1 has one-way doors, where
        # asymmetry is legitimate and the check stays silent).
        from repro.geometry import Point, Segment, rectangle
        from repro.index import IndexFramework
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 5, 5))
        builder.add_partition(2, rectangle(5, 0, 10, 5))
        builder.add_partition(3, rectangle(0, 5, 10, 8))
        builder.add_door(1, Segment(Point(5, 1), Point(5, 2)), connects=(1, 2))
        builder.add_door(2, Segment(Point(2, 5), Point(3, 5)), connects=(1, 3))
        builder.add_door(3, Segment(Point(7, 5), Point(8, 5)), connects=(2, 3))
        framework = IndexFramework.build(builder.build())
        assert check_index_integrity(framework) == []
        handle = corrupt_md2d(framework, "asymmetric", count=1, seed=0)
        try:
            issues = check_index_integrity(framework)
            assert any(i.code == "md2d-asymmetric" for i in issues)
        finally:
            handle.undo()


class TestDroppedDptRecords:
    def test_range_results_survive_dropped_records(
        self, figure1_framework, resilient
    ):
        expected = {r: _exact_range(figure1_framework, r) for r in RADII}
        handle = drop_dpt_records(figure1_framework, count=3, seed=5)
        try:
            for radius in RADII:
                result = resilient.range_query(P, radius)
                assert result.value == expected[radius]
                assert result.quality is QualityLevel.EXACT_FALLBACK
        finally:
            handle.undo()

    def test_explicit_door_selection(self, figure1_framework, resilient):
        expected = _exact_knn(figure1_framework, 3)
        handle = drop_dpt_records(figure1_framework, door_ids=[12, 15])
        try:
            assert not figure1_framework.dpt.has_record(12)
            issues = check_index_integrity(figure1_framework)
            assert any(issue.code == "dpt-missing" for issue in issues)
            result = resilient.knn(P, k=3)
            assert result.quality is QualityLevel.EXACT_FALLBACK
            assert [oid for oid, _ in result.value] == [
                oid for oid, _ in expected
            ]
        finally:
            handle.undo()
        assert figure1_framework.dpt.has_record(12)


class TestMidQueryIndexLoss:
    def test_range_survives_index_loss_mid_scan(
        self, figure1_framework, resilient
    ):
        expected = _exact_range(figure1_framework, 12.0)
        handle = install_flaky_distance_index(figure1_framework, fail_after=2)
        try:
            result = resilient.range_query(P, 12.0)
            assert result.value == expected
            assert result.quality is QualityLevel.EXACT_FALLBACK
            assert any(
                isinstance(f.error, CorruptIndexError) for f in result.failures
            )
        finally:
            handle.undo()

    def test_loss_before_first_lookup(self, figure1_framework, resilient):
        expected = _exact_knn(figure1_framework, 4)
        handle = install_flaky_distance_index(figure1_framework, fail_after=0)
        try:
            result = resilient.knn(P, k=4)
            assert result.quality is QualityLevel.EXACT_FALLBACK
            assert [oid for oid, _ in result.value] == [
                oid for oid, _ in expected
            ]
        finally:
            handle.undo()


class TestDeadlineDegradation:
    def test_zero_deadline_returns_euclidean_superset(
        self, figure1_framework, resilient
    ):
        exact = set(_exact_range(figure1_framework, 10.0))
        result = resilient.range_query(P, 10.0, deadline=0)
        assert result.quality is QualityLevel.EUCLIDEAN
        assert not result.quality.is_exact
        # The Euclidean rung filters on a lower bound: it can only
        # over-report, never miss a true member.
        assert exact <= set(result.value)
        # Every upper rung recorded its deadline failure.
        assert [f.level for f in result.failures] == [
            QualityLevel.EXACT_INDEXED,
            QualityLevel.EXACT_FALLBACK,
            QualityLevel.DOOR_COUNT,
        ]

    def test_door_count_range_never_false_positive(
        self, figure1_framework, resilient
    ):
        # Force the ladder past the exact rungs but leave door-count usable:
        # its walking distance upper-bounds the true walk, so its members
        # are a subset of the exact answer.
        from repro.runtime.ladder import door_count_range

        exact = set(_exact_range(figure1_framework, 9.0))
        approx = set(door_count_range(figure1_framework, P, 9.0))
        assert approx <= exact

    def test_strict_mode_reraises(self, figure1_framework):
        from repro.exceptions import DeadlineExceededError

        strict = ResilientQueryEngine(
            figure1_framework, degrade_on_deadline=False
        )
        with pytest.raises(DeadlineExceededError):
            strict.range_query(P, 10.0, deadline=0)


class TestInputValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_nonfinite_radius_rejected(self, figure1_framework, bad):
        with pytest.raises(QueryError):
            range_query(figure1_framework, P, bad)

    def test_nan_position_rejected_by_range(self, figure1_framework):
        from repro.geometry import Point

        with pytest.raises(QueryError):
            range_query(figure1_framework, Point(float("nan"), 5.0), 5.0)

    def test_nan_position_rejected_by_knn(self, figure1_framework):
        from repro.geometry import Point

        with pytest.raises(QueryError):
            knn_query(figure1_framework, Point(5.0, float("inf")), 2)

    def test_nan_position_rejected_by_engine_distance(self, figure1_framework):
        from repro.geometry import Point
        from repro.queries import QueryEngine

        engine = QueryEngine(figure1_framework)
        with pytest.raises(QueryError):
            engine.distance(Point(float("nan"), 1.0), Q)
        with pytest.raises(QueryError):
            engine.distance(P, Point(1.0, float("-inf")))

    def test_resilient_validates_before_degrading(self, resilient):
        # Bad inputs are caller errors: they must raise, not degrade.
        with pytest.raises(QueryError):
            resilient.range_query(P, float("nan"))
        with pytest.raises(QueryError):
            resilient.distance(P, Q, deadline=-1.0)


class TestDistanceLadder:
    def test_exact_by_default(self, figure1_framework, resilient):
        from repro.distance.point_to_point import pt2pt_distance

        exact = pt2pt_distance(figure1_framework.space, P, Q)
        result = resilient.distance(P, Q)
        assert result.value == pytest.approx(exact)
        assert result.quality is QualityLevel.EXACT_INDEXED

    def test_zero_deadline_falls_to_euclidean_lower_bound(
        self, figure1_framework, resilient
    ):
        from repro.distance.point_to_point import pt2pt_distance

        exact = pt2pt_distance(figure1_framework.space, P, Q)
        result = resilient.distance(P, Q, deadline=0)
        assert result.quality is QualityLevel.EUCLIDEAN
        assert result.value <= exact + 1e-9
        assert result.value == pytest.approx(math.hypot(P.x - Q.x, P.y - Q.y))


class TestFlakyProxyProtocols:
    """Regression: the proxy's ``__getattr__`` must fail cleanly, not loop.

    ``copy.copy`` / ``pickle`` probe dunders (``__copy__``,
    ``__reduce_ex__``'s helpers, ``__setstate__``) on instances — and on
    *uninitialised* instances, where ``_inner`` does not exist yet.  The
    old delegation turned those probes into infinite recursion (every
    ``self._inner`` lookup re-entered ``__getattr__``) or leaked the inner
    index's answers for protocols the proxy never implemented.
    """

    def test_missing_dunder_raises_attribute_error(self, figure1_framework):
        install_flaky_distance_index(figure1_framework, fail_after=100)
        proxy = figure1_framework.distance_index
        with pytest.raises(AttributeError):
            proxy.__copy__
        with pytest.raises(AttributeError):
            proxy.__deepcopy__

    def test_missing_inner_raises_attribute_error(self):
        from repro.runtime.faults import FlakyDistanceIndex

        half_built = FlakyDistanceIndex.__new__(FlakyDistanceIndex)
        with pytest.raises(AttributeError):
            half_built.anything  # noqa: B018 — the lookup is the test

    def test_copy_does_not_recurse(self, figure1_framework):
        import copy

        install_flaky_distance_index(figure1_framework, fail_after=100)
        proxy = figure1_framework.distance_index
        duplicate = copy.copy(proxy)
        assert duplicate._inner is proxy._inner

    def test_non_dunder_delegation_still_works(self, figure1_framework):
        install_flaky_distance_index(figure1_framework, fail_after=100)
        proxy = figure1_framework.distance_index
        assert proxy.size == len(proxy.door_ids)
