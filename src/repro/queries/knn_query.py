"""Algorithm 6: indoor nearest-neighbour queries, and the k > 1 extension.

Given a query position ``q``, return the object(s) with the smallest minimum
indoor walking distance from ``q``.  The search mirrors the range query's
door expansion, but the budget is the *current k-th best distance*, which
shrinks as candidates arrive: the sorted M_idx scan then prunes entire
partitions the moment a door's distance exceeds the bound — the effect the
paper measures in Figure 9.

An object can be reached through several doors at different costs, so the
result keeps the *minimum* distance per object id; the k-th best bound is
always computed over distinct objects (a subtlety the paper's pseudocode
glosses over — a bound over duplicated candidates would over-prune).
"""

from __future__ import annotations

import bisect
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.exceptions import QueryError
from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.queries.checks import require_finite_position

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.deadline import Deadline


class _TopK:
    """Running k-best distinct objects: dict for dedup, sorted mirror for
    the k-th-best bound."""

    def __init__(self, k: int) -> None:
        self._k = k
        self._best: Dict[int, float] = {}
        self._order: List[Tuple[float, int]] = []

    @property
    def bound(self) -> float:
        """Current k-th best distance (``inf`` while fewer than k found)."""
        if len(self._order) < self._k:
            return math.inf
        return self._order[self._k - 1][0]

    def offer(self, object_id: int, distance: float) -> None:
        """Consider a candidate; keeps the minimum distance per object."""
        old = self._best.get(object_id)
        if old is not None:
            if old <= distance:
                return
            index = bisect.bisect_left(self._order, (old, object_id))
            del self._order[index]
        self._best[object_id] = distance
        bisect.insort(self._order, (distance, object_id))

    def results(self) -> List[Tuple[int, float]]:
        """The up-to-k nearest ``(object_id, distance)``, nearest first."""
        return [(oid, dist) for dist, oid in self._order[: self._k]]


def knn_query(
    framework: IndexFramework,
    position: Point,
    k: int,
    use_index: bool = True,
    deadline: Optional["Deadline"] = None,
) -> List[Tuple[int, float]]:
    """The k objects nearest to ``position`` by indoor walking distance.

    Args:
        framework: the §IV index structures.
        position: the query position ``q`` (must lie in some partition).
        k: how many neighbours; must be >= 1.
        use_index: scan doors through M_idx (sorted, early-terminating) or
            through the raw M_d2d row (the paper's no-index baseline).
        deadline: optional cooperative time budget, checked once per door
            scanned; raises
            :class:`~repro.exceptions.DeadlineExceededError` on expiry.

    Returns:
        Up to ``k`` pairs ``(object_id, distance)``, nearest first (fewer
        when the building holds fewer reachable objects).

    Raises:
        QueryError: for k < 1 or a non-finite query position.
        StaleIndexError: when the space topology mutated after the
            framework was built.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    require_finite_position(position)
    framework.check_fresh()
    if deadline is not None:
        deadline.check("kNN query")
    space = framework.space
    host = space.require_host_partition(position)
    store = framework.objects

    top = _TopK(k)
    bucket = store.bucket(host.partition_id)
    if bucket is not None:
        for object_id, distance in bucket.nn_search(position, bound=math.inf, k=k):
            top.offer(object_id, distance)

    for di in sorted(space.topology.leaveable_doors(host.partition_id)):
        if deadline is not None:
            deadline.check("kNN query")
        to_door = space.dist_v(position, di, host)
        if math.isinf(to_door):
            continue
        scan = (
            framework.distance_index.doors_by_distance(di)
            if use_index
            else framework.distance_index.doors_unsorted(di)
        )
        for dj, door_distance in scan:
            if deadline is not None:
                deadline.check("kNN query")
            reach = to_door + door_distance
            if reach > top.bound:
                if use_index:
                    break  # sorted scan: everything farther only grows
                continue
            door_point = space.door(dj).midpoint
            for partition_id, _ in framework.dpt.record(dj).enterable():
                target_bucket = store.bucket(partition_id)
                if target_bucket is None:
                    continue
                local_bound = top.bound - reach
                if local_bound <= 0 and not math.isinf(top.bound):
                    # Only exact ties could live here; they cannot improve.
                    continue
                for object_id, distance in target_bucket.nn_search(
                    door_point, bound=local_bound, k=k
                ):
                    top.offer(object_id, reach + distance)
    return top.results()


def nn_query(
    framework: IndexFramework,
    position: Point,
    use_index: bool = True,
    deadline: Optional["Deadline"] = None,
) -> Optional[Tuple[int, float]]:
    """The single nearest neighbour (Algorithm 6 with k = 1), or ``None``
    when no object is reachable."""
    result = knn_query(
        framework, position, k=1, use_index=use_index, deadline=deadline
    )
    return result[0] if result else None
