"""Sharded-serving benchmark: ``python -m repro shard-bench``.

Measures what the shared-nothing multi-process tier of :mod:`repro.shard`
buys over both the paper's sequential model and the in-process
:class:`~repro.serve.service.QueryService`.  The same seeded workload as
the serving benchmark is answered three times:

* **naive** — a sequential :class:`~repro.queries.engine.QueryEngine`
  loop (the paper's model);
* **service** — the thread-pooled, batched + cached ``QueryService``
  (GIL-bound: worker threads share one interpreter);
* **sharded** — a :class:`~repro.shard.service.ShardedQueryService` with
  real worker *processes*, each holding one placement slice of the
  object population over the shared-memory distance indexes.

The sharded tier's edge does not depend on spare cores (this benchmark
is routinely run on single-CPU containers).  It comes from three
serving-tier properties the thread pool cannot have:

* **distance-aware scatter pruning** — the router skips shards whose
  M_d2d lower bound proves they cannot contribute, so most queries touch
  one worker;
* **send combining** — concurrent submissions coalesce into batched pipe
  messages, amortising IPC;
* **horizontally-scaled caching** — every process (router and each
  worker) gets the same ``cache_capacity`` budget, so the fleet's
  aggregate cache covers a working set that a single budget-bound cache
  keeps evicting.

All three runs must produce identical answers (``mismatches`` is
asserted 0 by the test suite, and the sharded run must stay
``EXACT_INDEXED`` with no partial responses — ``degraded`` must be 0),
so the interesting outputs are throughput and the two speedups:
``speedup`` (sharded vs naive) and ``speedup_vs_service`` (sharded vs
the thread tier) — the ratios ``repro bench --gate`` guards against
regression.

Scale is selected through ``REPRO_BENCH_SCALE`` like every other
harness: ``quick`` (default, seconds) or ``paper``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.index.framework import IndexFramework
from repro.queries.engine import QueryEngine
from repro.serve.requests import QueryKind
from repro.serve.service import QueryService
from repro.shard.service import ShardedQueryService
from repro.bench.serve import _answer_naive, build_serve_workload
from repro.synthetic import (
    BuildingConfig,
    build_object_store,
    generate_building,
)


@dataclass(frozen=True)
class ShardScale:
    """Workload shape for one sharded-benchmark scale.

    Attributes:
        name: scale label echoed into the result.
        floors: synthetic building height.
        objects: indoor objects populating the store.
        distinct_positions: position-pool size (zipf-ish repetition,
            exactly like the serving benchmark).
        total_requests: workload length.
        shards: worker processes in the sharded tier.
        client_threads: concurrent submitters driving the router.
        service_workers / max_batch: thread-tier configuration for the
            comparison run.
        cache_capacity: per-process answer-cache budget.  The thread tier
            gets one cache of this size; the sharded tier gets the same
            budget in its router *and* in every worker process, so the
            fleet's aggregate capacity is what sharding actually deploys.
            Sized below the workload's distinct-key count on purpose: a
            single budget-bound cache must evict, the fleet need not.
        knn_k: ``k`` for the kNN requests.
        range_radius: radius (metres) for the range requests.
    """

    name: str
    floors: int
    objects: int
    distinct_positions: int
    total_requests: int
    shards: int
    client_threads: int
    service_workers: int
    max_batch: int
    cache_capacity: int
    knn_k: int
    range_radius: float


SHARD_QUICK = ShardScale(
    name="quick",
    floors=5,
    objects=8_000,
    distinct_positions=96,
    total_requests=960,
    shards=3,
    client_threads=12,
    service_workers=4,
    max_batch=16,
    cache_capacity=64,
    knn_k=10,
    range_radius=25.0,
)

SHARD_PAPER = ShardScale(
    name="paper",
    floors=10,
    objects=20_000,
    distinct_positions=200,
    total_requests=4_000,
    shards=4,
    client_threads=16,
    service_workers=4,
    max_batch=32,
    cache_capacity=128,
    knn_k=50,
    range_radius=30.0,
)


def current_shard_scale() -> ShardScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").strip().lower()
    if name == "paper":
        return SHARD_PAPER
    return SHARD_QUICK


def measure_shard(
    scale: Optional[ShardScale] = None,
    seed: int = 0,
    start_method: str = "spawn",
) -> Dict[str, Any]:
    """Run the sharded benchmark; returns one JSON-ready result dict.

    Both served tiers get the same answer-cache capacity so the
    comparison isolates the execution model (threads vs processes), not
    the cache.  ``start_method`` exists for the test suite (``fork``
    starts an order of magnitude faster); startup time is excluded from
    the measured walls either way.
    """
    scale = scale or current_shard_scale()
    building = generate_building(BuildingConfig(floors=scale.floors))
    building.space.distance_graph.precompute()
    store = build_object_store(building, scale.objects, seed=seed)
    framework = IndexFramework.build(building.space).with_objects(store)
    engine = QueryEngine(framework)
    requests = build_serve_workload(building, scale, seed=seed)
    mix = {
        kind.value: sum(1 for r in requests if r.kind is kind)
        for kind in QueryKind
    }
    cache_capacity = scale.cache_capacity

    start = time.perf_counter()
    naive_values = [_answer_naive(engine, request) for request in requests]
    naive_wall_s = time.perf_counter() - start

    service = QueryService(
        engine,
        workers=scale.service_workers,
        max_batch=scale.max_batch,
        queue_capacity=2 * scale.total_requests,  # never shed: exact answers
        cache_capacity=cache_capacity,
    )
    with service:
        start = time.perf_counter()
        service_responses = service.serve(requests)
        service_wall_s = time.perf_counter() - start

    sharded = ShardedQueryService(
        framework=framework,
        shards=scale.shards,
        client_threads=scale.client_threads,
        cache_capacity=cache_capacity,
        start_method=start_method,
    )
    with sharded:
        start = time.perf_counter()
        shard_responses = sharded.serve(requests)
        shard_wall_s = time.perf_counter() - start
        readiness = sharded.readiness()
    restarts = sum(
        detail["restarts"]
        for detail in readiness["supervision"]["shards"].values()
    )

    mismatches = sum(
        1
        for response, expected in zip(service_responses, naive_values)
        if response.value != expected
    ) + sum(
        1
        for response, expected in zip(shard_responses, naive_values)
        if response.value != expected
    )
    degraded = sum(
        1
        for response in shard_responses
        if not response.quality.is_exact or response.partial
    )

    naive_qps = len(requests) / naive_wall_s if naive_wall_s else 0.0
    service_qps = len(requests) / service_wall_s if service_wall_s else 0.0
    shard_qps = len(requests) / shard_wall_s if shard_wall_s else 0.0
    return {
        "scale": scale.name,
        "seed": seed,
        "cpus": os.cpu_count(),
        "floors": scale.floors,
        "objects": scale.objects,
        "requests": len(requests),
        "distinct_positions": scale.distinct_positions,
        "cache_capacity": cache_capacity,
        "mix": mix,
        "naive": {"wall_s": naive_wall_s, "qps": naive_qps},
        "service": {
            "wall_s": service_wall_s,
            "qps": service_qps,
            "workers": scale.service_workers,
            "max_batch": scale.max_batch,
        },
        "sharded": {
            "wall_s": shard_wall_s,
            "qps": shard_qps,
            "shards": scale.shards,
            "client_threads": scale.client_threads,
            "start_method": start_method,
            "restarts": restarts,
            "degraded": degraded,
        },
        "speedup": shard_qps / naive_qps if naive_qps else 0.0,
        "speedup_vs_service": shard_qps / service_qps if service_qps else 0.0,
        "mismatches": mismatches,
    }


def render_shard_summary(result: Dict[str, Any]) -> str:
    """A short plain-text summary of one :func:`measure_shard` result."""
    sharded = result["sharded"]
    return "\n".join([
        f"shard-bench  scale={result['scale']}  seed={result['seed']}",
        f"  workload: {result['requests']} requests over "
        f"{result['distinct_positions']} positions "
        f"(mix {result['mix']})",
        f"  naive:    {result['naive']['qps']:.1f} qps "
        f"({result['naive']['wall_s']:.3f} s)",
        f"  service:  {result['service']['qps']:.1f} qps "
        f"({result['service']['wall_s']:.3f} s, "
        f"{result['service']['workers']} threads)",
        f"  sharded:  {sharded['qps']:.1f} qps "
        f"({sharded['wall_s']:.3f} s, {sharded['shards']} workers, "
        f"{sharded['client_threads']} clients)",
        f"  speedup:  {result['speedup']:.2f}x vs naive   "
        f"{result['speedup_vs_service']:.2f}x vs service",
        f"  mismatches: {result['mismatches']}   "
        f"degraded: {sharded['degraded']}   "
        f"restarts: {sharded['restarts']}",
    ])
