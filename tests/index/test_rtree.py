"""Tests for the STR bulk-loaded partition R-tree."""

import random

import pytest

from repro.geometry import Point, Segment, rectangle
from repro.index import PartitionRTree
from repro.model import IndoorSpaceBuilder, PartitionKind
from repro.model.figure1 import HALLWAY, P, Q, ROOM_13, build_figure1


@pytest.fixture(scope="module")
def space():
    return build_figure1()


@pytest.fixture(scope="module")
def rtree(space):
    return PartitionRTree(space)


class TestLocate:
    def test_known_points(self, rtree):
        assert rtree.locate(P) == ROOM_13
        assert rtree.locate(Q) == HALLWAY

    def test_outside_everything(self, rtree):
        assert rtree.locate(Point(100, 100)) is None
        assert rtree.locate(Point(5, 5, floor=7)) is None

    def test_shared_wall_resolves_to_lowest_id(self, rtree):
        assert rtree.locate(Point(8, 6)) == HALLWAY

    def test_matches_linear_scan_on_random_points(self, space, rtree):
        rng = random.Random(123)
        space.set_partition_locator(None)  # force the linear fallback
        try:
            for _ in range(300):
                point = Point(rng.uniform(-6, 22), rng.uniform(-2, 16))
                linear = space.get_host_partition(point)
                expected = None if linear is None else linear.partition_id
                assert rtree.locate(point) == expected, point
        finally:
            space.set_partition_locator(None)

    def test_candidate_partitions_are_a_superset(self, space, rtree):
        rng = random.Random(5)
        for _ in range(100):
            point = Point(rng.uniform(-6, 22), rng.uniform(-2, 16))
            candidates = set(rtree.candidate_partitions(point))
            actual = {
                p.partition_id for p in space.partitions() if p.contains(point)
            }
            assert actual <= candidates


class TestStructure:
    def test_height_is_positive(self, rtree):
        assert rtree.height >= 1

    def test_small_capacity_grows_height(self, space):
        tall = PartitionRTree(space, node_capacity=2)
        assert tall.height >= 2
        # Same answers regardless of fan-out.
        assert tall.locate(P) == ROOM_13

    def test_capacity_validation(self, space):
        with pytest.raises(ValueError):
            PartitionRTree(space, node_capacity=1)

    def test_empty_space(self):
        builder = IndoorSpaceBuilder()
        empty = builder.build()
        tree = PartitionRTree(empty)
        assert tree.height == 0
        assert tree.locate(Point(0, 0)) is None

    def test_large_synthetic_layout(self):
        # A 20x20 grid of rooms exercises multi-level STR packing.
        builder = IndoorSpaceBuilder()
        for row in range(20):
            for col in range(20):
                pid = row * 20 + col + 1
                builder.add_partition(
                    pid, rectangle(col * 5, row * 5, col * 5 + 5, row * 5 + 5)
                )
        space = builder.build()
        tree = PartitionRTree(space, node_capacity=4)
        assert tree.height >= 3
        rng = random.Random(9)
        for _ in range(200):
            col, row = rng.randrange(20), rng.randrange(20)
            point = Point(col * 5 + 2.5, row * 5 + 2.5)
            assert tree.locate(point) == row * 20 + col + 1


class TestMultiFloor:
    def test_floor_filtering(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10, floor=0))
        builder.add_partition(2, rectangle(0, 0, 10, 10, floor=1))
        builder.add_partition(
            3,
            rectangle(10, 0, 14, 4, floor=0),
            PartitionKind.STAIRCASE,
            stair_length=6.0,
        )
        builder.add_door(1, Segment(Point(10, 1), Point(10, 3)), connects=(1, 3))
        builder.add_door(
            2, Segment(Point(10, 1, 1), Point(10, 3, 1)), connects=(3, 2)
        )
        space = builder.build()
        tree = PartitionRTree(space)
        assert tree.locate(Point(5, 5, 0)) == 1
        assert tree.locate(Point(5, 5, 1)) == 2
        # The staircase spans both floors.
        assert tree.locate(Point(12, 2, 0)) == 3
        assert tree.locate(Point(12, 2, 1)) == 3
        assert tree.locate(Point(5, 5, 2)) is None


class TestInstall:
    def test_install_wires_the_space(self):
        space = build_figure1()
        tree = PartitionRTree(space).install()
        assert space.get_host_partition(P).partition_id == ROOM_13
        space.set_partition_locator(None)
