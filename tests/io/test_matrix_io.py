"""Round-trip tests for NPZ distance-matrix persistence."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.index import DistanceIndexMatrix
from repro.io import load_distance_index, save_distance_index
from repro.model.figure1 import build_figure1


@pytest.fixture(scope="module")
def index():
    return DistanceIndexMatrix.build(build_figure1().distance_graph)


class TestMatrixRoundTrip:
    def test_round_trip(self, index, tmp_path):
        path = tmp_path / "matrix.npz"
        save_distance_index(index, path)
        restored = load_distance_index(path)
        assert restored.door_ids == index.door_ids
        np.testing.assert_allclose(restored.md2d, index.md2d)
        np.testing.assert_array_equal(restored.midx, index.midx)

    def test_scans_work_after_reload(self, index, tmp_path):
        path = tmp_path / "matrix.npz"
        save_distance_index(index, path)
        restored = load_distance_index(path)
        first_door = index.door_ids[0]
        assert list(restored.doors_by_distance(first_door)) == list(
            index.doors_by_distance(first_door)
        )

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_distance_index(tmp_path / "nope.npz")

    def test_corrupted_shape_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path, matrix=np.zeros((3, 4)), door_ids=np.array([1, 2, 3])
        )
        with pytest.raises(SerializationError):
            load_distance_index(path)

    def test_mismatched_ids_raise(self, tmp_path):
        path = tmp_path / "bad2.npz"
        np.savez_compressed(
            path, matrix=np.zeros((3, 3)), door_ids=np.array([1, 2])
        )
        with pytest.raises(SerializationError):
            load_distance_index(path)
