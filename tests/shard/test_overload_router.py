"""Overload-path router tests: all-breakers-open gap fill, hedged
scatter-gather bit-identity, and the shed fast path.

The all-breakers-open scenario is the total-outage floor of the
degradation ladder: every shard breaker is OPEN, no probe reaches the
fleet, and the router must still answer every query from its local
object tables at the Euclidean rung — supersets for range, lower-bound
distances for kNN / pt2pt — with ``missing_shards`` naming the gap.
Never an exception, never a truncated answer.
"""

import pytest

from repro.overload import HedgePolicy, RetryBudget
from repro.queries import QueryEngine
from repro.runtime import QualityLevel
from repro.runtime.ladder import euclidean_lower_bound
from repro.serve import BreakerState, QueryRequest

from tests.shard.conftest import make_service


@pytest.fixture(scope="module")
def overload_service(shard_framework_fixture):
    """A private 3-shard fleet (breaker state is mutated in here)."""
    service = make_service(shard_framework_fixture)
    service.start(wait=True)
    yield service
    service.shutdown()


def trip_all_breakers(router):
    for breaker in router._breakers.values():
        while breaker.state is not BreakerState.OPEN:
            breaker.record_failure()


class TestAllBreakersOpen:
    """Satellite: total outage still answers, degraded and flagged."""

    @pytest.fixture(autouse=True)
    def tripped(self, overload_service):
        router = overload_service.router
        trip_all_breakers(router)
        yield
        router.reset_breakers()

    def test_range_is_a_flagged_euclidean_superset(
        self, overload_service, shard_framework_fixture, shard_positions
    ):
        engine = QueryEngine(shard_framework_fixture)
        position = shard_positions[0]
        request = QueryRequest.range_query(position, radius=10.0)
        response = overload_service.execute(request)
        assert response.quality is QualityLevel.EUCLIDEAN
        assert response.missing_shards
        assert response.breaker
        # Superset of the exact answer: the Euclidean bound never
        # excludes a truly in-range object, so nothing is truncated.
        exact = set(engine.range_query(position, 10.0))
        assert exact <= set(response.value)

    def test_knn_reports_lower_bound_distances_for_all_objects(
        self, overload_service, shard_framework_fixture, shard_positions
    ):
        position = shard_positions[1]
        request = QueryRequest.knn(position, k=5)
        response = overload_service.execute(request)
        assert response.quality is QualityLevel.EUCLIDEAN
        assert len(response.value) == 5  # never truncated below k
        # With every shard missing the gap fill ranks the full object
        # table by Euclidean bound — compare against brute force.
        expected = sorted(
            (euclidean_lower_bound(position, obj.position), obj.object_id)
            for obj in shard_framework_fixture.objects
        )[:5]
        assert response.value == [(oid, dist) for dist, oid in expected]

    def test_knn_missing_shards_cover_every_populated_shard(
        self, overload_service, shard_positions
    ):
        response = overload_service.execute(
            QueryRequest.knn(shard_positions[2], k=3)
        )
        router = overload_service.router
        populated = {
            shard for shard, table in router._objects.items() if table
        }
        assert set(response.missing_shards) == populated

    def test_pt2pt_falls_back_to_the_euclidean_bound(
        self, overload_service, shard_positions
    ):
        source, target = shard_positions[3], shard_positions[4]
        response = overload_service.execute(
            QueryRequest.pt2pt(source, target)
        )
        assert response.quality is QualityLevel.EUCLIDEAN
        assert response.value == pytest.approx(
            euclidean_lower_bound(source, target)
        )
        assert response.missing_shards

    def test_recovers_to_exact_after_breakers_reset(
        self, overload_service, shard_positions
    ):
        overload_service.reset_breakers()
        response = overload_service.execute(
            QueryRequest.range_query(shard_positions[0], radius=10.0)
        )
        assert response.quality is QualityLevel.EXACT_INDEXED
        assert not response.missing_shards


class TestShedExecute:
    def test_shed_range_matches_local_euclidean_filter(
        self, overload_service, shard_framework_fixture, shard_positions
    ):
        router = overload_service.router
        position = shard_positions[5]
        response = router.shed_execute(
            QueryRequest.range_query(position, radius=9.0)
        )
        assert response.shed
        assert response.quality is QualityLevel.EUCLIDEAN
        expected = sorted(
            obj.object_id
            for obj in shard_framework_fixture.objects
            if euclidean_lower_bound(position, obj.position) <= 9.0 + 1e-9
        )
        assert response.value == expected

    def test_shed_knn_ranks_by_euclidean_bound(
        self, overload_service, shard_framework_fixture, shard_positions
    ):
        router = overload_service.router
        position = shard_positions[6]
        response = router.shed_execute(QueryRequest.knn(position, k=4))
        expected = sorted(
            (euclidean_lower_bound(position, obj.position), obj.object_id)
            for obj in shard_framework_fixture.objects
        )[:4]
        assert response.value == [(oid, dist) for dist, oid in expected]

    def test_shed_pt2pt_is_the_euclidean_bound(
        self, overload_service, shard_positions
    ):
        router = overload_service.router
        source, target = shard_positions[7], shard_positions[8]
        response = router.shed_execute(QueryRequest.pt2pt(source, target))
        assert response.value == pytest.approx(
            euclidean_lower_bound(source, target)
        )


class TestHedgedScatterGather:
    """Hedging changes tail latency, never results."""

    @pytest.fixture(scope="class")
    def hedged_service(self, shard_framework_fixture):
        # fixed_delay_s=0.0 hedges every probe still pending at gather
        # time — the most hedge-heavy configuration possible.
        service = make_service(
            shard_framework_fixture,
            hedge_policy=HedgePolicy(fixed_delay_s=0.0),
            retry_budget=RetryBudget(capacity=1024.0),
        )
        service.start(wait=True)
        yield service
        service.shutdown()

    def test_hedged_answers_are_bit_identical_to_unhedged(
        self, overload_service, hedged_service, shard_positions
    ):
        overload_service.reset_breakers()
        requests = (
            [
                QueryRequest.range_query(p, radius=8.0)
                for p in shard_positions
            ]
            + [QueryRequest.knn(p, k=4) for p in shard_positions]
            + [
                QueryRequest.pt2pt(shard_positions[i], shard_positions[-1 - i])
                for i in range(4)
            ]
        )
        for request in requests:
            plain = overload_service.execute(request)
            hedged = hedged_service.execute(request)
            assert hedged.value == plain.value
            assert hedged.quality is plain.quality
            assert hedged.quality is QualityLevel.EXACT_INDEXED

    def test_hedges_were_actually_issued(self, hedged_service):
        counters = hedged_service.metrics_snapshot()["counters"]
        assert counters.get("overload.hedged", 0) > 0
