"""Floor-plan diagnostics beyond the builder's hard constraints.

The builder rejects structurally invalid plans (doors touching three
partitions, doors floating outside their partitions); this module *lints*
plans for the softer mistakes that produce surprising distances rather than
errors:

* partitions whose interiors overlap (positions resolve ambiguously);
* doors whose midpoint does not lie on the shared boundary of the two
  partitions they connect (teleport-like doors);
* partitions that cannot be left, cannot be entered, or are disconnected
  from the rest of the plan;
* obstacles poking outside their partition outline.

Each finding is an :class:`Issue` with a severity; :func:`validate_space`
returns all of them so tools can render a report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.geometry.primitives import Point
from repro.model.builder import IndoorSpace


class Severity(enum.Enum):
    """How bad a finding is."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Issue:
    """One diagnostic finding.

    Attributes:
        severity: error (distances will be wrong / undefined) or warning
            (legal but suspicious).
        code: stable machine-readable identifier.
        message: human-readable description.
    """

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


def _interiors_overlap(space: IndoorSpace, a, b) -> bool:
    """Approximate interior-overlap test via mutual sampling.

    Exact polygon intersection is overkill for a linter; sampling interior
    points of each polygon against the other catches real overlaps.
    """
    if not a.polygon.bounding_box.intersects(b.polygon.bounding_box):
        return False
    for first, second in ((a, b), (b, a)):
        box = first.polygon.bounding_box
        steps = 6
        for i in range(1, steps):
            for j in range(1, steps):
                point = Point(
                    box.min_x + (box.max_x - box.min_x) * i / steps,
                    box.min_y + (box.max_y - box.min_y) * j / steps,
                    first.polygon.floor,
                )
                if first.polygon.strictly_contains_point(
                    point
                ) and second.polygon.strictly_contains_point(point):
                    return True
    return False


def check_partition_overlaps(space: IndoorSpace) -> List[Issue]:
    """Partitions on a common floor whose interiors overlap."""
    issues: List[Issue] = []
    partitions = list(space.partitions())
    for i, a in enumerate(partitions):
        for b in partitions[i + 1 :]:
            if not set(a.floors) & set(b.floors):
                continue
            if _interiors_overlap(space, a, b):
                issues.append(
                    Issue(
                        Severity.ERROR,
                        "partition-overlap",
                        f"{a.label} and {b.label} have overlapping interiors; "
                        "getHostPartition is ambiguous inside the overlap",
                    )
                )
    return issues


def check_door_placement(space: IndoorSpace) -> List[Issue]:
    """Doors whose midpoint is not on the boundary of both partitions."""
    issues: List[Issue] = []
    for door_id in space.door_ids:
        door = space.door(door_id)
        for partition_id in space.topology.partitions_of(door_id):
            partition = space.partition(partition_id)
            midpoint = door.midpoint
            if midpoint.floor not in partition.floors:
                issues.append(
                    Issue(
                        Severity.ERROR,
                        "door-floor-mismatch",
                        f"{door.label} is on floor {midpoint.floor} but "
                        f"{partition.label} spans {partition.floors}",
                    )
                )
                continue
            projected = midpoint.on_floor(partition.polygon.floor)
            on_boundary = any(
                edge.contains_point(projected, tol=1e-6)
                for edge in partition.polygon.edges()
            )
            if not on_boundary:
                inside = partition.polygon.strictly_contains_point(projected)
                issues.append(
                    Issue(
                        Severity.WARNING,
                        "door-off-wall",
                        f"{door.label} midpoint {midpoint} is "
                        f"{'inside' if inside else 'outside'} {partition.label} "
                        "rather than on its wall",
                    )
                )
    return issues


def check_connectivity(space: IndoorSpace) -> List[Issue]:
    """Partitions that cannot be entered, cannot be left, or are isolated."""
    issues: List[Issue] = []
    topology = space.topology
    if space.num_partitions <= 1:
        return issues
    for partition in space.partitions():
        pid = partition.partition_id
        enterable = topology.enterable_doors(pid)
        leaveable = topology.leaveable_doors(pid)
        if not enterable and not leaveable:
            issues.append(
                Issue(
                    Severity.WARNING,
                    "isolated-partition",
                    f"{partition.label} has no doors at all",
                )
            )
        elif not leaveable:
            issues.append(
                Issue(
                    Severity.WARNING,
                    "no-way-out",
                    f"{partition.label} can be entered but never left "
                    "(one-way trap)",
                )
            )
        elif not enterable:
            issues.append(
                Issue(
                    Severity.WARNING,
                    "no-way-in",
                    f"{partition.label} can be left but never entered",
                )
            )
    if not space.accessibility.is_strongly_connected():
        issues.append(
            Issue(
                Severity.WARNING,
                "not-strongly-connected",
                "some partition pairs have no connecting route "
                "(may be intentional for one-way spaces)",
            )
        )
    return issues


def check_obstacles(space: IndoorSpace) -> List[Issue]:
    """Obstacles whose vertices leave their partition outline."""
    issues: List[Issue] = []
    for partition in space.partitions():
        for index, obstacle in enumerate(partition.obstacles):
            outside = [
                v
                for v in obstacle.vertices
                if not partition.polygon.contains_point(v, tol=1e-6)
            ]
            if outside:
                issues.append(
                    Issue(
                        Severity.ERROR,
                        "obstacle-outside-partition",
                        f"obstacle #{index} of {partition.label} has "
                        f"{len(outside)} vertices outside the outline",
                    )
                )
    return issues


def validate_space(space: IndoorSpace) -> List[Issue]:
    """Run every check; errors first, then warnings, each group stably
    ordered by check."""
    issues = (
        check_partition_overlaps(space)
        + check_door_placement(space)
        + check_connectivity(space)
        + check_obstacles(space)
    )
    issues.sort(key=lambda issue: (issue.severity is not Severity.ERROR,))
    return issues
