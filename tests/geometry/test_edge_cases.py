"""Geometry edge cases: degenerate inputs, boundary coincidences, convexity."""


from repro.geometry import BoundingBox, Point, Polygon, Segment, rectangle


class TestZeroLengthSegments:
    def test_zero_length_segment_is_legal(self):
        seg = Segment(Point(3, 3), Point(3, 3))
        assert seg.length == 0.0
        assert seg.midpoint == Point(3, 3)

    def test_zero_length_contains_only_its_point(self):
        seg = Segment(Point(3, 3), Point(3, 3))
        assert seg.contains_point(Point(3, 3))
        assert not seg.contains_point(Point(3, 3.1))

    def test_zero_length_intersection(self):
        dot = Segment(Point(1, 1), Point(1, 1))
        through = Segment(Point(0, 0), Point(2, 2))
        assert dot.intersects(through)
        assert not dot.properly_intersects(through)


class TestDegenerateBoxes:
    def test_zero_area_box_is_legal(self):
        box = BoundingBox(2, 3, 2, 3)
        assert box.area == 0.0
        assert box.contains_point(Point(2, 3))
        assert not box.contains_point(Point(2.1, 3))

    def test_line_box(self):
        box = BoundingBox(0, 5, 10, 5)
        assert box.height == 0
        assert box.intersects(BoundingBox(5, 0, 6, 10))


class TestConvexity:
    def test_rectangle_is_convex(self):
        assert rectangle(0, 0, 4, 2).is_convex()

    def test_triangle_is_convex(self):
        assert Polygon([Point(0, 0), Point(4, 0), Point(2, 3)]).is_convex()

    def test_l_shape_is_not_convex(self):
        shape = Polygon(
            [
                Point(0, 0),
                Point(4, 0),
                Point(4, 2),
                Point(2, 2),
                Point(2, 4),
                Point(0, 4),
            ]
        )
        assert not shape.is_convex()

    def test_convexity_independent_of_winding(self):
        cw = Polygon([Point(0, 0), Point(0, 2), Point(2, 2), Point(2, 0)])
        assert cw.is_convex()

    def test_collinear_edge_still_convex(self):
        # A redundant vertex on an edge keeps the polygon convex.
        shape = Polygon(
            [Point(0, 0), Point(2, 0), Point(4, 0), Point(4, 4), Point(0, 4)]
        )
        assert shape.is_convex()


class TestBoundaryCoincidences:
    def test_point_exactly_on_vertex(self):
        square = rectangle(0, 0, 2, 2)
        for vertex in square.vertices:
            assert square.contains_point(vertex)
            assert not square.strictly_contains_point(vertex)

    def test_segment_along_polygon_edge_is_contained(self):
        square = rectangle(0, 0, 4, 4)
        assert square.contains_segment(Segment(Point(0, 0), Point(4, 0)))

    def test_adjacent_rectangles_share_only_the_wall(self):
        west = rectangle(0, 0, 4, 4)
        east = rectangle(4, 0, 8, 4)
        wall_point = Point(4, 2)
        assert west.contains_point(wall_point)
        assert east.contains_point(wall_point)
        assert not west.strictly_contains_point(wall_point)
        assert not east.strictly_contains_point(wall_point)

    def test_ray_casting_through_vertex(self):
        # Classic ray-casting trap: the ray through a vertex must not
        # double-count.  Query points horizontally aligned with vertices.
        diamond = Polygon(
            [Point(2, 0), Point(4, 2), Point(2, 4), Point(0, 2)]
        )
        assert diamond.contains_point(Point(2, 2))
        assert not diamond.contains_point(Point(5, 2))
        assert not diamond.contains_point(Point(-1, 2))
