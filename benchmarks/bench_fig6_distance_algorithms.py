"""Figure 6: position-to-position distance algorithms on the desktop.

Paper setting: buildings of 10-40 floors (30 rooms + 2 staircases per floor,
star-connected), random indoor position pairs, mean runtime of Algorithms 2,
3, and 4.  Paper findings to reproduce in shape:

* Algorithm 2 is far slower than Algorithms 3 and 4 and degrades with
  building size (blind per-pair door-to-door searches);
* Algorithms 3 and 4 scale roughly linearly with the number of floors;
* Algorithm 4 is at least as fast as Algorithm 3, with the gap widening on
  large buildings.
"""

import time

import pytest

from repro.bench.harness import get_building
from repro.distance import (
    pt2pt_distance_basic,
    pt2pt_distance_memoized,
    pt2pt_distance_refined,
)
from repro.synthetic import random_position_pairs

ALGORITHMS = {
    "algorithm2": pt2pt_distance_basic,
    "algorithm3": pt2pt_distance_refined,
    "algorithm4": pt2pt_distance_memoized,
}

PAIRS_PER_POINT = 4


def _run_pairs(space, fn, pairs):
    for source, target in pairs:
        fn(space, source, target)


@pytest.mark.parametrize("floors", [10, 20, 30, 40])
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fig6_distance_algorithm(benchmark, floors, algorithm):
    building = get_building(floors)
    pairs = random_position_pairs(building, PAIRS_PER_POINT, seed=floors)
    fn = ALGORITHMS[algorithm]
    benchmark.extra_info["floors"] = floors
    benchmark.extra_info["pairs"] = PAIRS_PER_POINT
    benchmark.pedantic(
        _run_pairs, args=(building.space, fn, pairs), rounds=1, iterations=1
    )


def test_fig6_trend_refined_beats_basic(benchmark):
    """Paper trend: the refined algorithms clearly outperform Algorithm 2 on
    mixed workloads (the timing ratio is large, so the assertion is safe)."""
    building = get_building(30)
    pairs = random_position_pairs(building, 6, seed=30)

    start = time.perf_counter()
    _run_pairs(building.space, pt2pt_distance_basic, pairs)
    basic_time = time.perf_counter() - start

    start = time.perf_counter()
    _run_pairs(building.space, pt2pt_distance_refined, pairs)
    refined_time = time.perf_counter() - start

    benchmark.extra_info["basic_over_refined"] = basic_time / refined_time
    assert basic_time > refined_time, (
        f"Algorithm 2 ({basic_time:.3f}s) should be slower than "
        f"Algorithm 3 ({refined_time:.3f}s) on a 30-floor mixed workload"
    )
    benchmark.pedantic(
        _run_pairs,
        args=(building.space, pt2pt_distance_refined, pairs),
        rounds=1,
        iterations=1,
    )


def test_fig6_algorithms_agree(benchmark):
    """Sanity gate for the whole figure: all three algorithms must return
    the same distances on the benchmark workload."""
    building = get_building(20)
    pairs = random_position_pairs(building, 6, seed=20)
    for source, target in pairs:
        basic = pt2pt_distance_basic(building.space, source, target)
        refined = pt2pt_distance_refined(building.space, source, target)
        memoized = pt2pt_distance_memoized(building.space, source, target)
        assert abs(basic - refined) < 1e-6
        assert abs(basic - memoized) < 1e-6
    benchmark.pedantic(
        _run_pairs,
        args=(building.space, pt2pt_distance_memoized, pairs),
        rounds=1,
        iterations=1,
    )
