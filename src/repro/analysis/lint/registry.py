"""Checker base class and registry.

A checker is a class with a ``rule_id``, a one-line ``summary``, and two
hooks:

* ``scan(project)`` — optional project-wide pre-pass, run once before
  any module is checked.  Cross-file rules (REP003's deadline-signature
  table, REP005's version coherence) collect global state here.
* ``check(module, project)`` — per-module pass returning an iterable of
  :class:`~repro.analysis.lint.findings.Finding`.  Modules are checked
  in parallel, so ``check`` must not mutate state shared with other
  ``check`` calls; anything written during ``scan`` is read-only
  afterwards.

Register a checker with the :func:`register` decorator; the engine
instantiates every registered class per run, so per-run state lives on
``self`` safely.  See ``docs/analysis.md`` for a worked example of
adding a rule.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.findings import Finding

_REGISTRY: Dict[str, Type["Checker"]] = {}


class Checker:
    """Base class for lint rules."""

    #: Rule identifier, e.g. ``REP001``.  Must be unique.
    rule_id: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""

    def scan(self, project: ProjectContext) -> None:
        """Project-wide pre-pass; override for cross-file rules."""

    def check(
        self, module: ModuleContext, project: ProjectContext
    ) -> Iterable[Finding]:
        """Per-module pass; yield findings for this module."""
        return ()

    def finding(
        self,
        module: ModuleContext,
        line: int,
        col: int,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Convenience constructor that fills path/snippet from context."""
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            hint=hint,
            snippet=module.line_text(line),
        )


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding ``cls`` to the global checker registry."""
    if not cls.rule_id:
        raise ValueError(f"checker {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate checker rule_id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_checkers() -> List[Type[Checker]]:
    """Registered checker classes, sorted by rule id."""
    # Importing the package registers the built-in checkers.
    import repro.analysis.lint.checkers  # noqa: F401

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_checker(rule_id: str) -> Type[Checker]:
    """The registered checker class for ``rule_id`` (KeyError if none)."""
    import repro.analysis.lint.checkers  # noqa: F401

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown lint rule: {rule_id}") from None
