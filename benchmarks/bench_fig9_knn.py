"""Figure 9: kNN query performance (Algorithm 6, k extension).

Paper setting: 30-floor building for the object-count and k sweeps; 10-40
floors at fixed per-floor density for the floor sweep; k defaults to 100.
Paper findings to reproduce in shape:

* (a) M_idx improves kNN *significantly* (about 4x in the paper) across all
  object cardinalities;
* (b) the gain grows with building size;
* (c) larger k costs more, but even k = 200 stays in the milliseconds.
"""

import time

import pytest

from conftest import query_framework
from repro.bench.harness import get_building
from repro.queries import knn_query
from repro.synthetic import random_positions

QUERIES_PER_POINT = 10


def _run_queries(framework, positions, k, use_index):
    for q in positions:
        knn_query(framework, q, k, use_index=use_index)


@pytest.mark.parametrize("objects", [1_000, 10_000, 50_000])
@pytest.mark.parametrize("use_index", [True, False], ids=["with_idx", "without_idx"])
def test_fig9a_knn_vs_object_count(benchmark, objects, use_index):
    framework = query_framework(30, objects)
    positions = random_positions(get_building(30), QUERIES_PER_POINT, seed=91)
    benchmark.extra_info.update({"objects": objects, "k": 100})
    benchmark.pedantic(
        _run_queries,
        args=(framework, positions, 100, use_index),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("floors", [10, 20, 30, 40])
@pytest.mark.parametrize("use_index", [True, False], ids=["with_idx", "without_idx"])
def test_fig9b_knn_vs_floor_count(benchmark, floors, use_index):
    framework = query_framework(floors, floors * 1_500)
    positions = random_positions(get_building(floors), QUERIES_PER_POINT, seed=92)
    benchmark.extra_info.update({"floors": floors, "k": 100})
    benchmark.pedantic(
        _run_queries,
        args=(framework, positions, 100, use_index),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("k", [1, 50, 100, 150, 200])
def test_fig9c_knn_vs_k(benchmark, k):
    framework = query_framework(30, 10_000)
    positions = random_positions(get_building(30), QUERIES_PER_POINT, seed=93)
    benchmark.extra_info.update({"objects": 10_000, "k": k})
    benchmark.pedantic(
        _run_queries,
        args=(framework, positions, k, True),
        rounds=2,
        iterations=1,
    )


def test_fig9_trend_index_speeds_up_knn(benchmark):
    """Paper trend: the index matters a lot for kNN.  The measured gap is
    ~4x, so asserting 'with-index is faster' is safe."""
    framework = query_framework(30, 10_000)
    positions = random_positions(get_building(30), 10, seed=95)

    start = time.perf_counter()
    _run_queries(framework, positions, 100, True)
    with_index = time.perf_counter() - start

    start = time.perf_counter()
    _run_queries(framework, positions, 100, False)
    without_index = time.perf_counter() - start

    benchmark.extra_info["speedup"] = without_index / with_index
    assert with_index < without_index, (
        f"kNN with M_idx ({with_index:.3f}s) should beat the no-index "
        f"baseline ({without_index:.3f}s)"
    )
    benchmark.pedantic(
        _run_queries, args=(framework, positions, 100, True), rounds=1, iterations=1
    )


def test_fig9_results_identical_with_and_without_index(benchmark):
    """Sanity gate: identical distance multisets either way."""
    framework = query_framework(30, 5_000)
    positions = random_positions(get_building(30), 5, seed=96)
    for q in positions:
        with_idx = [d for _, d in knn_query(framework, q, 50, use_index=True)]
        without_idx = [d for _, d in knn_query(framework, q, 50, use_index=False)]
        assert with_idx == pytest.approx(without_idx)
    benchmark.pedantic(
        _run_queries, args=(framework, positions, 50, True), rounds=1, iterations=1
    )
