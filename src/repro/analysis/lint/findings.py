"""Structured findings: what a checker reports and how it is identified.

A :class:`Finding` is one violation of one rule at one source location.
Findings carry a *fingerprint* — a stable digest of the rule, the file,
and the offending line's text (not its number) — so a committed baseline
keeps matching across unrelated edits that merely shift line numbers.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(enum.IntEnum):
    """How strongly a finding gates: warnings inform, errors fail lint."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    Attributes:
        rule: rule identifier (``REP001`` ... ``REP005``).
        path: path of the offending file, relative to the project root.
        line: 1-based line number.
        col: 0-based column offset.
        message: what is wrong, specific to the site.
        hint: how to fix it (one actionable sentence).
        severity: gating strength.
        snippet: the stripped source line, for fingerprinting and display.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    severity: Severity = Severity.ERROR
    snippet: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Content-addressed identity used by the baseline.

        Hashes the rule, the file, and the *text* of the offending line,
        so renumbering edits elsewhere in the file do not expire baseline
        entries; editing the flagged line itself does.
        """
        basis = f"{self.rule}|{self.path}|{self.snippet}"
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> tuple:
        """Stable report order: path, then line, column, rule."""
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        """One human-readable report line (clickable ``path:line`` form)."""
        text = f"{self.path}:{self.line}:{self.col + 1} {self.rule} " \
               f"[{self.severity}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form, used by ``repro lint --json`` and the baseline."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "severity": str(self.severity),
            "fingerprint": self.fingerprint,
        }
