"""The graceful-degradation ladder: answer quality as an explicit dimension.

When the exact indexed path is unavailable — M_d2d corrupt, DPT records
missing, indexes stale and rebuild disabled, or the deadline too tight —
the resilient engine does not fail the query; it *descends* a ladder of
evaluation strategies, each cheaper in assumptions than the last:

====================  =====================================================
rung                  what it needs / what it guarantees
====================  =====================================================
``EXACT_INDEXED``     M_d2d + M_idx + DPT + grid buckets; exact answer.
``EXACT_FALLBACK``    only the space graph and the object directory;
                      per-object exact pt2pt evaluation (the paper's
                      index-free baseline).  Still exact, just slower.
``DOOR_COUNT``        the Li & Lee lattice baseline: path quality measured
                      in doors crossed, walking distance of the chosen
                      (fewest-doors) path as the reported value — an upper
                      bound, so a range filter on it never includes a
                      false positive.
``EUCLIDEAN``         straight-line distance, a lower bound on any indoor
                      walk — never misses a true range member, may include
                      extras; kNN order is heuristic.
====================  =====================================================

Every answer is tagged with the :class:`QualityLevel` it was produced at,
so callers can distinguish "exact" from "best effort under failure".
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.distance.door_count import door_count_pt2pt
from repro.distance.point_to_point import pt2pt_distance_refined
from repro.exceptions import ReproError
from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.runtime.deadline import Deadline


class QualityLevel(enum.IntEnum):
    """How trustworthy a query answer is; higher is better.

    ``IntEnum`` so callers can write
    ``result.quality >= QualityLevel.EXACT_FALLBACK`` to mean "exact by
    either path".
    """

    EUCLIDEAN = 1
    DOOR_COUNT = 2
    EXACT_FALLBACK = 3
    EXACT_INDEXED = 4

    @property
    def is_exact(self) -> bool:
        """True for the two rungs that return paper-exact answers."""
        return self >= QualityLevel.EXACT_FALLBACK


@dataclass(frozen=True)
class RungFailure:
    """Why one ladder rung could not answer."""

    level: QualityLevel
    error: ReproError

    def __str__(self) -> str:
        return f"{self.level.name}: {type(self.error).__name__}: {self.error}"


@dataclass(frozen=True)
class ResilientResult:
    """A query answer plus the provenance of its quality.

    Attributes:
        value: the rung's answer (result-set / pair list / distance).
        quality: the ladder rung that produced ``value``.
        failures: every higher rung that was tried and failed, in order.
        rebuilt: True when a stale index was rebuilt to serve this query.
    """

    value: Any
    quality: QualityLevel
    failures: Tuple[RungFailure, ...] = ()
    rebuilt: bool = False

    @property
    def degraded(self) -> bool:
        """True when the answer came from below the exact indexed rung."""
        return self.quality is not QualityLevel.EXACT_INDEXED


def euclidean_lower_bound(source: Point, target: Point) -> float:
    """Straight-line planar distance — a lower bound on any indoor walk.

    Sound across floors too: the planar projection of a multi-floor path is
    a curve joining the two planar points, so the walk is at least as long
    as the straight line between them.
    """
    return math.hypot(source.x - target.x, source.y - target.y)


# ----------------------------------------------------------------------
# Lower-rung query evaluators.  The exact rungs live in repro.queries; the
# evaluators below are the DOOR_COUNT and EUCLIDEAN rungs, deadline-aware.
# ----------------------------------------------------------------------
def door_count_range(
    framework: IndexFramework,
    position: Point,
    radius: float,
    deadline: Optional[Deadline] = None,
) -> List[int]:
    """Range filter on the fewest-doors path's walking distance.

    That distance upper-bounds the true minimum walk, so every id reported
    is genuinely within ``radius`` (no false positives); objects whose only
    short route crosses many doors may be missed.
    """
    results: List[int] = []
    space = framework.space
    for obj in framework.objects:
        if deadline is not None:
            deadline.check("door-count range query")
        outcome = door_count_pt2pt(space, position, obj.position)
        if outcome.walking_distance <= radius + 1e-9:
            results.append(obj.object_id)
    return sorted(results)


def door_count_knn(
    framework: IndexFramework,
    position: Point,
    k: int,
    deadline: Optional[Deadline] = None,
) -> List[Tuple[int, float]]:
    """k nearest by the lattice model: fewest doors first, walking distance
    of that path as tie-break and reported distance."""
    scored = []
    space = framework.space
    for obj in framework.objects:
        if deadline is not None:
            deadline.check("door-count kNN query")
        outcome = door_count_pt2pt(space, position, obj.position)
        if outcome.is_reachable:
            scored.append(
                (outcome.doors_crossed, outcome.walking_distance, obj.object_id)
            )
    scored.sort()
    return [(oid, walk) for _, walk, oid in scored[:k]]


def euclidean_range(
    framework: IndexFramework, position: Point, radius: float
) -> List[int]:
    """Range filter on the Euclidean lower bound: a superset of the true
    answer (never misses a member), computed without touching the model."""
    return sorted(
        obj.object_id
        for obj in framework.objects
        if euclidean_lower_bound(position, obj.position) <= radius + 1e-9
    )


def euclidean_knn(
    framework: IndexFramework, position: Point, k: int
) -> List[Tuple[int, float]]:
    """k nearest by straight-line distance — a last-resort ordering with the
    lower-bound distances reported."""
    scored = sorted(
        (euclidean_lower_bound(position, obj.position), obj.object_id)
        for obj in framework.objects
    )
    return [(oid, dist) for dist, oid in scored[:k]]


def door_count_distance_value(
    framework: IndexFramework, source: Point, target: Point
) -> float:
    """The DOOR_COUNT rung of pt2pt distance: the fewest-doors path's
    walking distance (an upper bound on the true minimum walk)."""
    return door_count_pt2pt(framework.space, source, target).walking_distance


def exact_fallback_distance(
    framework: IndexFramework,
    source: Point,
    target: Point,
    deadline: Optional[Deadline] = None,
) -> float:
    """The EXACT_FALLBACK rung of pt2pt distance: Algorithm 3 without the
    cross-iteration memo table (fewer shared structures to go wrong)."""
    return pt2pt_distance_refined(framework.space, source, target, deadline=deadline)
