"""Deterministic crash points inside the persistence write paths.

A *crash point* is a named hook compiled into a dangerous spot of the
write path — after the snapshot temp file is written but before the
publishing rename, or mid-WAL-append.  Chaos campaigns
(:mod:`repro.chaos`) arm a point by name; the next time execution reaches
it, :class:`~repro.exceptions.InjectedCrashError` is raised, simulating
the process dying at exactly that step.  Unarmed points are free: a dict
lookup on an empty registry.

The registry is process-global and deterministic — a point fires on the
``skip``-th passage after arming, never on a timer — so a campaign replayed
from the same seed crashes at the same byte of the same write.

Known points:

* ``snapshot.save.before_publish`` — temp file fully written and fsynced,
  publishing ``os.replace`` not yet executed (recovery must clean the
  orphaned temp file and serve the previous generation);
* ``wal.append.torn`` — half the record line written, then death (the
  classic torn tail a WAL reader must tolerate);
* ``wal.append.before_fsync`` — record written and flushed to the OS but
  not fsynced (the record may or may not survive; the reader must accept
  both);
* ``reconfig.prepare.torn`` — the reconfiguration coordinator dies after
  the WAL record and the fleet retarget but before any worker prepares
  (the fence is up, nothing is staged);
* ``reconfig.commit.torn`` — the coordinator dies right after the first
  successful commit ack (the fleet straddles two epochs; the router's
  fencing must keep every merge single-epoch until ``resume`` heals the
  round);
* ``reconfig.kill_after_prepare`` — consumed per shard between its
  prepare ack and its commit: that worker is SIGKILLed so its respawn
  must rejoin at the new epoch from the retargeted spec.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.exceptions import InjectedCrashError

__all__ = [
    "arm",
    "consume",
    "disarm",
    "disarm_all",
    "fire",
    "is_armed",
    "armed_points",
]

_lock = threading.Lock()
#: point name -> passages to skip before firing (0 = fire on next passage).
_armed: Dict[str, int] = {}


def arm(point: str, skip: int = 0) -> None:
    """Arm ``point`` to fire on its ``skip``-th next passage.

    Args:
        point: the crash-point name (see module docstring).
        skip: how many passages survive before the crash (default 0:
            the very next passage dies).
    """
    if skip < 0:
        raise ValueError(f"skip must be >= 0, got {skip}")
    with _lock:
        _armed[point] = skip


def disarm(point: str) -> None:
    """Disarm one point (no-op when not armed)."""
    with _lock:
        _armed.pop(point, None)


def disarm_all() -> None:
    """Disarm every point — call from test/campaign teardown."""
    with _lock:
        _armed.clear()


def is_armed(point: str) -> bool:
    """Whether ``point`` is currently armed."""
    with _lock:
        return point in _armed


def armed_points() -> List[str]:
    """The currently armed point names, sorted."""
    with _lock:
        return sorted(_armed)


def consume(point: str) -> bool:
    """Check-and-disarm: ``True`` exactly when ``point`` should crash now.

    For hooks that need to *do* something at the crash (write half a
    record) before raising; the caller raises
    :class:`~repro.exceptions.InjectedCrashError` itself.
    """
    with _lock:
        if point not in _armed:
            return False
        if _armed[point] > 0:
            _armed[point] -= 1
            return False
        del _armed[point]
        return True


def fire(point: str) -> None:
    """Raise :class:`InjectedCrashError` when ``point`` is armed and due."""
    if consume(point):
        raise InjectedCrashError(point)
