"""The deterministic labels byte codec (repro.labels.serialize)."""

import pytest

from repro.exceptions import SerializationError
from repro.labels import labels_from_bytes, labels_to_bytes


class TestRoundTrip:
    def test_answers_survive_bit_identically(self, building_pair):
        labels, _ = building_pair
        index = labels.distance_index
        restored = labels_from_bytes(labels_to_bytes(index))
        assert restored.door_ids == index.door_ids
        for u in index.door_ids:
            for v in index.door_ids[:6]:
                assert restored.distance(u, v) == index.distance(u, v)
        assert list(restored.doors_by_distance(index.door_ids[0])) == list(
            index.doors_by_distance(index.door_ids[0])
        )

    def test_encoding_is_deterministic(self, building_pair):
        labels, _ = building_pair
        index = labels.distance_index
        assert labels_to_bytes(index) == labels_to_bytes(index)

    def test_base_edges_survive(self, building_pair):
        """Repair diffs against the serialized base edges, so they must
        travel with the labels."""
        labels, _ = building_pair
        index = labels.distance_index
        restored = labels_from_bytes(labels_to_bytes(index))
        assert restored.base_edges == index.base_edges

    def test_patches_survive(self, figure1_pair):
        from repro.labels.index import LabelPatches
        import numpy as np

        labels, _ = figure1_pair
        index = labels.distance_index
        n = index.size
        patches = LabelPatches(
            door_ids=index.door_ids,
            patch_ids=(index.door_ids[0],),
            fwd=np.zeros((1, n)),
            bwd=np.zeros((1, n)),
        )
        patched = index.with_patches(patches)
        restored = labels_from_bytes(labels_to_bytes(patched))
        assert restored.patches is not None
        assert restored.patches.patch_ids == patches.patch_ids


class TestCorruption:
    def test_truncated_header(self):
        with pytest.raises(SerializationError, match="truncated"):
            labels_from_bytes(b"\x00\x01")

    def test_truncated_payload(self, building_pair):
        labels, _ = building_pair
        data = labels_to_bytes(labels.distance_index)
        with pytest.raises(SerializationError, match="truncated"):
            labels_from_bytes(data[:-16])

    def test_trailing_garbage(self, building_pair):
        labels, _ = building_pair
        data = labels_to_bytes(labels.distance_index)
        with pytest.raises(SerializationError, match="trailing"):
            labels_from_bytes(data + b"\x00" * 8)

    def test_bad_header_json(self, building_pair):
        import struct

        garbage = b"not json at all!"
        data = struct.pack(">Q", len(garbage)) + garbage
        with pytest.raises(SerializationError, match="not valid JSON"):
            labels_from_bytes(data)
