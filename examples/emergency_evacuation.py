#!/usr/bin/env python3
"""Emergency evacuation planning (paper §I: "shortest indoor paths are
critical in emergency response, e.g., in case of a fire in an office
building"), combined with the §VII temporal extension.

A five-floor synthetic office building is populated with occupants; exit
points stand at the ground-floor staircase doors.  The planner computes
every occupant's nearest exit and evacuation distance.  Then a fire breaks
out in the west stairwell: the temporal door schedule closes its doors, and
the planner recomputes routes on the fire-time snapshot — everyone reroutes
through the east stairwell, and the distance increase is reported.

Run:  python examples/emergency_evacuation.py
"""

import math
import random

from repro import IndoorObject, Point, pt2pt_distance, pt2pt_path
from repro.synthetic import BuildingConfig, generate_building
from repro.synthetic.workload import random_position
from repro.temporal import DoorSchedule, TemporalIndoorSpace, TimeInterval

FLOORS = 5
OCCUPANTS = 10
FIRE_TIME = 100.0  # doors of the burning stairwell close at t = 100


def stairwell_doors(building, west: bool):
    """Door ids of the west (or east) stairwell column."""
    space = building.space
    doors = []
    for staircase_id in building.staircase_ids:
        staircase = space.partition(staircase_id)
        is_west = "W" in staircase.name
        if is_west == west:
            doors.extend(space.topology.doors_of(staircase_id))
    return sorted(doors)


def exit_positions(building):
    """Evacuation targets: just inside the ground-floor hallway, at the
    west and east stairwell doors (stand-ins for the street exits)."""
    space = building.space
    hallway = space.partition(building.hallway_on_floor(0))
    box = hallway.polygon.bounding_box
    mid_y = (box.min_y + box.max_y) / 2
    return {
        "west exit": Point(box.min_x + 0.5, mid_y, 0),
        "east exit": Point(box.max_x - 0.5, mid_y, 0),
    }


def nearest_exit(space, position, exits):
    """(exit name, distance) of the closest reachable exit."""
    best = (None, math.inf)
    for name, target in exits.items():
        distance = pt2pt_distance(space, position, target)
        if distance < best[1]:
            best = (name, distance)
    return best


def main():
    rng = random.Random(99)
    building = generate_building(BuildingConfig(floors=FLOORS))
    space = building.space
    exits = exit_positions(building)

    occupants = [
        IndoorObject(i, random_position(building, rng), payload=f"occupant {i}")
        for i in range(OCCUPANTS)
    ]

    # Fire scenario: the west stairwell becomes impassable at FIRE_TIME.
    schedule = DoorSchedule()
    for door_id in stairwell_doors(building, west=True):
        schedule.set_open(door_id, [TimeInterval(0.0, FIRE_TIME)])
    temporal = TemporalIndoorSpace(space, schedule)

    print(f"== Evacuation planning: {FLOORS}-floor building, "
          f"{space.num_doors} doors, {OCCUPANTS} occupants ==\n")
    print(f"{'occupant':>10} {'floor':>5} {'normal':>10} {'during fire':>12} "
          f"{'rerouted via':>14}")

    total_before = total_after = 0.0
    for occupant in occupants:
        normal_space = temporal.snapshot(0.0)
        fire_space = temporal.snapshot(FIRE_TIME + 1)
        name_before, dist_before = nearest_exit(
            normal_space, occupant.position, exits
        )
        name_after, dist_after = nearest_exit(
            fire_space, occupant.position, exits
        )
        total_before += dist_before
        total_after += dist_after
        print(f"{occupant.object_id:>10} {occupant.position.floor:>5} "
              f"{dist_before:>8.1f} m {dist_after:>10.1f} m "
              f"{name_after:>14}")

    print(f"\nmean evacuation distance: {total_before / OCCUPANTS:.1f} m "
          f"normally, {total_after / OCCUPANTS:.1f} m during the fire "
          f"(+{(total_after - total_before) / OCCUPANTS:.1f} m per person)")

    # A concrete route for the worst-placed occupant during the fire.
    fire_space = temporal.snapshot(FIRE_TIME + 1)
    worst = max(
        occupants,
        key=lambda o: nearest_exit(fire_space, o.position, exits)[1],
    )
    name, dist = nearest_exit(fire_space, worst.position, exits)
    path = pt2pt_path(fire_space, worst.position, exits[name])
    hops = " -> ".join(space.door(d).label for d in path.doors)
    print(f"\nlongest fire-time route ({worst.payload}, floor "
          f"{worst.position.floor}): {dist:.1f} m to the {name}")
    print(f"  doors: {hops}")


if __name__ == "__main__":
    main()
