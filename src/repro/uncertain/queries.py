"""Probabilistic threshold range and kNN queries.

Both queries first evaluate every sample's exact minimum indoor walking
distance from the query point (one pt2pt computation per sample — samples
are few), then reason over the resulting per-object distance distributions:

* range: ``P(dist(q, o) ≤ r)`` is simply the probability mass of samples
  within ``r``;
* kNN: membership probability requires joint reasoning across objects
  ("possible worlds": one sample drawn per object).  Small products of
  sample counts are enumerated exactly; larger ones fall back to seeded
  Monte Carlo with a caller-visible sample budget.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, List, Sequence, Tuple

from repro.distance.point_to_point import pt2pt_distance_memoized
from repro.exceptions import QueryError
from repro.geometry import Point
from repro.model.builder import IndoorSpace
from repro.uncertain.objects import UncertainObject

#: Above this many possible worlds, probabilistic_knn switches to Monte Carlo.
EXACT_WORLD_LIMIT = 50_000


def _sample_distances(
    space: IndoorSpace, query: Point, objects: Sequence[UncertainObject]
) -> Dict[int, List[Tuple[float, float]]]:
    """Per object: list of ``(distance, probability)`` over its samples."""
    distances: Dict[int, List[Tuple[float, float]]] = {}
    for obj in objects:
        distances[obj.object_id] = [
            (pt2pt_distance_memoized(space, query, position), probability)
            for position, probability in obj.samples
        ]
    return distances


def probabilistic_range(
    space: IndoorSpace,
    objects: Sequence[UncertainObject],
    query: Point,
    radius: float,
    threshold: float,
) -> List[Tuple[int, float]]:
    """Objects with ``P(dist(query, o) ≤ radius) ≥ threshold``.

    Returns ``(object_id, probability)`` sorted by descending probability
    (ties by ascending id).  Range probabilities are independent per object,
    so this query needs no joint reasoning.
    """
    if radius < 0:
        raise QueryError(f"range radius must be non-negative, got {radius}")
    if not 0.0 < threshold <= 1.0:
        raise QueryError(f"threshold must be in (0, 1], got {threshold}")
    results: List[Tuple[int, float]] = []
    for obj in objects:
        probability = sum(
            weight
            for position, weight in obj.samples
            if pt2pt_distance_memoized(space, query, position) <= radius
        )
        if probability >= threshold - 1e-12:
            results.append((obj.object_id, probability))
    results.sort(key=lambda item: (-item[1], item[0]))
    return results


def _knn_members_of_world(
    world: Sequence[Tuple[int, float]], k: int
) -> Tuple[int, ...]:
    """The ids of the k nearest objects in one concrete world."""
    ranked = sorted(
        (distance, object_id)
        for object_id, distance in world
        if not math.isinf(distance)
    )
    return tuple(object_id for _, object_id in ranked[:k])


def probabilistic_knn(
    space: IndoorSpace,
    objects: Sequence[UncertainObject],
    query: Point,
    k: int,
    threshold: float,
    monte_carlo_worlds: int = 2_000,
    seed: int = 0,
) -> List[Tuple[int, float]]:
    """Objects with ``P(o ∈ kNN(query)) ≥ threshold``.

    Exact possible-worlds enumeration when the joint sample space has at
    most :data:`EXACT_WORLD_LIMIT` worlds; otherwise seeded Monte Carlo over
    ``monte_carlo_worlds`` draws.

    Returns ``(object_id, probability)`` sorted by descending probability
    (ties by ascending id).
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if not 0.0 < threshold <= 1.0:
        raise QueryError(f"threshold must be in (0, 1], got {threshold}")
    if not objects:
        return []

    distances = _sample_distances(space, query, objects)
    object_ids = [obj.object_id for obj in objects]
    per_object = [distances[oid] for oid in object_ids]

    world_count = 1
    for samples in per_object:
        world_count *= len(samples)
        if world_count > EXACT_WORLD_LIMIT:
            break

    membership: Dict[int, float] = {oid: 0.0 for oid in object_ids}
    if world_count <= EXACT_WORLD_LIMIT:
        for combo in itertools.product(*per_object):
            weight = 1.0
            for _, probability in combo:
                weight *= probability
            world = [
                (oid, distance)
                for oid, (distance, _) in zip(object_ids, combo)
            ]
            for member in _knn_members_of_world(world, k):
                membership[member] += weight
    else:
        rng = random.Random(seed)
        for _ in range(monte_carlo_worlds):
            world = []
            for oid, samples in zip(object_ids, per_object):
                pick = rng.random()
                cumulative = 0.0
                chosen = samples[-1][0]
                for distance, probability in samples:
                    cumulative += probability
                    if pick <= cumulative:
                        chosen = distance
                        break
                world.append((oid, chosen))
            for member in _knn_members_of_world(world, k):
                membership[member] += 1.0 / monte_carlo_worlds

    results = [
        (oid, probability)
        for oid, probability in membership.items()
        if probability >= threshold - 1e-9
    ]
    results.sort(key=lambda item: (-item[1], item[0]))
    return results
