"""Deterministic partition→shard placement for the sharded serving tier.

The paper's §IV structures partition naturally per floor: a floor's
partitions, their grid buckets, and the objects they host form a closed
unit, while M_d2d / M_idx / the DPT describe the whole building and are
shared read-only by every shard (see :mod:`repro.shard.shm`).

:class:`FloorPlacement` owns the mapping.  Placement is computed once by
the supervisor, embedded in every :class:`~repro.shard.spec.ShardSpec`,
and never renegotiated at runtime — a restarted worker rejoins with the
placement (and topology epoch) it crashed with, so the scatter-gather
router never has to reason about ownership moving under a live query.

Two layouts, picked automatically:

* **floor groups** (the common case): floors are split into contiguous,
  near-equal groups, one per shard; a partition follows its base floor.
  Contiguity matters — staircases connect adjacent floors, so cross-shard
  cut edges stay at group boundaries.
* **partition split** (fewer floors than shards — e.g. the single-floor
  Figure-1 running example): partitions ordered by ``(floor, id)`` are
  split into contiguous runs, so chaos campaigns still exercise real
  cross-shard scatter-gather on tiny spaces.

Both layouts are pure functions of ``(sorted partition/floor ids,
num_shards)``, hence byte-stable across runs — which the chaos incident
taxonomy and the placement tests rely on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.model.builder import IndoorSpace


def _contiguous_chunks(items: Sequence, chunks: int) -> List[List]:
    """Split ``items`` into ``chunks`` contiguous, near-equal runs.

    The first ``len(items) % chunks`` runs get one extra element; a run may
    be empty only when there are more chunks than items.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    base, extra = divmod(len(items), chunks)
    out: List[List] = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < extra else 0)
        out.append(list(items[start:start + size]))
        start += size
    return out


class FloorPlacement:
    """An immutable partition→shard assignment.

    Build with :meth:`for_space`; the raw constructor takes an explicit
    mapping (tests, and :meth:`from_dict` for specs that travelled as
    JSON).

    Args:
        num_shards: how many shards the assignment targets.
        assignment: ``partition_id -> shard_id`` for every partition.
        floor_of: ``partition_id -> base floor`` (used to route pt2pt
            queries to the shard that owns the query position's floor).
    """

    def __init__(
        self,
        num_shards: int,
        assignment: Dict[int, int],
        floor_of: Dict[int, int],
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        for partition_id, shard_id in assignment.items():
            if not 0 <= shard_id < num_shards:
                raise ValueError(
                    f"partition {partition_id} assigned to shard {shard_id}, "
                    f"outside 0..{num_shards - 1}"
                )
        self.num_shards = num_shards
        self._assignment = dict(assignment)
        self._floor_of = dict(floor_of)
        self._partitions_of: Dict[int, Tuple[int, ...]] = {
            shard: tuple(sorted(
                pid for pid, sid in assignment.items() if sid == shard
            ))
            for shard in range(num_shards)
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_space(
        cls, space: IndoorSpace, num_shards: int
    ) -> "FloorPlacement":
        """The deterministic placement for ``space`` over ``num_shards``."""
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        partitions = sorted(space.partitions(), key=lambda p: (p.floor, p.partition_id))
        floor_of = {p.partition_id: p.floor for p in partitions}
        floors = sorted({p.floor for p in partitions})
        assignment: Dict[int, int] = {}
        if len(floors) >= num_shards:
            groups = _contiguous_chunks(floors, num_shards)
            shard_of_floor = {
                floor: shard
                for shard, group in enumerate(groups)
                for floor in group
            }
            for partition in partitions:
                assignment[partition.partition_id] = shard_of_floor[partition.floor]
        else:
            groups = _contiguous_chunks(partitions, num_shards)
            for shard, group in enumerate(groups):
                for partition in group:
                    assignment[partition.partition_id] = shard
        return cls(num_shards, assignment, floor_of)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def shard_for_partition(self, partition_id: int) -> int:
        """The shard that owns ``partition_id``'s objects."""
        try:
            return self._assignment[partition_id]
        except KeyError:
            raise KeyError(
                f"partition {partition_id} is not in this placement"
            ) from None

    def preferred_shard_for_floor(self, floor: int) -> int:
        """The shard a pt2pt query on ``floor`` routes to first.

        Deterministic: the owner of the lowest-id partition on that floor;
        floors outside the building clamp to the nearest assigned floor,
        so the router never has to special-case an out-of-range position.
        """
        candidates = sorted(
            pid for pid, f in self._floor_of.items() if f == floor
        )
        if not candidates:
            nearest = min(
                self._floor_of.values(),
                key=lambda f: (abs(f - floor), f),
                default=None,
            )
            if nearest is None:
                return 0
            candidates = sorted(
                pid for pid, f in self._floor_of.items() if f == nearest
            )
        return self._assignment[candidates[0]]

    def partitions_of(self, shard_id: int) -> Tuple[int, ...]:
        """The partition ids shard ``shard_id`` owns (ascending)."""
        try:
            return self._partitions_of[shard_id]
        except KeyError:
            raise KeyError(f"shard {shard_id} is not in this placement") from None

    def floors_of(self, shard_id: int) -> Tuple[int, ...]:
        """The base floors shard ``shard_id`` touches (ascending)."""
        return tuple(sorted({
            self._floor_of[pid] for pid in self.partitions_of(shard_id)
        }))

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        """Every shard id, ascending (including object-less shards)."""
        return tuple(range(self.num_shards))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-safe form (rides inside shard specs and readiness payloads)."""
        return {
            "num_shards": self.num_shards,
            "assignment": {str(k): v for k, v in sorted(self._assignment.items())},
            "floor_of": {str(k): v for k, v in sorted(self._floor_of.items())},
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "FloorPlacement":
        """Inverse of :meth:`to_dict`."""
        return cls(
            int(raw["num_shards"]),
            {int(k): int(v) for k, v in raw["assignment"].items()},
            {int(k): int(v) for k, v in raw["floor_of"].items()},
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FloorPlacement):
            return NotImplemented
        return (
            self.num_shards == other.num_shards
            and self._assignment == other._assignment
            and self._floor_of == other._floor_of
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {
            shard: len(self.partitions_of(shard)) for shard in self.shard_ids
        }
        return f"FloorPlacement(num_shards={self.num_shards}, sizes={sizes})"
