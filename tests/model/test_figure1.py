"""Structural invariants of the Figure-1 running example itself.

The floor plan is the substrate for much of the test suite, so its own
shape is pinned down here: any accidental change to the plan that would
silently weaken other tests fails loudly instead.
"""

import pytest

from repro.model import PartitionKind
from repro.model.figure1 import (
    D1,
    D11,
    D12,
    D13,
    D14,
    D15,
    D2,
    D21,
    D22,
    D24,
    D3,
    HALLWAY,
    OUTDOOR,
    P,
    Q,
    ROOM_11,
    ROOM_12,
    ROOM_13,
    ROOM_14,
    ROOM_20,
    ROOM_21,
    ROOM_22,
    STAIRCASE_50,
    SUBPLAN_DOORS,
    build_figure1,
    build_figure1_subplan,
)
from repro.model.validation import validate_space


@pytest.fixture(scope="module")
def space():
    return build_figure1()


class TestPlanShape:
    def test_partition_inventory(self, space):
        assert set(space.partition_ids) == {
            OUTDOOR,
            HALLWAY,
            ROOM_11,
            ROOM_12,
            ROOM_13,
            ROOM_14,
            ROOM_20,
            ROOM_21,
            ROOM_22,
            STAIRCASE_50,
        }

    def test_door_inventory(self, space):
        assert set(space.door_ids) == {
            D1, D2, D3, D11, D12, D13, D14, D15, D21, D22, D24,
        }

    def test_partition_kinds(self, space):
        assert space.partition(OUTDOOR).kind is PartitionKind.OUTDOOR
        assert space.partition(HALLWAY).kind is PartitionKind.HALLWAY
        assert space.partition(STAIRCASE_50).kind is PartitionKind.STAIRCASE
        assert space.partition(ROOM_13).kind is PartitionKind.ROOM

    def test_exactly_two_one_way_doors(self, space):
        one_way = [
            d for d in space.door_ids if space.topology.is_unidirectional(d)
        ]
        assert one_way == [D12, D15]

    def test_room_22_has_the_obstacle(self, space):
        assert space.partition(ROOM_22).has_obstacles
        others = [p for p in space.partitions() if p.partition_id != ROOM_22]
        assert not any(p.has_obstacles for p in others)

    def test_example_positions_are_where_the_paper_says(self, space):
        assert space.get_host_partition(P).partition_id == ROOM_13
        assert space.get_host_partition(Q).partition_id == HALLWAY

    def test_plan_is_lint_clean(self, space):
        assert validate_space(space) == []

    def test_single_floor(self, space):
        assert space.num_floors == 1
        assert all(p.floor == 0 for p in space.partitions())


class TestSubplan:
    def test_subplan_doors_match_figure_3(self):
        subplan = build_figure1_subplan()
        assert subplan.door_ids == SUBPLAN_DOORS == (D1, D11, D12, D13, D14, D15)

    def test_subplan_is_a_restriction_of_the_full_plan(self, space):
        subplan = build_figure1_subplan()
        for door_id in subplan.door_ids:
            assert subplan.topology.d2p(door_id) == space.topology.d2p(door_id)
            assert subplan.door(door_id).midpoint == space.door(door_id).midpoint

    def test_subplan_partitions(self):
        subplan = build_figure1_subplan()
        assert set(subplan.partition_ids) == {
            OUTDOOR, HALLWAY, ROOM_11, ROOM_12, ROOM_13, ROOM_14,
        }


class TestMotivatingGeometry:
    def test_p_is_close_to_d15(self, space):
        assert P.distance_to(space.door(D15).midpoint) < 0.5

    def test_q_is_close_to_d12(self, space):
        assert Q.distance_to(space.door(D12).midpoint) < 1.0

    def test_one_way_routes_differ(self, space):
        from repro.distance import pt2pt_distance

        forward = pt2pt_distance(space, P, Q)
        backward = pt2pt_distance(space, Q, P)
        assert forward < backward  # the d15/d12 shortcut only works one way
