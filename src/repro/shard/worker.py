"""The shard worker process: one spec in, exact answers out.

:func:`shard_worker_main` is the ``multiprocessing`` entry point (module
level, so it imports cleanly under the ``spawn`` start method).  A worker
mirrors the :class:`~repro.serve.lifecycle.SupervisedQueryService`
lifecycle in miniature — STARTING (materialise the spec via the restart
ladder), READY (serve), draining on ``stop`` — but deliberately serves
**exact answers only**: the whole degradation ladder lives in the router,
where a shard's silence is turned into an explicitly degraded partial
result.  A worker that cannot answer exactly says so (an error reply or,
under a crash, pipe EOF); it never guesses.

Wire protocol (tuples over a ``multiprocessing`` duplex pipe):

========================  ==============================================
supervisor → worker        meaning
========================  ==============================================
``("query", seq, req,      evaluate ``req`` with ``budget_s`` seconds of
``budget_s)``              deadline; reply ``("result", seq, value,
                           epoch)`` or ``("error", seq, exc_type,
                           message, epoch)`` — every data-plane reply is
                           stamped with the topology epoch it was
                           computed at so the router can fence merges
``("batch", items)``       evaluate each ``(seq, req, budget_s)`` item in
                           order; reply one ``("batch_result", replies)``
                           carrying the per-item result/error tuples
``("ping", seq)``          liveness probe; reply ``("pong", seq)``
``("prepare", epoch,       stage the next topology epoch from the WAL
``records)``               delta without touching the serving index;
                           reply ``("prepare_ack", epoch, ok, detail)``
``("commit", epoch)``      atomically flip the staged index into
                           service; reply ``("commit_ack", epoch, ok,
                           detail)`` then rewrite the shard snapshot
``("abort", epoch)``       discard the staged index; reply
                           ``("abort_ack", epoch)``
``("hang", seconds)``      chaos: stop replying for ``seconds``
``("exit", code)``         chaos: die immediately (``os._exit``)
``("stop",)``              drain (pipe order guarantees every earlier
                           query was answered), snapshot, exit cleanly
========================  ==============================================

The first message a worker ever sends is ``("ready", summary)`` — where
``summary`` carries the materialisation source and the epochs it rejoined
at — or ``("start_failed", detail)``.

Reconfiguration happens on a **private copy** of the space: ``prepare``
round-trips the current space through its dict form, replays the delta on
the copy, and builds the staged index from it (labels shards reuse the
WAL-driven incremental repair; matrix shards rebuild — see
:func:`repro.shard.reconfig.stage_framework`).  The serving framework is
untouched until ``commit``, so queries interleaved with a prepare keep
answering exactly at the old epoch, and a crash mid-stage loses nothing
but staging work.  ``prepare``/``commit`` for an epoch the worker already
reached ack success idempotently — the coordinator re-delivers both when
it resumes a torn round.  Staging runs inline on the serving loop, so it
must finish well inside the supervisor's liveness deadline; a worker that
blows that deadline is treated as hung and restarted onto the new spec,
which is the planned fallback, not a fault.

Self-healing: when the ladder bottomed out at a full rebuild (the shard's
snapshot was missing or quarantined as corrupt) the worker rewrites its
snapshot immediately, so the *next* restart is warm again.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional, Tuple

from repro.exceptions import ReproError
from repro.queries.engine import QueryEngine
from repro.runtime.deadline import Deadline
from repro.serve.cache import EpochLRUCache
from repro.serve.requests import QueryKind, QueryRequest
from repro.shard.spec import ShardSpec, materialize

#: Distinguishes "not cached" from any cached value (None, [], 0.0 …).
_MISS = object()


def evaluate_exact(
    engine: QueryEngine,
    request: QueryRequest,
    deadline: Optional[Deadline] = None,
) -> Any:
    """One request on the exact indexed path, deadline forwarded.

    Returns the same value shapes as the single-process service: a sorted
    id list (range), ``(id, distance)`` pairs in ``(distance, id)`` order
    (kNN), or metres (pt2pt) — the shapes the router's merge relies on.
    """
    if request.kind is QueryKind.RANGE:
        return engine.range_query(
            request.position, request.radius, deadline=deadline
        )
    if request.kind is QueryKind.KNN:
        return engine.knn(request.position, request.k, deadline=deadline)
    return engine.distance(request.position, request.target, deadline=deadline)


def _evaluate_reply(
    engine: QueryEngine,
    seq: int,
    request: QueryRequest,
    budget_s: Optional[float],
    cache: Optional[EpochLRUCache] = None,
    epoch: int = 0,
) -> Tuple:
    """Evaluate one query and shape its wire reply tuple.

    With a ``cache``, exact answers are memoised per request key: a
    worker re-serving a warm key skips the whole expansion and answers
    at pipe speed.  The router's own cache sees every key first, so the
    worker caches earn their keep exactly when the router's evicted —
    they are the tier's second, horizontally-scaled cache level.
    """
    if cache is not None:
        key = request.cache_key()
        hit = cache.get(key, epoch, _MISS)
        if hit is not _MISS:
            return ("result", seq, hit, epoch)
    deadline = Deadline(budget_s) if budget_s is not None else None
    try:
        value = evaluate_exact(engine, request, deadline)
    except ReproError as exc:
        return ("error", seq, type(exc).__name__, str(exc), epoch)
    if cache is not None:
        cache.put(key, epoch, value)
    return ("result", seq, value, epoch)


def _maybe_self_heal_snapshot(
    spec: ShardSpec, framework, source: str
) -> None:
    """After a cold rebuild, rewrite the shard snapshot so the next
    restart takes the warm rung again."""
    if source != "rebuild" or spec.snapshot_path is None:
        return
    from repro.persist.snapshot import save_snapshot

    try:
        save_snapshot(framework, spec.snapshot_path)
    except OSError:  # pragma: no cover - disk trouble; serve anyway
        pass


def _stage_for_prepare(
    framework, spec: ShardSpec, epoch: int, target: int, raw_records
) -> Tuple:
    """Build the staged framework for a ``prepare``; returns the ack tuple
    plus the staged ``(target, framework)`` pair (``None`` on failure or
    when the worker is already at/beyond the target)."""
    from repro.shard.reconfig import stage_framework

    if target <= epoch:
        return ("prepare_ack", target, True, f"already at epoch {epoch}"), None
    try:
        from repro.persist.wal import WalRecord

        records = [WalRecord.from_dict(raw) for raw in raw_records]
        staged_fw, how = stage_framework(framework, records, spec.backend)
    except BaseException as exc:
        return (
            "prepare_ack", target, False, f"{type(exc).__name__}: {exc}",
        ), None
    if staged_fw.space.topology_epoch != target:
        return (
            "prepare_ack", target, False,
            f"delta lands at epoch {staged_fw.space.topology_epoch}, "
            f"not {target}",
        ), None
    return ("prepare_ack", target, True, how), (target, staged_fw)


def shard_worker_main(spec: ShardSpec, conn) -> None:
    """Run one shard worker over its end of a duplex pipe (blocking)."""
    arena = None
    try:
        try:
            framework, source, arena = materialize(spec)
        except BaseException as exc:
            conn.send(("start_failed", f"{type(exc).__name__}: {exc}"))
            return
        _maybe_self_heal_snapshot(spec, framework, source)
        # Warm the door-geometry memo caches before declaring READY: the
        # arena/snapshot rungs skip the full index build that would have
        # filled them, and a cold cache pays per-query geometry on the
        # serving path instead of once here.
        framework.space.distance_graph.precompute()
        engine = QueryEngine(framework)
        cache = (
            EpochLRUCache(spec.cache_capacity)
            if spec.cache_capacity > 0
            else None
        )
        epoch = spec.topology_epoch
        staged: Optional[Tuple[int, Any]] = None
        summary = dict(spec.summary())
        summary["source"] = source
        summary["pid"] = os.getpid()
        conn.send(("ready", summary))

        while True:
            try:
                message: Tuple = conn.recv()
            except (EOFError, OSError):
                return  # supervisor died; no one left to answer
            op = message[0]
            if op == "query":
                _, seq, request, budget_s = message
                conn.send(
                    _evaluate_reply(engine, seq, request, budget_s, cache, epoch)
                )
            elif op == "batch":
                # One combined reply per batch: the supervisor's send
                # combining amortises pipe overhead in both directions.
                conn.send((
                    "batch_result",
                    [
                        _evaluate_reply(
                            engine, seq, request, budget_s, cache, epoch
                        )
                        for seq, request, budget_s in message[1]
                    ],
                ))
            elif op == "ping":
                conn.send(("pong", message[1]))
            elif op == "prepare":
                _, target, raw_records = message
                ack, new_staged = _stage_for_prepare(
                    framework, spec, epoch, int(target), raw_records
                )
                if new_staged is not None:
                    staged = new_staged
                conn.send(ack)
            elif op == "commit":
                _, target = message
                target = int(target)
                if staged is not None and staged[0] == target:
                    framework = staged[1]
                    engine = QueryEngine(framework)
                    epoch = target
                    staged = None
                    conn.send(("commit_ack", target, True, "flipped"))
                    # Rewrite the snapshot *after* the ack so the flip is
                    # visible to the coordinator at pipe speed; the next
                    # restart then takes the warm rung at the new epoch.
                    if spec.snapshot_path is not None:
                        from repro.persist.snapshot import save_snapshot

                        try:
                            save_snapshot(framework, spec.snapshot_path)
                        except OSError:  # pragma: no cover
                            pass
                elif epoch >= target:
                    conn.send((
                        "commit_ack", target, True,
                        f"already at epoch {epoch}",
                    ))
                else:
                    conn.send((
                        "commit_ack", target, False,
                        f"nothing staged for epoch {target} "
                        f"(serving {epoch})",
                    ))
            elif op == "abort":
                _, target = message
                if staged is not None and staged[0] == int(target):
                    staged = None
                conn.send(("abort_ack", int(target)))
            elif op == "hang":
                # Chaos: simulate a wedged worker. The supervisor's
                # liveness deadline — not this sleep — decides its fate.
                time.sleep(float(message[1]))
            elif op == "exit":
                os._exit(int(message[1]))
            elif op == "stop":
                # Pipe FIFO order means every earlier query was already
                # answered: this *is* the drain barrier.
                if spec.snapshot_path is not None:
                    from repro.persist.snapshot import save_snapshot

                    try:
                        save_snapshot(framework, spec.snapshot_path)
                    except OSError:  # pragma: no cover
                        pass
                try:
                    conn.send(("stopped",))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
                return
            else:
                conn.send(
                    ("error", -1, "ValueError", f"unknown op {op!r}", epoch)
                )
    finally:
        if arena is not None:
            arena.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
