"""Property-based metamorphic invariants across the degradation ladder.

The chaos oracles (:mod:`repro.chaos.oracles`) assume three metamorphic
theorems of indoor distance and one documented guarantee per
:class:`~repro.runtime.ladder.QualityLevel` rung.  These properties verify
the assumptions themselves on random grid plans, so a campaign verdict
rests on checked foundations:

* d_E(p, q) ≤ d_I(p, q) at every rung;
* d(p, q) = d(q, p) on fully-undirected plans (exact rungs);
* d(p, q) ≤ d(p, m) + d(m, q) (exact rungs);
* range/kNN/pt2pt per-rung bounds: EUCLIDEAN is a lower bound (range
  superset), DOOR_COUNT an upper bound (no false positives),
  EXACT_FALLBACK equals the indexed exact answer.
"""

import math

from hypothesis import HealthCheck, given, settings

from repro.chaos.oracles import (
    euclidean_bound_violation,
    space_is_undirected,
    symmetry_violation,
    triangle_violation,
)
from repro.index import IndexFramework
from repro.queries import brute_force_knn, brute_force_range
from repro.queries.engine import QueryEngine
from repro.runtime.ladder import (
    door_count_distance_value,
    door_count_knn,
    door_count_range,
    euclidean_knn,
    euclidean_lower_bound,
    euclidean_range,
    exact_fallback_distance,
)
from repro.synthetic.workload import WorkloadOp
from tests.strategies import metamorphic_cases, workload_cases

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

EPS = 1e-6


def _op(kind, position, **kwargs) -> WorkloadOp:
    return WorkloadOp(index=0, kind=kind, position=position, **kwargs)


class TestDistanceInvariants:
    @RELAXED
    @given(metamorphic_cases())
    def test_euclidean_never_exceeds_indoor_distance(self, case):
        plan, source, target, _ = case
        engine = QueryEngine.for_space(plan.space)
        distance = engine.distance(source, target)
        op = _op("pt2pt", source, target=target)
        assert euclidean_bound_violation(op, distance) is None

    @RELAXED
    @given(metamorphic_cases(one_way_probability=0.0))
    def test_symmetry_on_undirected_plans(self, case):
        plan, source, target, _ = case
        assert space_is_undirected(plan.space)
        engine = QueryEngine.for_space(plan.space)
        forward = engine.distance(source, target)
        backward = engine.distance(target, source)
        op = _op("pt2pt", source, target=target)
        assert symmetry_violation(op, forward, backward) is None

    @RELAXED
    @given(metamorphic_cases(one_way_probability=0.3))
    def test_triangle_inequality_through_pivot(self, case):
        plan, source, target, pivot = case
        engine = QueryEngine.for_space(plan.space)
        direct = engine.distance(source, target)
        via_first = engine.distance(source, pivot)
        via_second = engine.distance(pivot, target)
        op = _op("pt2pt", source, target=target, pivot=pivot)
        assert triangle_violation(op, direct, via_first, via_second) is None

    @RELAXED
    @given(metamorphic_cases(one_way_probability=0.3))
    def test_every_rung_respects_the_euclidean_floor(self, case):
        plan, source, target, _ = case
        framework = IndexFramework.build(plan.space)
        engine = QueryEngine(framework)
        bound = euclidean_lower_bound(source, target)
        for served in (
            engine.distance(source, target),               # EXACT_INDEXED
            exact_fallback_distance(framework, source, target),
            door_count_distance_value(framework, source, target),
            bound,                                         # EUCLIDEAN rung
        ):
            if not math.isinf(served):
                assert served >= bound - EPS * max(1.0, bound)


class TestRungGuarantees:
    """Every QualityLevel evaluator honours its documented bound."""

    @RELAXED
    @given(workload_cases())
    def test_range_rungs(self, case):
        plan, ops = case
        framework = IndexFramework.build(
            plan.space,
            [obj for obj, _ in _objects_for(plan)],
        )
        engine = QueryEngine(framework)
        for op in ops:
            if op.kind != "range":
                continue
            truth = engine.range_query(op.position, op.radius)
            fallback = brute_force_range(
                framework.space, framework.objects, op.position, op.radius
            )
            assert fallback == truth  # EXACT_FALLBACK: identical answer
            door_count = door_count_range(framework, op.position, op.radius)
            assert set(door_count) <= set(truth)  # no false positives
            euclid = euclidean_range(framework, op.position, op.radius)
            assert set(truth) <= set(euclid)  # never misses a member

    @RELAXED
    @given(workload_cases())
    def test_knn_rungs(self, case):
        plan, ops = case
        framework = IndexFramework.build(
            plan.space,
            [obj for obj, _ in _objects_for(plan)],
        )
        engine = QueryEngine(framework)
        for op in ops:
            if op.kind != "knn":
                continue
            truth = engine.knn(op.position, op.k)
            fallback = brute_force_knn(
                framework.space, framework.objects, op.position, op.k
            )
            assert [oid for oid, _ in fallback] == [oid for oid, _ in truth]
            for oid, reported in door_count_knn(framework, op.position, op.k):
                true_distance = engine.distance(
                    op.position, engine.get_object(oid).position
                )
                assert reported >= true_distance - EPS * max(1.0, true_distance)
            for oid, reported in euclidean_knn(framework, op.position, op.k):
                true_distance = engine.distance(
                    op.position, engine.get_object(oid).position
                )
                assert reported <= true_distance + EPS * max(1.0, true_distance)

    @RELAXED
    @given(workload_cases())
    def test_pt2pt_rungs(self, case):
        plan, ops = case
        framework = IndexFramework.build(plan.space)
        engine = QueryEngine(framework)
        for op in ops:
            if op.kind != "pt2pt":
                continue
            truth = engine.distance(op.position, op.target)
            fallback = exact_fallback_distance(
                framework, op.position, op.target
            )
            assert math.isclose(fallback, truth, rel_tol=1e-9, abs_tol=1e-9)
            upper = door_count_distance_value(
                framework, op.position, op.target
            )
            if not math.isinf(truth):
                assert upper >= truth - EPS * max(1.0, truth)
            lower = euclidean_lower_bound(op.position, op.target)
            assert math.isinf(truth) or lower <= truth + EPS * max(1.0, truth)


def _objects_for(plan):
    """A small deterministic object population for a grid plan."""
    from repro.synthetic.objects import generate_objects

    return generate_objects(plan.space, 8, seed=plan.seed)
