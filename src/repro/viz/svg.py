"""SVG rendering of floor plans.

The renderer draws a single floor: partition outlines filled by kind,
obstacle polygons, doorway segments (one-way doors in a warning colour),
indoor objects as dots, an optional query circle, and optional paths as
polylines through door midpoints (a schematic of the route — exact
obstacle-avoiding waypoints inside partitions are not reconstructed).

SVG's y axis points down, so the scene is flipped vertically to keep the
floor plan in conventional orientation.
"""

from __future__ import annotations

from pathlib import Path as FilePath
from typing import Iterable, List, Optional, Sequence, Tuple, Union
from xml.sax.saxutils import escape

from repro.distance.path import IndoorPath
from repro.exceptions import GeometryError
from repro.geometry import Point
from repro.index.objects import IndoorObject
from repro.model.builder import IndoorSpace
from repro.model.entities import PartitionKind

#: Fill colours per partition kind.
KIND_FILLS = {
    PartitionKind.ROOM: "#dbeafe",
    PartitionKind.HALLWAY: "#fef9c3",
    PartitionKind.STAIRCASE: "#e9d5ff",
    PartitionKind.OUTDOOR: "#dcfce7",
}

OBSTACLE_FILL = "#9ca3af"
DOOR_COLOR = "#16a34a"
ONE_WAY_DOOR_COLOR = "#ea580c"
OBJECT_COLOR = "#1d4ed8"
PATH_COLOR = "#dc2626"
QUERY_COLOR = "#7c3aed"


class _Canvas:
    """Coordinate transform + element buffer for one SVG document."""

    def __init__(
        self, min_x: float, min_y: float, max_x: float, max_y: float, width: int
    ) -> None:
        pad = 0.03 * max(max_x - min_x, max_y - min_y, 1.0)
        self.min_x, self.min_y = min_x - pad, min_y - pad
        self.max_x, self.max_y = max_x + pad, max_y + pad
        self.scale = width / (self.max_x - self.min_x)
        self.width = width
        self.height = int(round((self.max_y - self.min_y) * self.scale))
        self.elements: List[str] = []

    def to_px(self, point: Point) -> Tuple[float, float]:
        """Model coordinates -> pixel coordinates (y flipped)."""
        x = (point.x - self.min_x) * self.scale
        y = (self.max_y - point.y) * self.scale
        return round(x, 2), round(y, 2)

    def polygon(self, points: Sequence[Point], fill: str, stroke: str = "#374151",
                stroke_width: float = 1.5, css_class: str = "") -> None:
        coords = " ".join(f"{x},{y}" for x, y in (self.to_px(p) for p in points))
        cls = f' class="{css_class}"' if css_class else ""
        self.elements.append(
            f'<polygon{cls} points="{coords}" fill="{fill}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}"/>'
        )

    def line(self, a: Point, b: Point, stroke: str, width: float,
             css_class: str = "") -> None:
        (x1, y1), (x2, y2) = self.to_px(a), self.to_px(b)
        cls = f' class="{css_class}"' if css_class else ""
        self.elements.append(
            f'<line{cls} x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" '
            f'stroke="{stroke}" stroke-width="{width}" stroke-linecap="round"/>'
        )

    def circle(self, center: Point, radius_px: float, fill: str,
               stroke: str = "none", stroke_width: float = 0.0,
               fill_opacity: float = 1.0, css_class: str = "") -> None:
        x, y = self.to_px(center)
        cls = f' class="{css_class}"' if css_class else ""
        self.elements.append(
            f'<circle{cls} cx="{x}" cy="{y}" r="{round(radius_px, 2)}" '
            f'fill="{fill}" fill-opacity="{fill_opacity}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}"/>'
        )

    def polyline(self, points: Sequence[Point], stroke: str, width: float,
                 css_class: str = "") -> None:
        coords = " ".join(f"{x},{y}" for x, y in (self.to_px(p) for p in points))
        cls = f' class="{css_class}"' if css_class else ""
        self.elements.append(
            f'<polyline{cls} points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}" stroke-dasharray="6,4"/>'
        )

    def text(self, at: Point, content: str, size_px: float = 11.0) -> None:
        x, y = self.to_px(at)
        self.elements.append(
            f'<text x="{x}" y="{y}" font-size="{size_px}" '
            f'font-family="sans-serif" fill="#111827" '
            f'text-anchor="middle">{escape(content)}</text>'
        )

    def document(self) -> str:
        body = "\n  ".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n  {body}\n</svg>\n'
        )


def _path_waypoints(space: IndoorSpace, path: IndoorPath) -> List[Point]:
    waypoints = [path.source]
    waypoints.extend(space.door(d).midpoint for d in path.doors)
    waypoints.append(path.target)
    return waypoints


def render_svg(
    space: IndoorSpace,
    floor: int = 0,
    objects: Optional[Iterable[IndoorObject]] = None,
    paths: Optional[Sequence[IndoorPath]] = None,
    query: Optional[Tuple[Point, float]] = None,
    width: int = 800,
    labels: bool = True,
) -> str:
    """Render one floor of a space to an SVG string.

    Args:
        space: the indoor space.
        floor: which floor to draw.
        objects: indoor objects to mark (those on other floors are skipped).
        paths: shortest paths to overlay as dashed polylines.
        query: optional ``(position, radius)`` range-query disc.
        width: output width in pixels (height follows the aspect ratio).
        labels: draw partition labels at centroids.

    Raises:
        GeometryError: when the floor holds no partitions.
    """
    partitions = space.partitions_on_floor(floor)
    if not partitions:
        raise GeometryError(f"no partitions on floor {floor}")

    boxes = [p.polygon.bounding_box for p in partitions]
    canvas = _Canvas(
        min(b.min_x for b in boxes),
        min(b.min_y for b in boxes),
        max(b.max_x for b in boxes),
        max(b.max_y for b in boxes),
        width,
    )

    for partition in partitions:
        canvas.polygon(
            partition.polygon.vertices,
            KIND_FILLS[partition.kind],
            css_class="partition",
        )
        for obstacle in partition.obstacles:
            canvas.polygon(
                obstacle.vertices, OBSTACLE_FILL, stroke="#4b5563",
                stroke_width=1.0, css_class="obstacle",
            )
        if labels:
            canvas.text(partition.polygon.centroid, partition.label)

    for door_id in space.door_ids:
        door = space.door(door_id)
        if door.floor != floor:
            continue
        one_way = space.topology.is_unidirectional(door_id)
        color = ONE_WAY_DOOR_COLOR if one_way else DOOR_COLOR
        if door.width > 0:
            canvas.line(door.segment.start, door.segment.end, color, 4.0,
                        css_class="door")
        else:
            canvas.circle(door.midpoint, 4.0, color, css_class="door")

    if query is not None:
        position, radius = query
        canvas.circle(
            position, radius * canvas.scale, QUERY_COLOR,
            stroke=QUERY_COLOR, stroke_width=1.0, fill_opacity=0.12,
            css_class="query",
        )
        canvas.circle(position, 4.0, QUERY_COLOR, css_class="query-center")

    if objects is not None:
        for obj in objects:
            if obj.position.floor == floor:
                canvas.circle(obj.position, 3.5, OBJECT_COLOR, css_class="object")

    if paths is not None:
        for path in paths:
            if path.is_reachable:
                canvas.polyline(
                    _path_waypoints(space, path), PATH_COLOR, 2.5,
                    css_class="path",
                )

    return canvas.document()


def save_svg(svg: str, path: Union[str, FilePath]) -> None:
    """Write an SVG string to disk."""
    FilePath(path).write_text(svg)
