"""Shared query-argument validation.

NaN is the nastiest query input: every ``<=`` budget comparison against it
is false, so a NaN radius or coordinate silently turns a range query into
garbage instead of an error.  These helpers reject non-finite inputs at the
query boundary with :class:`~repro.exceptions.QueryError`.
"""

from __future__ import annotations

import math

from repro.exceptions import QueryError
from repro.geometry import Point


def require_finite(value: float, what: str) -> float:
    """Reject NaN and ±inf with a :class:`QueryError` naming the argument."""
    if not math.isfinite(value):
        raise QueryError(f"{what} must be finite, got {value}")
    return value


def require_finite_position(position: Point, what: str = "query position") -> Point:
    """Reject positions with NaN / infinite coordinates."""
    if not (math.isfinite(position.x) and math.isfinite(position.y)):
        raise QueryError(
            f"{what} must have finite coordinates, got {position}"
        )
    return position
