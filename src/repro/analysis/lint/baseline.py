"""Committed baseline: legacy findings gate only on regressions.

The baseline file (``.repro-lint-baseline.json`` at the repo root) maps
finding fingerprints to a descriptive record.  A lint run partitions its
findings against it:

* **new** — findings whose fingerprint is absent: these fail the run.
* **baselined** — fingerprints present in both: reported only with
  ``--show-baselined``, never gating.
* **expired** — baseline entries no current finding matches: the debt
  was paid; ``--write-baseline`` prunes them.

Fingerprints hash the rule, path, and offending line *text* (see
:class:`repro.analysis.lint.findings.Finding`), so edits elsewhere in a
file do not churn the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.lint.findings import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint -> recorded finding summary."""

    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load ``path``; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"malformed baseline file: {path}")
        entries = payload["entries"]
        if not isinstance(entries, dict):
            raise ValueError(f"malformed baseline entries: {path}")
        return cls(entries=dict(entries))

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "entries": {
                fingerprint: self.entries[fingerprint]
                for fingerprint in sorted(self.entries)
            },
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def partition(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Split ``findings`` into (new, baselined, expired fingerprints)."""
        new: List[Finding] = []
        baselined: List[Finding] = []
        seen: set = set()
        for finding in findings:
            fingerprint = finding.fingerprint
            if fingerprint in self.entries:
                baselined.append(finding)
                seen.add(fingerprint)
            else:
                new.append(finding)
        expired = [fp for fp in sorted(self.entries) if fp not in seen]
        return new, baselined, expired

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Build a fresh baseline accepting every current finding."""
        entries: Dict[str, Dict[str, object]] = {}
        for finding in findings:
            entries[finding.fingerprint] = {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
        return cls(entries=entries)
