"""FloorPlacement: determinism, coverage, both layouts, round-trips."""

import pytest

from repro.model.figure1 import build_figure1
from repro.shard import FloorPlacement


@pytest.fixture(scope="module")
def space():
    return build_figure1()


class TestForSpace:
    def test_deterministic(self, space):
        assert FloorPlacement.for_space(space, 3) == FloorPlacement.for_space(
            space, 3
        )

    def test_every_partition_assigned_exactly_once(self, space):
        placement = FloorPlacement.for_space(space, 3)
        covered = [
            pid
            for shard in placement.shard_ids
            for pid in placement.partitions_of(shard)
        ]
        assert sorted(covered) == sorted(
            p.partition_id for p in space.partitions()
        )
        assert len(covered) == len(set(covered))

    def test_partition_split_when_fewer_floors_than_shards(self, space):
        # Figure 1 is single-floor, so 3 shards force the partition-split
        # layout: contiguous runs ordered by (floor, id).
        placement = FloorPlacement.for_space(space, 3)
        runs = [placement.partitions_of(s) for s in placement.shard_ids]
        assert all(runs), "no shard may be left empty on a split"
        flat = [pid for run in runs for pid in run]
        assert flat == sorted(flat)

    def test_lookup_matches_partitions_of(self, space):
        placement = FloorPlacement.for_space(space, 2)
        for shard in placement.shard_ids:
            for pid in placement.partitions_of(shard):
                assert placement.shard_for_partition(pid) == shard

    def test_single_shard_owns_everything(self, space):
        placement = FloorPlacement.for_space(space, 1)
        assert placement.partitions_of(0) == tuple(
            sorted(p.partition_id for p in space.partitions())
        )


class TestValidation:
    def test_zero_shards_rejected(self, space):
        with pytest.raises(ValueError, match="num_shards"):
            FloorPlacement.for_space(space, 0)

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            FloorPlacement(2, {1: 5}, {1: 0})

    def test_unknown_partition_raises_keyerror(self, space):
        placement = FloorPlacement.for_space(space, 2)
        with pytest.raises(KeyError, match="not in this placement"):
            placement.shard_for_partition(10**9)


class TestSerialisation:
    def test_dict_roundtrip(self, space):
        placement = FloorPlacement.for_space(space, 3)
        assert FloorPlacement.from_dict(placement.to_dict()) == placement

    def test_preferred_shard_clamps_unknown_floor(self, space):
        placement = FloorPlacement.for_space(space, 3)
        # Floors outside the building clamp to the nearest assigned one.
        assert placement.preferred_shard_for_floor(99) in placement.shard_ids
