"""Rolling-reconfiguration benchmark: ``python -m repro reconfig-bench``.

Answers the question the epoch-fenced reconfiguration protocol
(:mod:`repro.shard.reconfig`) exists for: *what does a topology change
cost the query stream?*  A continuous mixed workload hammers a
:class:`~repro.shard.service.ShardedQueryService` from a pump thread
while the main thread drives a sequence of door mutations through two
strategies:

* **rolling** — each mutation runs as one epoch-fenced round through the
  :class:`~repro.shard.reconfig.ReconfigRecorder`: workers stage the next
  epoch on private copies while still serving, then commits flip them one
  by one.  The fleet never stops; only queries racing a round may degrade
  to their Euclidean gap fill.
* **stop_world** — the classic alternative: shut the fleet down, rebuild
  the framework at the new topology, start a fresh fleet.  Every query
  issued during the window is an error (counted ``unavailable``).

Every answered query is judged by a per-epoch differential oracle — a
pristine :class:`~repro.queries.engine.QueryEngine` built fresh at the
epoch the response claims (:attr:`~repro.serve.requests.QueryResponse.
served_epoch`), reusing the chaos rung-guarantee checks — so
``mismatches`` counts answers that are not bit-identical to a freshly
built index at their own epoch.  ``epoch_mix_violations`` counts merges
whose shard replies straddle two epochs; the fencing invariant says both
must be **zero**, and the bench gate holds them there.

The committed artifact (``BENCH_reconfig.json``) gates on
``rolling.availability`` (fraction of attempts answered at full exact
quality *while the topology was changing underneath*) as a ratio metric,
plus hard-zero ``rolling.mismatches`` and
``rolling.epoch_mix_violations``.

Scale is selected through ``REPRO_BENCH_SCALE`` like the other
benchmarks: ``quick`` (default, seconds) or ``paper`` (more rounds).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.oracles import DifferentialOracle, OracleViolation
from repro.geometry import Point, Segment
from repro.index.framework import IndexFramework
from repro.io.json_io import space_from_dict, space_to_dict
from repro.model.builder import IndoorSpace
from repro.model.figure1 import build_figure1
from repro.persist.wal import TopologyWAL, WalRecorder
from repro.runtime.ladder import QualityLevel
from repro.serve.requests import QueryResponse
from repro.shard.service import ShardedQueryService
from repro.synthetic.objects import generate_objects
from repro.synthetic.workload import WorkloadOp, query_workload


@dataclass(frozen=True)
class ReconfigScale:
    """Workload shape for one reconfiguration-benchmark scale.

    Attributes:
        name: scale label echoed into the result.
        shards: worker processes in the fleet.
        objects: indoor objects populating the store.
        rounds: topology mutation rounds per strategy (the benchmark
            alternates removing and re-adding Figure 1's d24, so every
            round changes the topology epoch by exactly one).
        workload_ops: distinct ops in the pump's cyclic stream.
        pump_pause_ms: pause between pumped queries (keeps the pump from
            monopolising the campaign thread's GIL slice).
        settle_s: quiet time after the last round so the tail of the
            stream measures the healed fleet.
    """

    name: str
    shards: int
    objects: int
    rounds: int
    workload_ops: int
    pump_pause_ms: float
    settle_s: float


RECONFIG_QUICK = ReconfigScale(
    name="quick",
    shards=3,
    objects=12,
    rounds=4,
    workload_ops=40,
    pump_pause_ms=2.0,
    settle_s=0.5,
)

RECONFIG_PAPER = ReconfigScale(
    name="paper",
    shards=3,
    objects=24,
    rounds=8,
    workload_ops=80,
    pump_pause_ms=1.0,
    settle_s=1.0,
)


def current_reconfig_scale() -> ReconfigScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").strip().lower()
    if name == "paper":
        return RECONFIG_PAPER
    return RECONFIG_QUICK


#: The door every round toggles: Figure 1's d24 (rooms 21-22 stay
#: connected through d21/d22, so the oracle keeps finite exact answers).
_DOOR_ID = 24
_DOOR_GEOMETRY = Segment(Point(16.0, 1.6, 0), Point(16.0, 2.4, 0))
_DOOR_CONNECTS = (21, 22)


def _apply_round(recorder, round_index: int) -> None:
    """Round ``i`` removes d24 when even, re-adds it when odd."""
    if round_index % 2 == 0:
        recorder.remove_door(_DOOR_ID)
    else:
        recorder.add_door(_DOOR_ID, _DOOR_GEOMETRY, connects=_DOOR_CONNECTS)


def _epoch_spaces(base: IndoorSpace, rounds: int, wal_dir) -> List[IndoorSpace]:
    """A pristine space at every epoch ``0..rounds`` the run will visit,
    produced by replaying the same mutation sequence on private copies."""
    spaces = [base]
    current = space_from_dict(space_to_dict(base))
    current.restore_topology_epoch(base.topology_epoch)
    recorder = WalRecorder(current, TopologyWAL(wal_dir / "pristine-wal.log"))
    for index in range(rounds):
        _apply_round(recorder, index)
        frozen = space_from_dict(space_to_dict(current))
        frozen.restore_topology_epoch(current.topology_epoch)
        spaces.append(frozen)
    return spaces


@dataclass
class _Sample:
    """One pumped query's outcome."""

    op: WorkloadOp
    response: Optional[QueryResponse]  # None: the attempt errored
    latency_ms: float


class _QueryPump:
    """A thread cycling the workload against whatever service is live."""

    def __init__(self, ops: List[WorkloadOp], pause_ms: float) -> None:
        self._ops = ops
        self._pause_s = pause_ms / 1000.0
        self._stop = threading.Event()
        self.service: Optional[ShardedQueryService] = None
        self.samples: List[_Sample] = []
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        index = 0
        while not self._stop.is_set():
            op = self._ops[index % len(self._ops)]
            index += 1
            service = self.service
            start = time.perf_counter()
            try:
                if service is None:
                    raise RuntimeError("fleet is down")
                response = service.execute(op.to_request())
            except Exception:
                # Stop-the-world windows: the attempt itself is the datum.
                self.samples.append(_Sample(
                    op, None, (time.perf_counter() - start) * 1000.0
                ))
            else:
                self.samples.append(_Sample(
                    op, response, (time.perf_counter() - start) * 1000.0
                ))
            if self._pause_s:
                time.sleep(self._pause_s)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=30.0)


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
    return round(ordered[rank], 4)


def _summarise(
    samples: List[_Sample],
    oracles: Dict[int, DifferentialOracle],
    round_wall_s: List[float],
) -> Dict[str, Any]:
    """Availability / latency / correctness summary of one strategy."""
    answered = [s for s in samples if s.response is not None]
    exact = [
        s for s in answered
        if s.response.quality is QualityLevel.EXACT_INDEXED
    ]
    mismatches = 0
    epoch_mix = 0
    for sample in answered:
        response = sample.response
        if len(set(response.reply_epochs)) > 1:
            epoch_mix += 1
        oracle = oracles.get(response.served_epoch)
        if oracle is None:
            # An epoch outside the planned sequence is itself a failure.
            mismatches += 1
            continue
        try:
            oracle.check(sample.op, response)
        except OracleViolation:
            mismatches += 1
    latencies = [s.latency_ms for s in answered]
    total = len(samples)
    return {
        "attempts": total,
        "answered": len(answered),
        "exact": len(exact),
        "degraded": len(answered) - len(exact),
        "unavailable": total - len(answered),
        "availability": len(exact) / total if total else 0.0,
        "answered_fraction": len(answered) / total if total else 0.0,
        "p50_ms": _percentile(latencies, 0.50),
        "p99_ms": _percentile(latencies, 0.99),
        "mismatches": mismatches,
        "epoch_mix_violations": epoch_mix,
        "round_wall_s": [round(w, 4) for w in round_wall_s],
        "mean_round_s": (
            round(sum(round_wall_s) / len(round_wall_s), 4)
            if round_wall_s else 0.0
        ),
    }


def measure_reconfig(
    scale: Optional[ReconfigScale] = None, seed: int = 0
) -> Dict[str, Any]:
    """Run the reconfiguration benchmark; returns one JSON-ready dict."""
    import tempfile
    from pathlib import Path

    scale = scale or current_reconfig_scale()
    base = build_figure1()
    objects = [
        obj for obj, _ in generate_objects(base, scale.objects, seed=seed)
    ]
    ops = query_workload(base, scale.workload_ops, seed=seed)

    with tempfile.TemporaryDirectory(prefix="repro-reconfig-bench-") as tmp:
        tmpdir = Path(tmp)
        spaces = _epoch_spaces(base, scale.rounds, tmpdir)
        oracles = {
            space.topology_epoch: DifferentialOracle(space, objects)
            for space in spaces
        }

        rolling = _measure_rolling(scale, objects, ops, oracles)
        stop_world = _measure_stop_world(scale, objects, ops, oracles)

    advantage = (
        rolling["availability"] / stop_world["availability"]
        if stop_world["availability"] else float("inf")
    )
    return {
        "scale": scale.name,
        "seed": seed,
        "shards": scale.shards,
        "rounds": scale.rounds,
        "rolling": rolling,
        "stop_world": stop_world,
        "availability_advantage": (
            round(advantage, 4) if advantage != float("inf") else None
        ),
    }


def _fresh_space(base_dicts_source: IndoorSpace) -> IndoorSpace:
    fresh = space_from_dict(space_to_dict(base_dicts_source))
    fresh.restore_topology_epoch(base_dicts_source.topology_epoch)
    return fresh


def _measure_rolling(
    scale: ReconfigScale,
    objects,
    ops: List[WorkloadOp],
    oracles: Dict[int, DifferentialOracle],
) -> Dict[str, Any]:
    """Mutations rolled through the live fleet; the pump never pauses."""
    framework = IndexFramework.build(_fresh_space(build_figure1()), objects)
    service = ShardedQueryService(
        framework=framework,
        shards=scale.shards,
        cache_capacity=0,
        start_method="fork",
    )
    service.start(wait=True)
    pump = _QueryPump(ops, scale.pump_pause_ms)
    pump.service = service
    round_wall_s: List[float] = []
    try:
        pump.start()
        recorder = service.wal_recorder()
        for index in range(scale.rounds):
            start = time.perf_counter()
            _apply_round(recorder, index)
            round_s = time.perf_counter() - start
            round_wall_s.append(round_s)
            # Self-normalising duty cycle: serve for at least twice as
            # long as the round took, so availability measures the
            # protocol's overhead rather than this host's build speed.
            time.sleep(max(scale.settle_s / scale.rounds, 2.0 * round_s))
        time.sleep(scale.settle_s)
    finally:
        pump.stop()
        service.shutdown()
    return _summarise(pump.samples, oracles, round_wall_s)


def _measure_stop_world(
    scale: ReconfigScale,
    objects,
    ops: List[WorkloadOp],
    oracles: Dict[int, DifferentialOracle],
) -> Dict[str, Any]:
    """The baseline: every mutation is a full shutdown-rebuild-restart."""
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory(prefix="repro-stopworld-") as tmp:
        tmpdir = Path(tmp)
        space = _fresh_space(build_figure1())
        recorder = WalRecorder(
            space, TopologyWAL(tmpdir / "stop-world-wal.log")
        )

        def fleet() -> ShardedQueryService:
            framework = IndexFramework.build(space, objects)
            service = ShardedQueryService(
                framework=framework,
                shards=scale.shards,
                cache_capacity=0,
                start_method="fork",
            )
            service.start(wait=True)
            return service

        service = fleet()
        pump = _QueryPump(ops, scale.pump_pause_ms)
        pump.service = service
        round_wall_s: List[float] = []
        try:
            pump.start()
            for index in range(scale.rounds):
                start = time.perf_counter()
                pump.service = None
                service.shutdown()
                _apply_round(recorder, index)
                service = fleet()
                pump.service = service
                round_s = time.perf_counter() - start
                round_wall_s.append(round_s)
                # Same duty cycle as the rolling run, for a fair fight.
                time.sleep(max(scale.settle_s / scale.rounds, 2.0 * round_s))
            time.sleep(scale.settle_s)
        finally:
            pump.stop()
            service.shutdown()
    return _summarise(pump.samples, oracles, round_wall_s)


def render_reconfig_summary(result: Dict[str, Any]) -> str:
    """A short plain-text summary of one :func:`measure_reconfig` result."""
    lines = [
        f"reconfig-bench  scale={result['scale']}  seed={result['seed']}  "
        f"shards={result['shards']}  rounds={result['rounds']}",
    ]
    for strategy in ("rolling", "stop_world"):
        section = result[strategy]
        lines.append(
            f"  {strategy:<10}  availability {section['availability']:.3f}  "
            f"(exact {section['exact']}/{section['attempts']}, "
            f"degraded {section['degraded']}, "
            f"unavailable {section['unavailable']})   "
            f"p50 {section['p50_ms']:.1f} ms  p99 {section['p99_ms']:.1f} ms  "
            f"mean round {section['mean_round_s']:.2f} s"
        )
        lines.append(
            f"              mismatches {section['mismatches']}  "
            f"epoch-mix violations {section['epoch_mix_violations']}"
        )
    advantage = result.get("availability_advantage")
    lines.append(
        "  rolling serves "
        + (f"{advantage:.2f}x" if advantage is not None else "infinitely")
        + " more exact answers per attempt than stop-the-world"
    )
    return "\n".join(lines)
