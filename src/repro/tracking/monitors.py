"""Standing range / kNN queries maintained under object churn.

Maintenance strategy: cheap local updates where possible, falling back to a
full re-evaluation only where removing information demands it (an object
leaving a kNN result opens a slot only a fresh search can fill).  Each
monitor records the events a service would act on.
"""

from __future__ import annotations

import bisect
import enum
import math
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.distance.point_to_point import pt2pt_distance_memoized
from repro.exceptions import QueryError
from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.queries.knn_query import knn_query
from repro.queries.range_query import range_query


class EventKind(enum.Enum):
    """What happened to a monitored result."""

    ENTER = "enter"  # object entered a range result
    EXIT = "exit"  # object left a range result
    RESULT_CHANGED = "result-changed"  # kNN membership or order changed


@dataclass(frozen=True)
class MonitorEvent:
    """One observed change.

    Attributes:
        kind: what happened.
        object_id: the object concerned (for ENTER/EXIT) or the object whose
            mutation triggered a kNN change.
        sequence: monotonically increasing per monitor.
    """

    kind: EventKind
    object_id: int
    sequence: int


class RangeMonitor:
    """A standing range query ``Q_r(q, r)`` with ENTER/EXIT events."""

    def __init__(
        self, framework: IndexFramework, position: Point, radius: float
    ) -> None:
        if radius < 0:
            raise QueryError(f"range radius must be non-negative, got {radius}")
        self._framework = framework
        self.position = position
        self.radius = radius
        self._members: Set[int] = set(range_query(framework, position, radius))
        self.events: List[MonitorEvent] = []
        self._sequence = 0

    @property
    def result(self) -> List[int]:
        """Current member object ids, sorted."""
        return sorted(self._members)

    def _emit(self, kind: EventKind, object_id: int) -> None:
        self.events.append(MonitorEvent(kind, object_id, self._sequence))
        self._sequence += 1

    def _distance_to(self, object_id: int) -> float:
        obj = self._framework.objects.get(object_id)
        return pt2pt_distance_memoized(
            self._framework.space, self.position, obj.position
        )

    def on_added(self, object_id: int) -> None:
        """An object was inserted into the store."""
        if self._distance_to(object_id) <= self.radius:
            self._members.add(object_id)
            self._emit(EventKind.ENTER, object_id)

    def on_removed(self, object_id: int) -> None:
        """An object was removed from the store."""
        if object_id in self._members:
            self._members.discard(object_id)
            self._emit(EventKind.EXIT, object_id)

    def on_moved(self, object_id: int) -> None:
        """An object changed position (already updated in the store)."""
        inside = self._distance_to(object_id) <= self.radius
        was_inside = object_id in self._members
        if inside and not was_inside:
            self._members.add(object_id)
            self._emit(EventKind.ENTER, object_id)
        elif not inside and was_inside:
            self._members.discard(object_id)
            self._emit(EventKind.EXIT, object_id)


class KnnMonitor:
    """A standing kNN query with result-change events."""

    def __init__(
        self, framework: IndexFramework, position: Point, k: int
    ) -> None:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self._framework = framework
        self.position = position
        self.k = k
        self._result: List[Tuple[float, int]] = [
            (distance, object_id)
            for object_id, distance in knn_query(framework, position, k)
        ]
        self.events: List[MonitorEvent] = []
        self._sequence = 0

    @property
    def result(self) -> List[Tuple[int, float]]:
        """Current ``(object_id, distance)`` pairs, nearest first."""
        return [(object_id, distance) for distance, object_id in self._result]

    @property
    def _bound(self) -> float:
        if len(self._result) < self.k:
            return math.inf
        return self._result[-1][0]

    def _emit(self, object_id: int) -> None:
        self.events.append(
            MonitorEvent(EventKind.RESULT_CHANGED, object_id, self._sequence)
        )
        self._sequence += 1

    def _distance_to(self, object_id: int) -> float:
        obj = self._framework.objects.get(object_id)
        return pt2pt_distance_memoized(
            self._framework.space, self.position, obj.position
        )

    def _refresh(self) -> None:
        self._result = [
            (distance, object_id)
            for object_id, distance in knn_query(
                self._framework, self.position, self.k
            )
        ]

    def _drop(self, object_id: int) -> bool:
        for index, (_, member) in enumerate(self._result):
            if member == object_id:
                del self._result[index]
                return True
        return False

    def on_added(self, object_id: int) -> None:
        """An object was inserted into the store."""
        distance = self._distance_to(object_id)
        if math.isinf(distance) or distance >= self._bound:
            return
        bisect.insort(self._result, (distance, object_id))
        del self._result[self.k :]
        self._emit(object_id)

    def on_removed(self, object_id: int) -> None:
        """An object was removed from the store."""
        if self._drop(object_id):
            # A slot opened: only a fresh search knows the next candidate.
            self._refresh()
            self._emit(object_id)

    def on_moved(self, object_id: int) -> None:
        """An object changed position (already updated in the store).

        Every non-member is known to be at least ``old_bound`` away, so a
        member that stays within ``old_bound`` keeps the membership set
        intact (only its distance changes); a member moving beyond it may
        have been overtaken by a cut-off non-member, which only a fresh
        search can reveal.
        """
        old_bound = self._bound
        distance = self._distance_to(object_id)
        was_member = self._drop(object_id)
        if was_member:
            if not math.isinf(distance) and distance <= old_bound:
                bisect.insort(self._result, (distance, object_id))
            else:
                self._refresh()
            self._emit(object_id)
        else:
            if not math.isinf(distance) and distance < old_bound:
                bisect.insort(self._result, (distance, object_id))
                del self._result[self.k :]
                self._emit(object_id)
