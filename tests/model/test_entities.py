"""Tests for partitions and doors."""

import math

import pytest

from repro.exceptions import GeometryError, ModelError
from repro.geometry import Point, Segment, rectangle
from repro.model import Door, Partition, PartitionKind


class TestDoor:
    def test_midpoint_and_width(self):
        door = Door(1, Segment(Point(0, 4), Point(2, 4)))
        assert door.midpoint == Point(1, 4)
        assert door.width == pytest.approx(2.0)

    def test_point_door_has_zero_width(self):
        door = Door.at_point(2, Point(3, 3))
        assert door.width == 0.0
        assert door.midpoint == Point(3, 3)

    def test_negative_id_raises(self):
        with pytest.raises(ModelError):
            Door.at_point(-1, Point(0, 0))

    def test_label_defaults_to_id(self):
        assert Door.at_point(7, Point(0, 0)).label == "d7"
        assert Door.at_point(7, Point(0, 0), name="main").label == "main"

    def test_floor_follows_segment(self):
        assert Door.at_point(1, Point(0, 0, floor=3)).floor == 3


class TestPartition:
    def test_negative_id_raises(self):
        with pytest.raises(ModelError):
            Partition(-5, rectangle(0, 0, 1, 1))

    def test_stair_length_requires_staircase(self):
        with pytest.raises(ModelError):
            Partition(1, rectangle(0, 0, 1, 1), stair_length=3.0)
        with pytest.raises(ModelError):
            Partition(
                1,
                rectangle(0, 0, 1, 1),
                PartitionKind.STAIRCASE,
                stair_length=-1.0,
            )

    def test_obstacle_floor_mismatch_raises(self):
        with pytest.raises(GeometryError):
            Partition(
                1,
                rectangle(0, 0, 4, 4, floor=0),
                obstacles=(rectangle(1, 1, 2, 2, floor=1),),
            )

    def test_contains_respects_obstacles(self):
        room = Partition(
            1, rectangle(0, 0, 10, 10), obstacles=(rectangle(4, 4, 6, 6),)
        )
        assert room.contains(Point(1, 1))
        assert not room.contains(Point(5, 5))  # inside the obstacle
        assert room.contains(Point(4, 5))  # on the obstacle edge
        assert not room.contains(Point(11, 1))
        assert not room.contains(Point(1, 1, floor=2))

    def test_intra_distance_euclidean_when_clear(self):
        room = Partition(1, rectangle(0, 0, 10, 10))
        assert room.intra_distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_intra_distance_detours_around_obstacle(self):
        room = Partition(
            1, rectangle(0, 0, 10, 10), obstacles=(rectangle(4, 4, 6, 6),)
        )
        d = room.intra_distance(Point(1, 5), Point(9, 5))
        assert d > 8.0

    def test_intra_distance_cross_floor_without_stairs_is_inf(self):
        room = Partition(1, rectangle(0, 0, 10, 10))
        assert math.isinf(room.intra_distance(Point(1, 1, 0), Point(1, 1, 1)))

    def test_intra_path_returns_waypoints(self):
        room = Partition(1, rectangle(0, 0, 10, 10))
        dist, path = room.intra_path(Point(0, 0), Point(3, 4))
        assert dist == pytest.approx(5.0)
        assert path[0] == Point(0, 0)
        assert path[-1] == Point(3, 4)

    def test_max_distance_from_corner_is_diagonal(self):
        room = Partition(1, rectangle(0, 0, 3, 4))
        assert room.max_distance_from(Point(0, 0)) == pytest.approx(5.0)

    def test_max_distance_from_door_in_wall(self):
        # The paper's f_dv example: from a door in the middle of a wall, the
        # farthest point is a far corner.
        room = Partition(1, rectangle(0, 0, 10, 4))
        assert room.max_distance_from(Point(5, 0)) == pytest.approx(
            Point(5, 0).distance_to(Point(0, 4))
        )

    def test_label(self):
        assert Partition(3, rectangle(0, 0, 1, 1)).label == "v3"
        assert Partition(3, rectangle(0, 0, 1, 1), name="room 3").label == "room 3"


class TestStaircasePartition:
    @pytest.fixture
    def stairs(self):
        return Partition(
            50,
            rectangle(0, 0, 4, 4, floor=0),
            PartitionKind.STAIRCASE,
            stair_length=6.0,
        )

    def test_spans_two_floors(self, stairs):
        assert stairs.floors == (0, 1)

    def test_contains_on_both_floors(self, stairs):
        assert stairs.contains(Point(2, 2, floor=0))
        assert stairs.contains(Point(2, 2, floor=1))
        assert not stairs.contains(Point(2, 2, floor=2))

    def test_cross_floor_distance_is_stair_length(self, stairs):
        assert stairs.intra_distance(
            Point(2, 4, floor=0), Point(2, 4, floor=1)
        ) == pytest.approx(6.0)

    def test_same_floor_distance_is_planar(self, stairs):
        assert stairs.intra_distance(
            Point(0, 0, floor=1), Point(3, 4, floor=1)
        ) == pytest.approx(5.0)

    def test_max_distance_at_least_stair_length(self, stairs):
        assert stairs.max_distance_from(Point(2, 4, floor=0)) >= 6.0

    def test_staircase_without_stair_length_is_single_floor(self):
        plain = Partition(
            50, rectangle(0, 0, 4, 4), PartitionKind.STAIRCASE
        )
        assert plain.floors == (0,)
