"""Shared fixtures for the serving-layer tests."""

import random

import pytest

from repro.index import IndexFramework, IndoorObject
from repro.model.figure1 import build_figure1
from tests.queries.conftest import random_point_in


@pytest.fixture
def serve_framework():
    """A fresh Figure-1 space + 60 deterministic objects, fully indexed.

    Function-scoped: the service tests mutate the topology mid-stream.
    """
    space = build_figure1()
    rng = random.Random(4242)
    indoor_ids = [p for p in space.partition_ids if p != 0]
    objects = [
        IndoorObject(i, random_point_in(space, rng, indoor_ids))
        for i in range(60)
    ]
    return IndexFramework.build(space, objects)


@pytest.fixture
def query_positions(serve_framework):
    """A deterministic pool of valid query positions in the space."""
    space = serve_framework.space
    rng = random.Random(17)
    indoor_ids = [p for p in space.partition_ids if p != 0]
    return [random_point_in(space, rng, indoor_ids) for _ in range(12)]
