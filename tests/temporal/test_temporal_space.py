"""Tests for time-parameterised indoor spaces."""

import math

import pytest

from repro.distance import pt2pt_distance
from repro.model.figure1 import D12, D13, D15, P, Q, build_figure1
from repro.temporal import DoorSchedule, TemporalIndoorSpace, TimeInterval


@pytest.fixture(scope="module")
def base_space():
    return build_figure1()


def office_hours_space(base_space):
    """d13 (the only door *into* room 13) is open 8:00-18:00 only."""
    schedule = DoorSchedule()
    schedule.set_open(D13, [TimeInterval(8.0, 18.0)])
    return TemporalIndoorSpace(base_space, schedule)


class TestSnapshots:
    def test_unrestricted_schedule_matches_base(self, base_space):
        temporal = TemporalIndoorSpace(base_space, DoorSchedule())
        assert temporal.open_doors(12.0) == frozenset(base_space.door_ids)
        assert temporal.distance(12.0, P, Q) == pytest.approx(
            pt2pt_distance(base_space, P, Q)
        )

    def test_snapshot_caching_by_regime(self, base_space):
        temporal = office_hours_space(base_space)
        temporal.distance(9.0, P, Q)
        temporal.distance(10.0, P, Q)  # same regime
        temporal.distance(20.0, Q, Q.translated(0.5, 0))  # night regime
        assert temporal.snapshot_count == 2

    def test_directionality_survives_snapshot(self, base_space):
        temporal = TemporalIndoorSpace(base_space, DoorSchedule())
        snapshot = temporal.snapshot(0.0)
        assert snapshot.topology.is_unidirectional(D12)
        assert snapshot.topology.is_unidirectional(D15)


class TestTimeDependentDistances:
    def test_day_route_matches_base(self, base_space):
        temporal = office_hours_space(base_space)
        assert temporal.distance(12.0, P, Q) == pytest.approx(
            pt2pt_distance(base_space, P, Q)
        )

    def test_p_to_q_still_works_at_night_via_d15(self, base_space):
        # With d13 closed, p can still leave room 13 through one-way d15.
        temporal = office_hours_space(base_space)
        night = temporal.distance(22.0, P, Q)
        assert night == pytest.approx(pt2pt_distance(base_space, P, Q))

    def test_q_to_p_unreachable_at_night(self, base_space):
        # d13 is the only door entering room 13: at night, no way in.
        temporal = office_hours_space(base_space)
        assert temporal.is_reachable(12.0, Q, P)
        assert not temporal.is_reachable(22.0, Q, P)
        assert math.isinf(temporal.distance(22.0, Q, P))

    def test_night_path_object(self, base_space):
        temporal = office_hours_space(base_space)
        path = temporal.shortest_path(22.0, Q, P)
        assert not path.is_reachable

    def test_closing_d15_forces_p_through_d13(self, base_space):
        schedule = DoorSchedule()
        schedule.set_closed(D15)
        temporal = TemporalIndoorSpace(base_space, schedule)
        path = temporal.shortest_path(12.0, P, Q)
        assert path.doors == (D13,)
        assert temporal.distance(12.0, P, Q) > pt2pt_distance(base_space, P, Q)

    def test_lockdown_isolates_everything(self, base_space):
        schedule = DoorSchedule()
        for door_id in base_space.door_ids:
            schedule.set_closed(door_id)
        temporal = TemporalIndoorSpace(base_space, schedule)
        assert temporal.open_doors(0.0) == frozenset()
        assert not temporal.is_reachable(0.0, P, Q)
        # Within one partition movement is still possible.
        assert temporal.distance(0.0, P, P.translated(0.5, 0.5)) == pytest.approx(
            P.distance_to(P.translated(0.5, 0.5))
        )
