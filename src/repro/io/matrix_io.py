"""NPZ persistence for the door-to-door distance matrix.

M_d2d for a 40-floor building is ~1 350² doubles; recomputing it is cheap
with the bulk builder but free when loaded from disk.  M_idx is derived, so
only M_d2d and the door-id labelling are stored.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.distance.matrix import DoorDistanceMatrix
from repro.exceptions import SerializationError
from repro.index.distance_matrix import DistanceIndexMatrix

PathLike = Union[str, Path]


def save_distance_index(index: DistanceIndexMatrix, path: PathLike) -> None:
    """Write M_d2d (+ door ids) to a compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        matrix=index.md2d,
        door_ids=np.asarray(index.door_ids, dtype=np.int64),
    )


def load_distance_index(path: PathLike) -> DistanceIndexMatrix:
    """Read a distance index back; M_idx is re-derived on load."""
    try:
        with np.load(Path(path)) as data:
            matrix = data["matrix"]
            door_ids = tuple(int(d) for d in data["door_ids"])
    except (OSError, KeyError, ValueError) as exc:
        raise SerializationError(f"cannot load distance matrix: {exc}") from exc
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise SerializationError(f"matrix is not square: {matrix.shape}")
    if matrix.shape[0] != len(door_ids):
        raise SerializationError(
            f"door id count {len(door_ids)} does not match matrix "
            f"size {matrix.shape[0]}"
        )
    return DistanceIndexMatrix(DoorDistanceMatrix(matrix, door_ids))
