"""Tests for object and workload generation (§VI-B)."""

import random

import pytest

from repro.synthetic import (
    BuildingConfig,
    build_object_store,
    generate_building,
    generate_objects,
    random_position,
    random_position_pairs,
    random_positions,
)
from repro.synthetic.objects import random_point_in_partition


@pytest.fixture(scope="module")
def building():
    return generate_building(BuildingConfig(floors=2, rooms_per_floor=6))


class TestObjectGeneration:
    def test_objects_live_in_their_claimed_partition(self, building):
        pairs = generate_objects(building.space, 50, seed=1)
        for obj, partition_id in pairs:
            assert building.space.partition(partition_id).contains(obj.position)

    def test_object_ids_are_sequential(self, building):
        pairs = generate_objects(building.space, 10, seed=2)
        assert [obj.object_id for obj, _ in pairs] == list(range(10))

    def test_seed_determinism(self, building):
        a = generate_objects(building.space, 20, seed=7)
        b = generate_objects(building.space, 20, seed=7)
        assert [(o.position, p) for o, p in a] == [(o.position, p) for o, p in b]
        c = generate_objects(building.space, 20, seed=8)
        assert [(o.position, p) for o, p in a] != [(o.position, p) for o, p in c]

    def test_partition_filter(self, building):
        target = building.rooms_on_floor(0)[0]
        pairs = generate_objects(building.space, 15, seed=3, partition_ids=[target])
        assert all(p == target for _, p in pairs)

    def test_build_object_store(self, building):
        store = build_object_store(building, 100, seed=4)
        assert len(store) == 100
        # Objects avoid staircases (they are POIs).
        for staircase_id in building.staircase_ids:
            assert store.objects_in(staircase_id) == []

    def test_store_positions_match_host_buckets(self, building):
        store = build_object_store(building, 50, seed=5)
        for obj in store:
            host = store.host_partition_id(obj.object_id)
            assert building.space.partition(host).contains(obj.position)

    def test_random_point_in_partition_respects_obstacles(self):
        from repro.geometry import rectangle
        from repro.model import Partition

        room = Partition(
            1, rectangle(0, 0, 10, 10), obstacles=(rectangle(2, 2, 8, 8),)
        )
        rng = random.Random(0)
        for _ in range(50):
            point = random_point_in_partition(room, rng)
            assert room.contains(point)


class TestWorkload:
    def test_positions_are_indoor(self, building):
        for point in random_positions(building, 30, seed=1):
            host = building.space.get_host_partition(point)
            assert host is not None

    def test_positions_avoid_staircases(self, building):
        staircases = set(building.staircase_ids)
        for point in random_positions(building, 30, seed=2):
            host = building.space.get_host_partition(point)
            assert host.partition_id not in staircases

    def test_fixed_floor(self, building):
        rng = random.Random(3)
        for _ in range(10):
            point = random_position(building, rng, floor=1)
            assert point.floor == 1

    def test_pairs_determinism(self, building):
        a = random_position_pairs(building, 10, seed=9)
        b = random_position_pairs(building, 10, seed=9)
        assert a == b

    def test_pair_count(self, building):
        assert len(random_position_pairs(building, 17, seed=0)) == 17

    def test_positions_are_area_uniform(self, building):
        """Hallways are roughly a third of each floor's area, so roughly a
        third of sampled positions land in hallways — the mix that drives
        the Figure-6 Algorithm-2 separation."""
        hallways = set(building.hallway_ids.values())
        count = 0
        positions = random_positions(building, 400, seed=6)
        for point in positions:
            host = building.space.get_host_partition(point)
            if host.partition_id in hallways:
                count += 1
        fraction = count / len(positions)
        config = building.config
        floor_area = (
            config.hallway_length * config.hallway_width
            + config.rooms_per_floor * config.room_width * config.room_depth
        )
        expected = (config.hallway_length * config.hallway_width) / floor_area
        assert abs(fraction - expected) < 0.08, (fraction, expected)
