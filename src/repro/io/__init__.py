"""Persistence: JSON floor plans and object sets, NPZ distance matrices.

Floor plans are static, so deployments serialise the model once and the
precomputed distance matrix alongside it; loading both restores a working
:class:`~repro.index.framework.IndexFramework` without re-running the
all-pairs computation.
"""

from repro.io.asciiplan import AsciiPlan, parse_ascii_plan
from repro.io.json_io import (
    load_objects,
    load_space,
    objects_from_dict,
    objects_to_dict,
    save_objects,
    save_space,
    space_from_dict,
    space_to_dict,
)
from repro.io.matrix_io import load_distance_index, save_distance_index

__all__ = [
    "AsciiPlan",
    "parse_ascii_plan",
    "space_to_dict",
    "space_from_dict",
    "save_space",
    "load_space",
    "objects_to_dict",
    "objects_from_dict",
    "save_objects",
    "load_objects",
    "save_distance_index",
    "load_distance_index",
]
