"""WAL-driven incremental repair of a stale labels-backed framework.

After topology mutations the framework's indexes are stale (its
``built_epoch`` trails ``space.topology_epoch``).  For the dense backend
the only remedy is a full O(N · Dijkstra) rebuild; the labeling admits a
cheaper path for the mutations the WAL actually records:

* ``add_partition`` / ``add_door`` only ever *add* door-graph edges (or
  lower a parallel-edge weight).  Any shortest path improved by such a
  change passes through an endpoint of an added edge, so running one
  forward + one backward canonical Dijkstra from each such endpoint — a
  **patch hub** — and taking ``min(label answer, through-patch sum)``
  yields exact current-graph distances.  New doors are themselves patch
  hubs, which also covers doors the labeling has never seen.

  Precision contract: the overlay is *mathematically* exact, but only
  the forward patch rows d(hub, ·) are bitwise canonical.  A
  through-patch answer sums two half-path values, and the backward rows
  d(·, hub) come from a Dijkstra on the transposed graph — both fold
  additions in a different order than the forward Dijkstra the dense
  matrix stores, so a repaired answer can differ from a full rebuild by
  one ulp.  Rebuilding (which reruns the canonical-correction pass)
  restores strict bit-identity with the dense backend; serving tiers
  that advertise bit-identity therefore go through the snapshot/rebuild
  rungs, never through a live overlay.
* ``remove_door`` can *increase* distances, which no overlay over the old
  labels can express — that is the full-rebuild fallback.

The decision is driven by diffing the door graph against the edge set
captured at label-build time (so repairs compose: a second repair re-diffs
against the original base and recomputes all patch rows on the current
graph), with the affected hierarchy cone reported for observability and a
``max_patches`` threshold forcing the fallback when the overlay would
grow past its worth.  The repaired framework's ``built_epoch`` equals the
space's current topology epoch — epoch-coherent, exactly like a rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.labels.builder import door_graph_csr
from repro.labels.hierarchy import affected_cone
from repro.labels.index import LabeledDistanceIndex, LabelPatches

#: Past this many patch hubs the overlay stops paying for itself (each hub
#: holds two dense rows) and repair falls back to a full rebuild.
MAX_PATCHES = 16


@dataclass(frozen=True)
class RepairOutcome:
    """What the repair decided and why."""

    repaired: bool
    reason: str
    patch_hubs: Tuple[int, ...] = ()
    cone_size: int = 0


def _wants_rebuild(records: Optional[Iterable]) -> bool:
    """True when the WAL stream contains an op no overlay can express."""
    if records is None:
        return False
    return any(getattr(r, "op", None) == "remove_door" for r in records)


def repair_labels(
    index: LabeledDistanceIndex,
    graph,
    records: Optional[Iterable] = None,
    max_patches: int = MAX_PATCHES,
) -> Tuple[Optional[LabeledDistanceIndex], RepairOutcome]:
    """Incrementally repair ``index`` against ``graph``'s current topology.

    Returns ``(repaired_index, outcome)``; the index is ``None`` when the
    caller must fall back to a full rebuild (outcome says why).
    """
    from repro.distance.matrix import _door_graph_edges

    if _wants_rebuild(records):
        return None, RepairOutcome(False, "wal contains remove_door")

    current_ids = graph.space.topology.door_ids
    base_ids = set(index.hierarchy.door_ids)
    if not base_ids <= set(current_ids):
        return None, RepairOutcome(False, "doors were removed")

    current_edges = _door_graph_edges(graph)
    base_map: Dict[Tuple[int, int], float] = {
        (a, b): w for a, b, w in index.base_edges
    }
    current_map: Dict[Tuple[int, int], float] = {
        (a, b): w for a, b, w in current_edges
    }
    for key, base_w in base_map.items():
        current_w = current_map.get(key)
        if current_w is None or current_w > base_w:
            return None, RepairOutcome(
                False, "door-graph edges were removed or lengthened"
            )

    # An improved path crosses *both* endpoints of any improved edge, so
    # one patch hub per changed edge suffices; greedily cover the changed
    # edges with as few hubs as possible (new doors first — every edge a
    # new door introduces is incident to it).
    new_doors = set(current_ids) - base_ids
    changed_edges = [
        key
        for key, current_w in current_map.items()
        if (base_w := base_map.get(key)) is None or current_w < base_w
    ]
    patch_doors = set(new_doors)
    uncovered = [
        key for key in changed_edges if not (set(key) & patch_doors)
    ]
    while uncovered:
        counts: Dict[int, int] = {}
        for a, b in uncovered:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        hub = min(counts, key=lambda d: (-counts[d], d))
        patch_doors.add(hub)
        uncovered = [key for key in uncovered if hub not in key]

    if not patch_doors and tuple(current_ids) == index.hierarchy.door_ids:
        # Topology epoch moved without touching the door graph (e.g. an
        # added partition reusing existing connectivity): nothing to patch.
        return index.with_patches(index.patches), RepairOutcome(
            True, "door graph unchanged"
        )
    if len(patch_doors) > max_patches:
        return None, RepairOutcome(
            False,
            f"{len(patch_doors)} patch hubs exceed max_patches={max_patches}",
        )

    index_of = {door_id: i for i, door_id in enumerate(current_ids)}
    patch_ids = tuple(sorted(patch_doors))
    patch_idx = [index_of[d] for d in patch_ids]
    adjacency = door_graph_csr(current_ids, current_edges)
    fwd = np.atleast_2d(dijkstra(adjacency, directed=True, indices=patch_idx))
    bwd = np.atleast_2d(
        dijkstra(adjacency.T.tocsr(), directed=True, indices=patch_idx)
    )
    patches = LabelPatches(
        door_ids=tuple(current_ids), patch_ids=patch_ids, fwd=fwd, bwd=bwd
    )

    base_index_of = {d: i for i, d in enumerate(index.hierarchy.door_ids)}
    seed = [base_index_of[d] for d in patch_ids if d in base_index_of]
    cone = affected_cone(index.hierarchy, seed)
    return index.with_patches(patches), RepairOutcome(
        True,
        f"patched through {len(patch_ids)} hub(s)",
        patch_hubs=patch_ids,
        cone_size=int(len(cone)),
    )


def repair_framework(
    framework,
    records: Optional[Iterable] = None,
    max_patches: int = MAX_PATCHES,
):
    """Repair (or rebuild) a stale labels-backed :class:`IndexFramework`.

    Returns ``(fresh_framework, outcome)``.  The cheap structures (DPT,
    R-tree, object buckets) are always rebuilt — they are linear in the
    space — while the labeling is patched in place when the mutation diff
    allows it.  Falls back to ``framework.rebuild()`` (which preserves the
    backend choice) otherwise.
    """
    from repro.index.dpt import DoorPartitionTable
    from repro.index.framework import IndexFramework
    from repro.index.objects import ObjectStore
    from repro.index.rtree import PartitionRTree

    index = framework.distance_index
    if getattr(index, "kind", None) != "labels":
        return framework.rebuild(), RepairOutcome(
            False, f"backend {getattr(index, 'kind', '?')!r} has no repair path"
        )

    space = framework.space
    graph = space.distance_graph
    graph.precompute()
    repaired, outcome = repair_labels(
        index, graph, records=records, max_patches=max_patches
    )
    if repaired is None:
        return framework.rebuild(), outcome

    dpt = DoorPartitionTable.build(graph)
    rtree = PartitionRTree(space).install()
    store = ObjectStore(space, framework.objects.cell_size)
    store.add_all(list(framework.objects))
    fresh = IndexFramework(space, repaired, dpt, rtree, store)
    fresh.build_config = dict(framework.build_config)
    return fresh, outcome
