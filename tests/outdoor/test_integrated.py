"""Tests for the integrated indoor-outdoor distance model (§VII)."""

import math

import pytest

from repro.exceptions import ModelError, UnknownEntityError
from repro.distance import pt2pt_distance_refined
from repro.geometry import Point, Segment, rectangle
from repro.model import IndoorSpaceBuilder, PartitionKind
from repro.outdoor import IntegratedSpace, OutdoorLocation, RoadNetwork

ROOM_WEST, ROOM_EAST = 1, 2
APRON_WEST, APRON_EAST = 90, 91
DOOR_WEST, DOOR_EAST = 1, 2
NODE_WEST, NODE_EAST = 11, 12


@pytest.fixture
def campus():
    """Two adjacent rooms with *no* indoor connection; each has an exterior
    door onto its own apron, anchored to a road junction.  The only route
    between the rooms interweaves indoor and outdoor space."""
    builder = IndoorSpaceBuilder()
    builder.add_partition(ROOM_WEST, rectangle(0, 0, 10, 10), name="west wing")
    builder.add_partition(ROOM_EAST, rectangle(10, 0, 20, 10), name="east wing")
    builder.add_partition(
        APRON_WEST, rectangle(-4, 0, 0, 10), PartitionKind.OUTDOOR
    )
    builder.add_partition(
        APRON_EAST, rectangle(20, 0, 24, 10), PartitionKind.OUTDOOR
    )
    builder.add_door(
        DOOR_WEST, Segment(Point(0, 4), Point(0, 6)), connects=(ROOM_WEST, APRON_WEST)
    )
    builder.add_door(
        DOOR_EAST, Segment(Point(20, 4), Point(20, 6)), connects=(ROOM_EAST, APRON_EAST)
    )
    space = builder.build()

    network = RoadNetwork()
    network.add_node(NODE_WEST, Point(-2, 12))
    network.add_node(NODE_EAST, Point(22, 12))
    network.add_edge(NODE_WEST, NODE_EAST)

    integrated = IntegratedSpace(space, network)
    integrated.anchor(DOOR_WEST, NODE_WEST)
    integrated.anchor(DOOR_EAST, NODE_EAST)
    return integrated


def expected_cross_campus():
    inner_west = Point(5, 5).distance_to(Point(0, 5))
    anchor_west = Point(0, 5).distance_to(Point(-2, 12))
    road = Point(-2, 12).distance_to(Point(22, 12))
    anchor_east = Point(22, 12).distance_to(Point(20, 5))
    inner_east = Point(20, 5).distance_to(Point(15, 5))
    return inner_west + anchor_west + road + anchor_east + inner_east


class TestInterweaving:
    def test_indoor_only_route_does_not_exist(self, campus):
        assert math.isinf(
            pt2pt_distance_refined(campus.space, Point(5, 5), Point(15, 5))
        )

    def test_integrated_route_exists_and_is_exact(self, campus):
        distance = campus.distance(Point(5, 5), Point(15, 5))
        assert distance == pytest.approx(expected_cross_campus())

    def test_symmetry_on_bidirectional_campus(self, campus):
        forward = campus.distance(Point(5, 5), Point(15, 5))
        backward = campus.distance(Point(15, 5), Point(5, 5))
        assert forward == pytest.approx(backward)

    def test_outdoor_to_indoor(self, campus):
        distance = campus.distance(OutdoorLocation(NODE_EAST), Point(15, 5))
        expected = Point(22, 12).distance_to(Point(20, 5)) + Point(20, 5).distance_to(
            Point(15, 5)
        )
        assert distance == pytest.approx(expected)

    def test_indoor_to_outdoor(self, campus):
        distance = campus.distance(Point(5, 5), OutdoorLocation(NODE_WEST))
        expected = 5.0 + Point(0, 5).distance_to(Point(-2, 12))
        assert distance == pytest.approx(expected)

    def test_outdoor_to_outdoor_is_road_distance(self, campus):
        distance = campus.distance(
            OutdoorLocation(NODE_WEST), OutdoorLocation(NODE_EAST)
        )
        assert distance == pytest.approx(campus.network.distance(NODE_WEST, NODE_EAST))

    def test_same_partition_stays_direct(self, campus):
        assert campus.distance(Point(2, 2), Point(8, 8)) == pytest.approx(
            Point(2, 2).distance_to(Point(8, 8))
        )

    def test_reachability_helper(self, campus):
        assert campus.is_reachable(Point(5, 5), Point(15, 5))


class TestRouteReconstruction:
    def test_cross_campus_hops(self, campus):
        distance, hops = campus.route(Point(5, 5), Point(15, 5))
        assert distance == pytest.approx(expected_cross_campus())
        assert hops == [
            ("door", DOOR_WEST),
            ("road", NODE_WEST),
            ("road", NODE_EAST),
            ("door", DOOR_EAST),
        ]

    def test_direct_walk_has_no_hops(self, campus):
        distance, hops = campus.route(Point(2, 2), Point(8, 8))
        assert distance == pytest.approx(Point(2, 2).distance_to(Point(8, 8)))
        assert hops == []

    def test_outdoor_to_indoor_route(self, campus):
        _, hops = campus.route(OutdoorLocation(NODE_EAST), Point(15, 5))
        assert hops[0] == ("road", NODE_EAST)
        assert hops[-1] == ("door", DOOR_EAST)

    def test_unreachable_route(self, campus):
        import math as _math

        # There is no road from the west node to nowhere: block by removing
        # anchors via a fresh integrated space with none.
        fresh = IntegratedSpace(campus.space, campus.network)
        distance, hops = fresh.route(Point(5, 5), Point(15, 5))
        assert _math.isinf(distance)
        assert hops == []

    def test_route_distance_matches_distance(self, campus):
        pairs = [
            (Point(5, 5), Point(15, 5)),
            (Point(15, 5), Point(5, 5)),
            (OutdoorLocation(NODE_WEST), Point(15, 5)),
        ]
        for origin, destination in pairs:
            assert campus.route(origin, destination)[0] == pytest.approx(
                campus.distance(origin, destination)
            )


class TestIntegratedNeverWorseThanIndoor:
    def test_roads_can_only_help(self):
        """The union graph contains every indoor edge, so integrated
        distances never exceed pure indoor distances."""
        import random

        from repro.distance import pt2pt_distance_refined
        from repro.model.figure1 import D1, build_figure1

        space = build_figure1()
        network = RoadNetwork()
        network.add_node(1, Point(-2, 12))
        integrated = IntegratedSpace(space, network)
        integrated.anchor(D1, 1)
        rng = random.Random(3)
        indoor_ids = [p for p in space.partition_ids if p != 0]
        for _ in range(10):
            points = []
            while len(points) < 2:
                pid = rng.choice(indoor_ids)
                partition = space.partition(pid)
                box = partition.polygon.bounding_box
                candidate = Point(
                    rng.uniform(box.min_x, box.max_x),
                    rng.uniform(box.min_y, box.max_y),
                )
                if partition.contains(candidate):
                    points.append(candidate)
            indoor = pt2pt_distance_refined(space, points[0], points[1])
            combined = integrated.distance(points[0], points[1])
            assert combined <= indoor + 1e-9


class TestOneWayExteriorDoors:
    def test_exit_only_door_blocks_re_entry(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(90, rectangle(-4, 0, 0, 10), PartitionKind.OUTDOOR)
        builder.add_door(
            1,
            Segment(Point(0, 4), Point(0, 6)),
            connects=(1, 90),
            one_way=True,  # exit only
        )
        network = RoadNetwork()
        network.add_node(11, Point(-2, 12))
        integrated = IntegratedSpace(builder.build(), network)
        integrated.anchor(1, 11)
        # Leaving works; getting back in does not.
        assert not math.isinf(
            integrated.distance(Point(5, 5), OutdoorLocation(11))
        )
        assert math.isinf(integrated.distance(OutdoorLocation(11), Point(5, 5)))


class TestAnchors:
    def test_anchor_unknown_door_raises(self, campus):
        with pytest.raises(UnknownEntityError):
            campus.anchor(999, NODE_WEST)

    def test_anchor_unknown_node_raises(self, campus):
        with pytest.raises(UnknownEntityError):
            campus.anchor(DOOR_WEST, 999)

    def test_negative_anchor_cost_raises(self, campus):
        with pytest.raises(ModelError):
            campus.anchor(DOOR_WEST, NODE_WEST, cost=-1.0)

    def test_explicit_anchor_cost(self, campus):
        campus.anchor(DOOR_EAST, NODE_WEST, cost=1.0)
        # A 1 m teleport-like link from the east door to the west node makes
        # the cross-campus route much cheaper.
        distance = campus.distance(Point(5, 5), Point(15, 5))
        shortcut = (
            5.0
            + Point(0, 5).distance_to(Point(-2, 12))
            + 1.0
            + Point(20, 5).distance_to(Point(15, 5))
        )
        assert distance == pytest.approx(shortcut)

    def test_anchored_doors_listing(self, campus):
        assert campus.anchored_doors == (DOOR_WEST, DOOR_EAST)

    def test_no_anchors_means_no_integration(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(90, rectangle(-4, 0, 0, 10), PartitionKind.OUTDOOR)
        builder.add_door(
            1, Segment(Point(0, 4), Point(0, 6)), connects=(1, 90)
        )
        network = RoadNetwork()
        network.add_node(11, Point(-2, 12))
        integrated = IntegratedSpace(builder.build(), network)
        assert math.isinf(integrated.distance(Point(5, 5), OutdoorLocation(11)))
