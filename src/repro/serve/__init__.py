"""repro.serve — concurrent query serving over the §IV-V machinery.

The paper (and :class:`~repro.queries.engine.QueryEngine`) answers one
query at a time; a deployed indoor service answers *workloads*.  This
package is the serving layer:

* :mod:`~repro.serve.requests` — typed :class:`QueryRequest` /
  :class:`QueryResponse` envelopes for range, kNN, and pt2pt queries;
* :mod:`~repro.serve.cache` — :class:`EpochLRUCache`, a bounded LRU
  distance cache keyed by topology epoch (PR 1's staleness machinery
  invalidates it for free);
* :mod:`~repro.serve.batch` — shared-work batched execution: same-host
  range/kNN groups share M_idx row walks, same-source pt2pt groups share
  the Algorithm 2/3 door expansions;
* :mod:`~repro.serve.service` — :class:`QueryService`, the thread-pool
  server with a bounded admission queue that sheds load by descending the
  :class:`~repro.runtime.ladder.QualityLevel` degradation ladder;
* :mod:`~repro.serve.lifecycle` — :class:`SupervisedQueryService`:
  supervised startup from a :class:`~repro.persist.SnapshotStore` (warm
  start, WAL replay, quarantine), a readiness probe that stays NOT_READY
  until recovery completes, and graceful drain-then-snapshot shutdown;
* :mod:`~repro.serve.metrics` — :class:`MetricsRegistry` (counters and
  latency histograms with p50/p95/p99 snapshots).

See ``docs/serving.md`` for the architecture and semantics, and
``python -m repro serve-bench`` for the closed-loop throughput benchmark.
"""

from repro.serve.batch import (
    BatchGroup,
    SharedDoorScans,
    batched_knn_query,
    batched_pt2pt_distances,
    batched_range_query,
    execute_group,
    plan_batches,
)
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.cache import EpochLRUCache
from repro.serve.lifecycle import SupervisedQueryService
from repro.serve.metrics import Counter, LatencyHistogram, MetricsRegistry
from repro.serve.requests import QueryKind, QueryRequest, QueryResponse
from repro.serve.service import QueryService, ServiceState, ShedPolicy

__all__ = [
    "BatchGroup",
    "BreakerState",
    "CircuitBreaker",
    "Counter",
    "EpochLRUCache",
    "LatencyHistogram",
    "MetricsRegistry",
    "QueryKind",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ServiceState",
    "SharedDoorScans",
    "ShedPolicy",
    "SupervisedQueryService",
    "batched_knn_query",
    "batched_pt2pt_distances",
    "batched_range_query",
    "execute_group",
    "plan_batches",
]
