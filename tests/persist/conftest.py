"""Shared fixtures for the persistence / recovery tests."""

import random

import pytest

from repro.index import IndexFramework, IndoorObject
from repro.model.figure1 import build_figure1
from repro.persist import SnapshotStore
from repro.synthetic import BuildingConfig, generate_building
from tests.queries.conftest import random_point_in


@pytest.fixture
def figure1_framework():
    """A fresh Figure-1 space + 40 deterministic objects, fully indexed.

    Function-scoped: the persistence tests mutate the topology and
    corrupt files derived from it.
    """
    space = build_figure1()
    rng = random.Random(7)
    indoor_ids = [p for p in space.partition_ids if p != 0]
    objects = [
        IndoorObject(i, random_point_in(space, rng, indoor_ids))
        for i in range(40)
    ]
    return IndexFramework.build(space, objects)


@pytest.fixture
def building_framework():
    """A 3-floor synthetic building + 30 objects, fully indexed."""
    building = generate_building(BuildingConfig(floors=3, rooms_per_floor=6))
    space = building.space
    rng = random.Random(31)
    indoor_ids = list(space.partition_ids)
    objects = [
        IndoorObject(i, random_point_in(space, rng, indoor_ids))
        for i in range(30)
    ]
    return IndexFramework.build(space, objects)


@pytest.fixture
def store(tmp_path):
    """An empty generational snapshot store in a temp directory."""
    return SnapshotStore(tmp_path / "snapshots")
