"""Topological analysis of indoor spaces.

The paper's §IV-A closes with: "It is possible that a particular door or
staircase is topologically more important than others.  In such cases, it
is of interest to build such knowledge into our proposal ... identifying
the different degrees of topological significance of doors and staircases
requires extra effort and domain knowledge ... we leave topological
significance for future research."

This package supplies that analysis:

* :func:`door_betweenness` — how often each door lies on door-to-door
  shortest paths (a betweenness centrality over the door graph);
* :func:`critical_doors` — doors whose closure disconnects some currently
  connected partition pair (the single points of failure an evacuation
  planner cares about);
* :func:`strongly_connected_partitions` — the SCCs of the accessibility
  graph (Tarjan), the substrate of the criticality test.
"""

from repro.analysis.importance import (
    critical_doors,
    door_betweenness,
    strongly_connected_partitions,
)

__all__ = [
    "door_betweenness",
    "critical_doors",
    "strongly_connected_partitions",
]
