"""Shared fixtures for the resilient-runtime tests."""

import random

import pytest

from repro.index import IndexFramework, IndoorObject
from repro.model.figure1 import build_figure1
from tests.queries.conftest import random_point_in


class FakeClock:
    """A manually advanced monotonic clock for deterministic deadlines."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock():
    return FakeClock()


@pytest.fixture
def figure1_framework():
    """A fresh Figure-1 space + 50 deterministic objects, fully indexed.

    Function-scoped (unlike the module-scoped query fixture) because the
    runtime tests mutate the space and corrupt the indexes.
    """
    space = build_figure1()
    rng = random.Random(99)
    indoor_ids = [p for p in space.partition_ids if p != 0]
    objects = [
        IndoorObject(i, random_point_in(space, rng, indoor_ids))
        for i in range(50)
    ]
    return IndexFramework.build(space, objects)
