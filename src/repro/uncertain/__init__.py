"""Queries over objects with uncertain indoor positions.

Indoor positioning (Wi-Fi, RFID, Bluetooth — the paper's §I technology list)
is noisy: a tracked object's position is better modelled as a small discrete
distribution over candidate positions than as a point.  The paper's own
lineage treats this — its minimum indoor walking distance metric originates
in "Probabilistic threshold k nearest neighbor queries over moving objects
in symbolic indoor space" (Yang, Lu & Jensen, EDBT 2010; the paper's
ref [18]).  This package provides the corresponding *probabilistic
threshold* query forms over this library's exact distance machinery:

* :func:`probabilistic_range` — objects whose probability of lying within
  walking distance ``r`` of the query point exceeds a threshold;
* :func:`probabilistic_knn` — objects whose probability of belonging to the
  kNN result exceeds a threshold (exact possible-worlds enumeration for
  small sample sets, seeded Monte Carlo beyond).
"""

from repro.uncertain.objects import UncertainObject
from repro.uncertain.queries import probabilistic_knn, probabilistic_range

__all__ = ["UncertainObject", "probabilistic_range", "probabilistic_knn"]
