"""LockWitness runtime: wrapping, edge recording, trace round-trip, and
the static/dynamic cross-check."""

import importlib.util
import textwrap
import threading

import pytest

from repro.analysis.lint import LintConfig
from repro.analysis.lint.callgraph import (
    LockEdge,
    ProjectGraph,
    build_graph,
)
from repro.analysis.lint.engine import build_project
from repro.analysis.witness import (
    LockWitness,
    WitnessTrace,
    _WitnessedLock,
    crosscheck,
    static_sites,
    witness_session,
)

PAIR_SOURCE = """\
    import threading


    class Pair:
        def __init__(self) -> None:
            self._a = threading.Lock()
            self._b = threading.Lock()

        def ab(self) -> None:
            with self._a:
                with self._b:
                    pass
"""


def _materialise(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _import_file(path, name):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def pair_project(tmp_path):
    """A tiny project with a two-lock class, parsed AND importable."""
    path = _materialise(tmp_path, "src/repro/serve/pair.py", PAIR_SOURCE)
    project = build_project(
        LintConfig(root=tmp_path, paths=[tmp_path / "src"], jobs=1)
    )
    graph = build_graph(project)
    module = _import_file(path, "witness_pair_fixture")
    return tmp_path, graph, module


class TestRecorder:
    def test_nested_acquire_records_one_edge(self):
        witness = LockWitness()
        a, b = ("m.py", 1), ("m.py", 2)
        witness.record_acquire(a)
        witness.record_acquire(b)
        witness.record_release(b)
        witness.record_release(a)
        trace = witness.trace()
        assert trace.edges == {(a, b): 1}
        assert trace.sites == {a, b}

    def test_reentrant_same_site_is_not_an_edge(self):
        witness = LockWitness()
        a = ("m.py", 1)
        witness.record_acquire(a)
        witness.record_acquire(a)  # RLock-style reacquire
        trace = witness.trace()
        assert trace.edges == {}

    def test_out_of_order_release_keeps_stack_consistent(self):
        witness = LockWitness()
        a, b = ("m.py", 1), ("m.py", 2)
        witness.record_acquire(a)
        witness.record_acquire(b)
        witness.record_release(a)  # hand-over-hand: outer drops first
        witness.record_acquire(a)
        trace = witness.trace()
        # b was still held when a was re-acquired: b -> a observed.
        assert trace.edges == {(a, b): 1, (b, a): 1}

    def test_wrapper_delegates_and_counts(self):
        witness = LockWitness()
        site = ("m.py", 9)
        lock = _WitnessedLock(threading.Lock(), site, witness)
        with lock:
            assert lock.locked()
        assert not lock.locked()
        assert witness.trace().sites == {site}


class TestSession:
    def test_known_site_allocations_are_wrapped(self, pair_project):
        root, graph, module = pair_project
        with witness_session(root, static_sites(graph)) as witness:
            pair = module.Pair()
            pair.ab()
        trace = witness.trace()
        site_a = ("src/repro/serve/pair.py", 6)
        site_b = ("src/repro/serve/pair.py", 7)
        assert trace.edges == {(site_a, site_b): 1}

    def test_unknown_sites_stay_unwrapped(self, pair_project):
        root, graph, module = pair_project
        with witness_session(root, set()) as witness:
            pair = module.Pair()
            pair.ab()
        assert witness.trace().sites == set()
        assert isinstance(pair._a, type(threading.Lock()))

    def test_factories_restored_after_session(self, pair_project):
        root, graph, _ = pair_project
        original_lock = threading.Lock
        original_rlock = threading.RLock
        with witness_session(root, static_sites(graph)):
            assert threading.Lock is not original_lock
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock

    def test_replay_safety_no_clock_or_rng(self):
        import ast
        import pathlib

        import repro.analysis.witness as witness_module

        tree = ast.parse(pathlib.Path(witness_module.__file__).read_text())
        names = {
            node.attr
            for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
        }
        assert "time" not in names
        assert "random" not in names


class TestTrace:
    def test_round_trip(self, tmp_path):
        trace = WitnessTrace(
            edges={(("a.py", 1), ("b.py", 2)): 3},
            sites={("a.py", 1), ("b.py", 2)},
        )
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = WitnessTrace.load(path)
        assert loaded.edges == trace.edges
        assert loaded.sites == trace.sites

    def test_merge_sums_counts(self):
        one = WitnessTrace(edges={(("a", 1), ("b", 2)): 1}, sites={("a", 1)})
        two = WitnessTrace(edges={(("a", 1), ("b", 2)): 2}, sites={("b", 2)})
        one.merge(two)
        assert one.edges[(("a", 1), ("b", 2))] == 3
        assert one.sites == {("a", 1), ("b", 2)}

    def test_version_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WitnessTrace.from_dict({"version": 99})


def _graph_with(edges, sites, kinds=None):
    graph = ProjectGraph()
    for site, lock in sites.items():
        graph.alloc_sites[site] = lock
        graph.lock_kinds[lock] = (kinds or {}).get(lock, "Lock")
    for src, dst in edges:
        graph.edges[(src, dst)] = LockEdge(
            src=src, dst=dst, relpath="m.py", line=1, path=("m:f",)
        )
    return graph


class TestCrossCheck:
    A = ("m:Alpha", "_lock")
    B = ("m:Beta", "_lock")
    SITE_A = ("m.py", 10)
    SITE_B = ("m.py", 20)

    def test_observed_edge_in_graph_is_confirmed(self):
        graph = _graph_with(
            [(self.A, self.B)], {self.SITE_A: self.A, self.SITE_B: self.B}
        )
        trace = WitnessTrace(
            edges={(self.SITE_A, self.SITE_B): 5},
            sites={self.SITE_A, self.SITE_B},
        )
        result = crosscheck(trace, graph)
        assert result.ok
        assert result.confirmed == {(self.A, self.B)}
        assert result.warnings == []

    def test_observed_edge_missing_statically_is_an_error(self):
        graph = _graph_with(
            [], {self.SITE_A: self.A, self.SITE_B: self.B}
        )
        trace = WitnessTrace(
            edges={(self.SITE_A, self.SITE_B): 1},
            sites={self.SITE_A, self.SITE_B},
        )
        result = crosscheck(trace, graph)
        assert not result.ok
        assert "call-graph hole" in result.errors[0]

    def test_unknown_site_is_an_error(self):
        graph = _graph_with([], {})
        trace = WitnessTrace(edges={}, sites={("mystery.py", 3)})
        result = crosscheck(trace, graph)
        assert not result.ok
        assert "no static identity" in result.errors[0]

    def test_unobserved_static_cycle_stays_a_warning(self):
        graph = _graph_with(
            [(self.A, self.B), (self.B, self.A)],
            {self.SITE_A: self.A, self.SITE_B: self.B},
        )
        result = crosscheck(WitnessTrace(), graph)
        assert result.ok  # warnings do not fail the check
        assert len(result.warnings) == 1
        assert "not confirmed at runtime" in result.warnings[0]

    def test_same_identity_instances_skipped(self):
        graph = _graph_with([], {self.SITE_A: self.A})
        # Two instances of one class: same identity on both sides.
        trace = WitnessTrace(
            edges={(self.SITE_A, self.SITE_A): 4}, sites={self.SITE_A}
        )
        assert crosscheck(trace, graph).ok


class TestEndToEnd:
    def test_session_trace_crosschecks_clean(self, pair_project):
        root, graph, module = pair_project
        with witness_session(root, static_sites(graph)) as witness:
            pair = module.Pair()
            pair.ab()
        result = crosscheck(witness.trace(), graph)
        assert result.ok
        assert result.confirmed  # the a->b edge was derived statically

    def test_condition_attributed_to_user_line(self, tmp_path):
        source = """\
            import threading


            class Box:
                def __init__(self) -> None:
                    self._cv = threading.Condition()
                    self._lock = threading.Lock()

                def both(self) -> None:
                    with self._cv:
                        with self._lock:
                            pass
        """
        path = _materialise(tmp_path, "src/repro/serve/box.py", source)
        project = build_project(
            LintConfig(root=tmp_path, paths=[tmp_path / "src"], jobs=1)
        )
        graph = build_graph(project)
        module = _import_file(path, "witness_box_fixture")
        with witness_session(root=tmp_path, known_sites=static_sites(graph)) as witness:
            box = module.Box()
            box.both()
        trace = witness.trace()
        cv_site = ("src/repro/serve/box.py", 6)
        lock_site = ("src/repro/serve/box.py", 7)
        assert (cv_site, lock_site) in trace.edges
        assert crosscheck(trace, graph).ok
