"""Tests for continuous range / kNN monitoring.

The master property: after ANY sequence of insertions, moves, and removals,
each monitor's result must equal re-running the one-shot query from scratch.
"""

import random

import pytest

from repro import IndoorObject, Point, QueryEngine
from repro.exceptions import QueryError
from repro.model.figure1 import P, build_figure1
from repro.queries import knn_query, range_query
from repro.tracking import KnnMonitor, RangeMonitor, TrackingSession
from repro.tracking.monitors import EventKind
from tests.strategies import build_grid_plan


@pytest.fixture
def session():
    engine = QueryEngine.for_space(build_figure1())
    engine.add_objects(
        [
            IndoorObject(1, Point(6.5, 9.0)),   # room 13, near P
            IndoorObject(2, Point(1.0, 5.0)),   # hallway
            IndoorObject(3, Point(18.0, 8.0)),  # room 20, far
        ]
    )
    return TrackingSession(engine)


class TestRangeMonitor:
    def test_initial_result(self, session):
        watch = session.watch_range(P, 8.0)
        assert watch.result == [1, 2]

    def test_enter_event_on_add(self, session):
        watch = session.watch_range(P, 8.0)
        session.add_object(IndoorObject(4, Point(7.0, 7.0)))
        assert watch.result == [1, 2, 4]
        assert watch.events[-1].kind is EventKind.ENTER
        assert watch.events[-1].object_id == 4

    def test_no_event_for_far_add(self, session):
        watch = session.watch_range(P, 8.0)
        session.add_object(IndoorObject(4, Point(19.0, 9.0)))
        assert watch.result == [1, 2]
        assert watch.events == []

    def test_exit_event_on_remove(self, session):
        watch = session.watch_range(P, 8.0)
        session.remove_object(1)
        assert watch.result == [2]
        assert watch.events[-1].kind is EventKind.EXIT

    def test_move_in_and_out(self, session):
        watch = session.watch_range(P, 8.0)
        session.move_object(3, Point(6.5, 8.5))  # far object moves next to P
        assert 3 in watch.result
        assert watch.events[-1].kind is EventKind.ENTER
        session.move_object(3, Point(18.0, 8.0))  # and away again
        assert 3 not in watch.result
        assert watch.events[-1].kind is EventKind.EXIT

    def test_move_within_range_is_silent(self, session):
        watch = session.watch_range(P, 8.0)
        session.move_object(1, Point(6.8, 8.8))
        assert watch.result == [1, 2]
        assert watch.events == []

    def test_negative_radius_raises(self, session):
        with pytest.raises(QueryError):
            session.watch_range(P, -1.0)


class TestKnnMonitor:
    def test_initial_result(self, session):
        watch = session.watch_knn(P, 2)
        assert [oid for oid, _ in watch.result] == [1, 2]

    def test_add_closer_object_displaces(self, session):
        watch = session.watch_knn(P, 2)
        session.add_object(IndoorObject(4, Point(6.3, 8.1)))
        assert [oid for oid, _ in watch.result] == [4, 1]
        assert watch.events[-1].object_id == 4

    def test_remove_member_pulls_in_next(self, session):
        watch = session.watch_knn(P, 2)
        session.remove_object(1)
        assert [oid for oid, _ in watch.result] == [2, 3]

    def test_remove_non_member_is_silent(self, session):
        watch = session.watch_knn(P, 2)
        session.remove_object(3)
        assert [oid for oid, _ in watch.result] == [1, 2]
        assert watch.events == []

    def test_member_moving_away_lets_cutoff_object_in(self, session):
        watch = session.watch_knn(P, 2)
        session.move_object(1, Point(19.0, 9.0))  # member flees to room 20
        assert [oid for oid, _ in watch.result] == [2, 3]

    def test_k_validation(self, session):
        with pytest.raises(QueryError):
            session.watch_knn(P, 0)


class TestSession:
    def test_unwatch_freezes_monitor(self, session):
        watch = session.watch_range(P, 8.0)
        session.unwatch(watch)
        assert session.monitor_count == 0
        session.add_object(IndoorObject(4, Point(7.0, 7.0)))
        assert watch.result == [1, 2]  # frozen

    def test_multiple_monitors_updated_together(self, session):
        range_watch = session.watch_range(P, 8.0)
        knn_watch = session.watch_knn(P, 1)
        session.add_object(IndoorObject(4, Point(6.3, 8.1)))
        assert 4 in range_watch.result
        assert knn_watch.result[0][0] == 4


class TestAgainstScratchRecomputation:
    def test_random_churn_stays_exact(self):
        """The master property on a random plan with a long mutation mix."""
        plan = build_grid_plan(3, 3, seed=8)
        engine = QueryEngine.for_space(plan.space)
        session = TrackingSession(engine)
        rng = random.Random(5)
        next_id = 0
        for _ in range(8):
            session.add_object(
                IndoorObject(next_id, plan.random_interior_point(rng))
            )
            next_id += 1

        query_point = plan.random_interior_point(rng)
        range_watch = session.watch_range(query_point, 18.0)
        knn_watch = session.watch_knn(query_point, 4)

        for step in range(40):
            live = [o.object_id for o in engine.framework.objects]
            action = rng.choice(["add", "move", "move", "remove"])
            if action == "add" or not live:
                session.add_object(
                    IndoorObject(next_id, plan.random_interior_point(rng))
                )
                next_id += 1
            elif action == "move":
                session.move_object(
                    rng.choice(live), plan.random_interior_point(rng)
                )
            else:
                session.remove_object(rng.choice(live))

            framework = engine.framework
            assert range_watch.result == range_query(
                framework, query_point, 18.0
            ), f"range monitor diverged at step {step}"
            expected = knn_query(framework, query_point, 4)
            got = knn_watch.result
            assert [d for _, d in got] == pytest.approx(
                [d for _, d in expected]
            ), f"kNN monitor diverged at step {step}"
