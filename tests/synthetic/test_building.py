"""Tests for the synthetic building generator (§VI-A)."""

import pytest

from repro.distance import pt2pt_distance, pt2pt_distance_basic
from repro.exceptions import ModelError
from repro.geometry import Point
from repro.synthetic import BuildingConfig, generate_building


@pytest.fixture(scope="module")
def small_building():
    """3 floors x 6 rooms — tiny but structurally complete."""
    return generate_building(BuildingConfig(floors=3, rooms_per_floor=6))


class TestConfig:
    def test_paper_defaults(self):
        config = BuildingConfig()
        assert config.floors == 10
        assert config.rooms_per_floor == 30
        assert config.staircases_per_gap == 2

    def test_door_accounting(self):
        # 40 floors, paper parameters: 1200 room doors + 156 staircase doors.
        config = BuildingConfig(floors=40)
        assert config.doors_total == 40 * 30 + 2 * 2 * 39 == 1356

    def test_invalid_configs_raise(self):
        with pytest.raises(ModelError):
            BuildingConfig(floors=0)
        with pytest.raises(ModelError):
            BuildingConfig(rooms_per_floor=7)
        with pytest.raises(ModelError):
            BuildingConfig(staircases_per_gap=3)
        with pytest.raises(ModelError):
            BuildingConfig(stair_length=-1)


class TestStructure:
    def test_partition_and_door_counts(self, small_building):
        config = small_building.config
        space = small_building.space
        expected_partitions = (
            config.floors * (config.rooms_per_floor + 1)
            + config.staircases_per_gap * (config.floors - 1)
        )
        assert space.num_partitions == expected_partitions
        assert space.num_doors == config.doors_total

    def test_every_room_has_exactly_one_door(self, small_building):
        space = small_building.space
        for floor in range(small_building.floors):
            for room_id in small_building.rooms_on_floor(floor):
                assert len(space.topology.doors_of(room_id)) == 1

    def test_star_topology(self, small_building):
        """Every room door connects the room to its floor's hallway."""
        space = small_building.space
        for floor in range(small_building.floors):
            hallway = small_building.hallway_on_floor(floor)
            for room_id in small_building.rooms_on_floor(floor):
                (door_id,) = space.topology.doors_of(room_id)
                assert space.topology.partitions_of(door_id) == frozenset(
                    {room_id, hallway}
                )

    def test_building_is_strongly_connected(self, small_building):
        assert small_building.space.accessibility.is_strongly_connected()

    def test_floor_count(self, small_building):
        assert small_building.space.num_floors == 3

    def test_staircases_span_adjacent_floors(self, small_building):
        space = small_building.space
        for staircase_id in small_building.staircase_ids:
            staircase = space.partition(staircase_id)
            assert staircase.stair_length == small_building.config.stair_length
            assert staircase.floors == (staircase.floor, staircase.floor + 1)
            doors = space.topology.doors_of(staircase_id)
            assert len(doors) == 2
            door_floors = {space.door(d).floor for d in doors}
            assert door_floors == {staircase.floor, staircase.floor + 1}

    def test_generation_is_deterministic(self):
        a = generate_building(BuildingConfig(floors=2, rooms_per_floor=4))
        b = generate_building(BuildingConfig(floors=2, rooms_per_floor=4))
        assert a.space.partition_ids == b.space.partition_ids
        assert a.space.door_ids == b.space.door_ids
        for door_id in a.space.door_ids:
            assert a.space.door(door_id).midpoint == b.space.door(door_id).midpoint


class TestDistancesAcrossFloors:
    def test_cross_floor_distance_includes_stair_walk(self, small_building):
        """Going one floor up costs at least stair_length more than the
        planar legs."""
        space = small_building.space
        config = small_building.config
        ground = Point(2.5, 2.0, 0)  # inside room F0S0
        upstairs = Point(2.5, 2.0, 1)  # same planar spot, floor 1
        distance = pt2pt_distance(space, ground, upstairs)
        assert distance > config.stair_length
        assert distance < 1000

    def test_same_floor_distance_stays_on_floor(self, small_building):
        space = small_building.space
        a = Point(2.5, 2.0, 0)
        b = Point(12.5, 2.0, 0)
        distance = pt2pt_distance(space, a, b)
        # Through two doors and along the hallway; roughly the L1-ish walk.
        assert 10 <= distance <= 20

    def test_algorithms_agree_on_synthetic_building(self, small_building):
        from repro.distance import pt2pt_distance_memoized, pt2pt_distance_refined
        from repro.synthetic import random_position_pairs

        pairs = random_position_pairs(small_building, 12, seed=3)
        for source, target in pairs:
            basic = pt2pt_distance_basic(small_building.space, source, target)
            assert pt2pt_distance_refined(
                small_building.space, source, target
            ) == pytest.approx(basic)
            assert pt2pt_distance_memoized(
                small_building.space, source, target
            ) == pytest.approx(basic)

    def test_two_floors_up_uses_two_staircases(self, small_building):
        space = small_building.space
        config = small_building.config
        ground = Point(2.5, 2.0, 0)
        two_up = Point(2.5, 2.0, 2)
        distance = pt2pt_distance(space, ground, two_up)
        assert distance >= 2 * config.stair_length
