"""Tests for M_d2d + M_idx (§IV-A) — including the Figure 3/4 reproduction
on the paper's six-door sub-plan (experiments E-F3 and E-F4)."""


import numpy as np
import pytest

from repro.distance import d2d_distance
from repro.exceptions import UnknownEntityError
from repro.index import DistanceIndexMatrix
from repro.model.figure1 import (
    D1,
    D11,
    D13,
    D15,
    SUBPLAN_DOORS,
    build_figure1,
    build_figure1_subplan,
)


@pytest.fixture(scope="module")
def subplan():
    return build_figure1_subplan()


@pytest.fixture(scope="module")
def index(subplan):
    return DistanceIndexMatrix.build(subplan.distance_graph)


class TestFigure3Matrix:
    """E-F3: structural properties of the 6-door M_d2d of Figure 3."""

    def test_six_doors(self, index):
        assert index.door_ids == SUBPLAN_DOORS
        assert index.size == 6

    def test_diagonal_zero(self, index):
        assert np.all(np.diag(index.md2d) == 0.0)

    def test_not_symmetric_because_of_directed_doors(self, index):
        # Figure 3's remark: M_d2d[d11, d15] != M_d2d[d15, d11].
        assert index.distance(D11, D15) != pytest.approx(index.distance(D15, D11))

    def test_matches_algorithm1(self, subplan, index):
        for source in SUBPLAN_DOORS:
            for target in SUBPLAN_DOORS:
                assert index.distance(source, target) == pytest.approx(
                    d2d_distance(subplan.distance_graph, source, target)
                )

    def test_reference_build_matches_bulk(self, subplan, index):
        reference = DistanceIndexMatrix.build(
            subplan.distance_graph, reference=True
        )
        np.testing.assert_allclose(reference.md2d, index.md2d)
        np.testing.assert_array_equal(reference.midx, index.midx)

    def test_unknown_door_raises(self, index):
        with pytest.raises(UnknownEntityError):
            index.distance(999, D1)


class TestFigure4IndexMatrix:
    """E-F4: the Distance Index Matrix property of §IV-A: for j < k,
    M_d2d[d_i, M_idx[d_i, j]] <= M_d2d[d_i, M_idx[d_i, k]]."""

    def test_every_row_is_a_permutation_of_door_ids(self, index):
        for row in index.midx:
            assert sorted(row) == sorted(index.door_ids)

    def test_rows_sort_distances_non_descending(self, index):
        for door in index.door_ids:
            ordered = [d for _, d in index.doors_by_distance(door)]
            assert ordered == sorted(ordered)

    def test_first_entry_of_each_row_is_the_door_itself(self, index):
        for i, door in enumerate(index.door_ids):
            assert index.midx[i][0] == door

    def test_defining_inequality(self, index):
        midx = index.midx
        for i, door in enumerate(index.door_ids):
            row = midx[i]
            for j in range(len(row) - 1):
                assert index.distance(door, int(row[j])) <= index.distance(
                    door, int(row[j + 1])
                ) + 1e-12


class TestScans:
    def test_doors_by_distance_respects_cutoff(self, index):
        full = list(index.doors_by_distance(D1))
        assert len(full) == 6
        cutoff = full[2][1]
        limited = list(index.doors_by_distance(D1, max_distance=cutoff))
        assert all(dist <= cutoff for _, dist in limited)
        assert len(limited) >= 3

    def test_doors_by_distance_is_sorted(self, index):
        distances = [d for _, d in index.doors_by_distance(D13)]
        assert distances == sorted(distances)

    def test_unsorted_scan_covers_all_reachable(self, index):
        unsorted_doors = {door for door, _ in index.doors_unsorted(D1)}
        sorted_doors = {door for door, _ in index.doors_by_distance(D1)}
        assert unsorted_doors == sorted_doors

    def test_unsorted_scan_is_in_id_order(self, index):
        ids = [door for door, _ in index.doors_unsorted(D1)]
        assert ids == sorted(ids)

    def test_nearest_doors(self, index):
        nearest = index.nearest_doors(D1, 3)
        assert len(nearest) == 3
        assert nearest[0] == (D1, 0.0)
        assert [d for _, d in nearest] == sorted(d for _, d in nearest)

    def test_unreachable_doors_are_never_yielded(self):
        # A one-way trap: from door 2's far side, door 1 is unreachable, so
        # the sorted scan from door 2 must stop before yielding it.
        from repro.geometry import Point, Segment, rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_partition(3, rectangle(8, 0, 12, 4))
        builder.add_door(
            1, Segment(Point(4, 1), Point(4, 3)), connects=(1, 2), one_way=True
        )
        builder.add_door(2, Segment(Point(8, 1), Point(8, 3)), connects=(2, 3))
        space = builder.build()
        index = DistanceIndexMatrix.build(space.distance_graph)
        scanned = {door for door, _ in index.doors_by_distance(2)}
        assert 1 not in scanned
        assert scanned == {2}
        assert {door for door, _ in index.doors_by_distance(1)} == {1, 2}

    def test_memory_bytes_positive(self, index):
        assert index.memory_bytes() > 0


class TestFullPlanIndex:
    def test_figure1_index_is_consistent_with_algorithm1(self):
        space = build_figure1()
        index = DistanceIndexMatrix.build(space.distance_graph)
        for source in space.door_ids:
            ordered = [d for _, d in index.doors_by_distance(source)]
            assert ordered == sorted(ordered)
            assert len(ordered) == space.num_doors
