"""The lint engine: discover, parse, scan, check, partition.

Orchestration is deliberately simple and deterministic:

1. **Discover** ``*.py`` files under the configured paths (skipping
   common junk directories).
2. **Parse** them in parallel into :class:`ModuleContext` objects.
   Unparsable files are recorded, not fatal — a linter that dies on a
   syntax error hides every other finding.
3. **Scan**: each checker's project-wide pre-pass runs once, serially.
4. **Check**: per-module checks fan out across a thread pool (the work
   is AST traversal — cheap, but the repo has a few hundred modules and
   the pool keeps ``repro lint`` interactive).
5. **Partition** findings against the committed baseline into
   new / baselined / expired, after dropping suppressed ones.

Results are sorted by (path, line, col, rule) so output is stable
regardless of parallel scheduling.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import Checker, all_checkers

_SKIP_DIRS = {
    ".git",
    ".hg",
    "__pycache__",
    ".pytest_cache",
    ".ruff_cache",
    ".venv",
    "venv",
    "build",
    "dist",
    "node_modules",
}

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass
class LintConfig:
    """One lint run's parameters."""

    root: Path
    paths: Sequence[Path] = ()
    select: Optional[Set[str]] = None
    baseline_path: Optional[Path] = None
    jobs: int = 0

    def resolved_paths(self) -> List[Path]:
        """The lint targets; defaults to ``<root>/src``."""
        if self.paths:
            return [Path(p) for p in self.paths]
        return [self.root / "src"]

    def resolved_baseline(self) -> Path:
        """The baseline path; defaults to the committed repo baseline."""
        if self.baseline_path is not None:
            return self.baseline_path
        return self.root / DEFAULT_BASELINE_NAME

    def resolved_jobs(self) -> int:
        """Worker-thread count (0 means auto: min(8, cpu count))."""
        if self.jobs > 0:
            return self.jobs
        return min(8, os.cpu_count() or 1)


@dataclass
class LintReport:
    """Everything a lint run learned."""

    findings: List[Finding] = field(default_factory=list)
    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    expired: List[str] = field(default_factory=list)
    suppressed: int = 0
    checked_modules: int = 0
    unparsable: Dict[str, str] = field(default_factory=dict)
    rules: List[str] = field(default_factory=list)

    @property
    def gating(self) -> List[Finding]:
        """Findings that fail the run: new errors (warnings never gate)."""
        from repro.analysis.lint.findings import Severity

        return [f for f in self.new if f.severity >= Severity.ERROR]

    def exit_code(self, strict: bool = False) -> int:
        """0 clean, 1 findings/parse failures (strict: also staleness)."""
        if self.unparsable:
            return 1
        if self.gating:
            return 1
        if strict and (self.expired or any(
            f.severity.name == "WARNING" for f in self.new
        )):
            # Strict mode also refuses stale baseline entries and new
            # warnings: CI should never silently accumulate either.
            return 1
        return 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe report, as written by ``repro lint --json``."""
        return {
            "checked_modules": self.checked_modules,
            "rules": self.rules,
            "suppressed": self.suppressed,
            "unparsable": dict(self.unparsable),
            "new": [f.to_dict() for f in self.new],
            "baselined": [f.to_dict() for f in self.baselined],
            "expired_fingerprints": list(self.expired),
        }


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """All ``*.py`` files under ``paths``, stably sorted, junk skipped."""
    found: Set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            found.add(path.resolve())
            continue
        if not path.is_dir():
            continue
        for candidate in path.rglob("*.py"):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            found.add(candidate.resolve())
    return sorted(found)


def build_project(config: LintConfig) -> ProjectContext:
    """Discover and parse every module into a :class:`ProjectContext`."""
    files = discover_files(config.resolved_paths())
    project = ProjectContext(root=config.root)
    jobs = config.resolved_jobs()

    def _parse(path: Path):
        try:
            return ModuleContext.parse(path, config.root), None
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            return None, (path, exc)

    if jobs > 1 and len(files) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_parse, files))
    else:
        results = [_parse(path) for path in files]

    for module, error in results:
        if module is not None:
            project.modules.append(module)
        else:
            path, exc = error
            relpath = _safe_rel(path, config.root)
            project.unparsable[relpath] = f"{type(exc).__name__}: {exc}"
    project.modules.sort(key=lambda m: m.relpath)
    return project


def run_lint(config: LintConfig) -> LintReport:
    """Execute a full lint run and return its report."""
    project = build_project(config)

    checkers: List[Checker] = []
    for cls in all_checkers():
        if config.select is not None and cls.rule_id not in config.select:
            continue
        checkers.append(cls())

    for checker in checkers:
        checker.scan(project)

    suppressed = 0
    collected: List[Finding] = []

    def _check_module(module: ModuleContext) -> List[Finding]:
        kept: List[Finding] = []
        for checker in checkers:
            for finding in checker.check(module, project):
                kept.append(finding)
        return kept

    jobs = config.resolved_jobs()
    if jobs > 1 and len(project.modules) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            per_module = list(pool.map(_check_module, project.modules))
    else:
        per_module = [_check_module(m) for m in project.modules]

    module_by_path = {m.relpath: m for m in project.modules}
    for batch in per_module:
        for finding in batch:
            module = module_by_path.get(finding.path)
            if module is not None and module.suppressions.is_suppressed(
                finding.rule, finding.line
            ):
                suppressed += 1
                continue
            collected.append(finding)

    collected.sort(key=Finding.sort_key)

    baseline = Baseline.load(config.resolved_baseline())
    new, baselined, expired = baseline.partition(collected)

    return LintReport(
        findings=collected,
        new=new,
        baselined=baselined,
        expired=expired,
        suppressed=suppressed,
        checked_modules=len(project.modules),
        unparsable=dict(project.unparsable),
        rules=[checker.rule_id for checker in checkers],
    )


def _safe_rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
