"""Tests for the Door-to-Partition Table (§IV-B)."""

import math

import pytest

from repro.exceptions import UnknownEntityError
from repro.index import DoorPartitionTable
from repro.model.figure1 import (
    D12,
    D15,
    D21,
    HALLWAY,
    ROOM_12,
    ROOM_20,
    ROOM_21,
    build_figure1,
)


@pytest.fixture(scope="module")
def space():
    return build_figure1()


@pytest.fixture(scope="module")
def dpt(space):
    return DoorPartitionTable.build(space.distance_graph)


class TestRecords:
    def test_unidirectional_door_record(self, space, dpt):
        # The paper's example: D2P(d15) = {(v13, v12)}, so d15's record is
        # (d15, null, inf, ptr(v12), f_dv(d15, v12)).
        record = dpt.record(D15)
        assert record.partition1 is None
        assert math.isinf(record.dist1)
        assert record.partition2 == ROOM_12
        assert record.dist2 == pytest.approx(
            space.distance_graph.fdv(D15, ROOM_12)
        )

    def test_unidirectional_d12_enters_hallway_only(self, space, dpt):
        record = dpt.record(D12)
        assert record.partition1 is None
        assert record.partition2 == HALLWAY
        assert record.dist2 == pytest.approx(
            space.distance_graph.fdv(D12, HALLWAY)
        )

    def test_bidirectional_door_record_orders_partitions(self, space, dpt):
        record = dpt.record(D21)
        assert record.partition1 == ROOM_20  # lower id first
        assert record.partition2 == ROOM_21
        assert record.dist1 == pytest.approx(space.distance_graph.fdv(D21, ROOM_20))
        assert record.dist2 == pytest.approx(space.distance_graph.fdv(D21, ROOM_21))

    def test_enterable_iteration(self, dpt):
        assert list(dpt.record(D15).enterable()) == [
            (ROOM_12, pytest.approx(dpt.record(D15).dist2))
        ]
        assert len(list(dpt.record(D21).enterable())) == 2

    def test_unknown_door_raises(self, dpt):
        with pytest.raises(UnknownEntityError):
            dpt.record(999)


class TestTable:
    def test_one_record_per_door(self, space, dpt):
        assert len(dpt) == space.num_doors

    def test_sorted_by_door_id(self, dpt):
        assert dpt.door_ids == sorted(dpt.door_ids)
        iterated = [record.door_id for record in dpt]
        assert iterated == dpt.door_ids

    def test_memory_accounting(self, dpt):
        # 28 bytes per record, as in §VI-B.
        assert dpt.memory_bytes() == 28 * len(dpt)

    def test_every_distance_is_positive_or_inf(self, dpt):
        for record in dpt:
            for _, dist in record.enterable():
                assert dist > 0
