"""Tests for the ``repro doctor`` health-report subcommand."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import save_space
from repro.model.figure1 import build_figure1


@pytest.fixture
def plan_file(tmp_path):
    path = tmp_path / "plan.json"
    save_space(build_figure1(), path)
    return str(path)


class TestDoctor:
    def test_healthy_plan_exits_zero(self, plan_file, capsys):
        assert main(["doctor", plan_file]) == 0
        out = capsys.readouterr().out
        assert "floor plan lint:" in out
        assert "index integrity:" in out
        assert "doctor: healthy" in out

    def test_lint_error_exits_nonzero(self, tmp_path, capsys):
        # Overlapping partitions are an error-severity lint finding.
        from repro.geometry import Point, Segment, rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(5, 0, 15, 10))
        builder.add_door(
            1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2)
        )
        path = tmp_path / "overlap.json"
        save_space(builder.build(), path)
        assert main(["doctor", str(path)]) == 1
        out = capsys.readouterr().out
        assert "partition-overlap" in out
        assert "doctor: 1 error(s)" in out

    def test_corrupt_index_detected(self, plan_file, capsys, monkeypatch):
        # Poison every matrix built during this test: doctor must report
        # the NaN and exit non-zero.
        from repro.index import framework as framework_module

        original_build = framework_module.IndexFramework.build.__func__

        def corrupted_build(cls, space, objects=None, cell_size=2.0, **kwargs):
            built = original_build(cls, space, objects, cell_size, **kwargs)
            built.distance_index.md2d[0, 1] = np.nan
            return built

        monkeypatch.setattr(
            framework_module.IndexFramework,
            "build",
            classmethod(corrupted_build),
        )
        assert main(["doctor", plan_file]) == 1
        out = capsys.readouterr().out
        assert "md2d-nan" in out
        assert "doctor: 1 error(s)" in out
