"""Chaos campaigns that mutate topology mid-flight on the sharded tier.

The reconfiguration plan removes and re-adds Figure 1's d24 while
arming the ``reconfig.*`` crash points, so workers die between prepare
and commit and whole rounds tear at the WAL boundary.  Like every shard
campaign this is not replay-stable; the tests pin the safety verdicts
and the report's reconfiguration footprint, not digests.
"""

import json

import pytest

from repro.chaos import (
    CampaignConfig,
    CampaignReport,
    CampaignRunner,
    shard_reconfig_plan,
)
from repro.cli import main


@pytest.fixture(scope="module")
def reconfig_report():
    config = CampaignConfig(
        seed=7,
        duration_ops=60,
        shards=3,
        plan=shard_reconfig_plan(60, shards=3),
    )
    return CampaignRunner(config).run()


class TestReconfigCampaign:
    def test_no_silent_wrong_answers_and_everything_recovers(
        self, reconfig_report
    ):
        counts = reconfig_report.counts()
        assert reconfig_report.verdict == "PASS"
        assert counts["silent_wrong_answer"] == 0
        assert counts["unrecovered"] == 0
        assert reconfig_report.ops_executed == 60

    def test_armed_crash_points_tore_rounds_that_then_healed(
        self, reconfig_report
    ):
        kinds = {i.kind for i in reconfig_report.incidents}
        # The commit.torn arm kills a mutation mid-round ...
        assert "injected_crash" in kinds
        assert "shard_hung" in kinds
        # ... and the final probe heals it through resume().
        state = reconfig_report.reconfig
        assert state["resumes"] >= 1
        assert state["rounds"] > 4  # torn rounds re-run, 4 would be clean

    def test_report_carries_the_reconfig_footprint(self, reconfig_report):
        state = reconfig_report.reconfig
        # Four mutations land in the plan; torn rounds heal via resume,
        # so the committed epoch must have converged to the fence.
        assert state["committed_epoch"] == state["fence_epoch"]
        assert state["committed_epoch"] >= 4
        assert state["rounds"] >= 4
        assert state["pending_records"] == 0
        assert all(skew == 0 for skew in state["epoch_skew"].values())

    def test_reconfig_state_roundtrips_through_json(
        self, reconfig_report, tmp_path
    ):
        path = reconfig_report.save(tmp_path / "report.json")
        restored = CampaignReport.load(path)
        assert restored.reconfig == reconfig_report.reconfig


class TestReconfigPlanValidation:
    def test_plan_rejects_short_campaigns(self):
        with pytest.raises(ValueError):
            shard_reconfig_plan(10)

    def test_plan_rejects_single_shard(self):
        with pytest.raises(ValueError):
            shard_reconfig_plan(60, shards=1)

    def test_topology_action_rejected_without_shards_flag(self, capsys):
        code = main(["chaos", "run", "--reconfig", "--duration-ops", "40"])
        assert code == 2
        assert "--shards" in capsys.readouterr().out


class TestReconfigCli:
    def test_cli_runs_reconfig_campaigns(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        code = main([
            "chaos", "run", "--seed", "3", "--duration-ops", "40",
            "--shards", "3", "--reconfig", "--report", str(path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "reconfig" in out
        raw = json.loads(path.read_text(encoding="utf-8"))
        assert raw["verdict"] == "PASS"
        assert raw["counts"]["silent_wrong_answer"] == 0
        assert raw["counts"]["unrecovered"] == 0
        assert raw["reconfig"]["committed_epoch"] >= 4
