"""Query workload generation for the benchmark harness (paper §VI).

Distance experiments use random position pairs ("for each algorithm
invocation, we generate at random two indoor positions"); query experiments
use random query positions ("we randomly pick a floor and generate a random
query position on that particular floor").

Beyond the paper, :func:`query_workload` generates mixed serving workloads
(range / kNN / pt2pt, as plain :class:`WorkloadOp` descriptors) over any
:class:`~repro.model.builder.IndoorSpace` — the deterministic op stream the
chaos campaigns of :mod:`repro.chaos` replay by seed.

:func:`flash_crowd_workload` extends that to *open-loop* load: each op
carries an offered-at timestamp following a rush-hour arrival ramp
(trapezoid rate profile peaking at ``peak_multiplier`` times the base
rate), positions concentrate on a small set of zipfian POI hotspots, and
tracking updates arrive in bursts of consecutive pt2pt ops — the load
shape the overload-control stack (:mod:`repro.overload`) is built to
survive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry import Point
from repro.model.builder import IndoorSpace
from repro.model.entities import PartitionKind
from repro.synthetic.building import SyntheticBuilding
from repro.synthetic.objects import random_point_in_partition


def random_position(
    building: SyntheticBuilding,
    rng: random.Random,
    floor: Optional[int] = None,
) -> Point:
    """One random indoor position: random floor, then a position uniform
    over the floor's walkable area (rooms + hallway).

    Area-uniform sampling matters: the hallway is roughly a third of each
    floor, so multi-door source/destination partitions occur with realistic
    frequency — which is what separates Algorithm 2 from Algorithms 3/4 in
    the Figure-6 experiment.
    """
    if floor is None:
        floor = rng.randrange(building.floors)
    candidates = building.rooms_on_floor(floor) + [building.hallway_on_floor(floor)]
    partitions = [building.space.partition(pid) for pid in candidates]
    weights = [p.polygon.area for p in partitions]
    (partition,) = rng.choices(partitions, weights=weights, k=1)
    return random_point_in_partition(partition, rng)


def random_positions(
    building: SyntheticBuilding, count: int, seed: int = 0
) -> List[Point]:
    """``count`` random query positions (deterministic per seed)."""
    rng = random.Random(seed)
    return [random_position(building, rng) for _ in range(count)]


def random_position_pairs(
    building: SyntheticBuilding, count: int, seed: int = 0
) -> List[Tuple[Point, Point]]:
    """``count`` random (source, destination) pairs for the distance
    algorithm experiments (Figures 6-7)."""
    rng = random.Random(seed)
    return [
        (random_position(building, rng), random_position(building, rng))
        for _ in range(count)
    ]


def random_indoor_position(space: IndoorSpace, rng: random.Random) -> Point:
    """One area-uniform random position over a space's indoor partitions.

    The generic-:class:`IndoorSpace` sibling of :func:`random_position`
    (which needs a :class:`SyntheticBuilding`'s floor layout): outdoor
    partitions are excluded, everything else is weighted by walkable area.
    """
    partitions = [
        p for p in space.partitions() if p.kind is not PartitionKind.OUTDOOR
    ]
    weights = [p.polygon.area for p in partitions]
    (partition,) = rng.choices(partitions, weights=weights, k=1)
    return random_point_in_partition(partition, rng)


@dataclass(frozen=True)
class WorkloadOp:
    """One operation of a mixed serving workload.

    A plain descriptor — no engine types — so workloads can be generated
    once up front and replayed against any serving stack (fresh, faulted,
    pristine-oracle).

    Attributes:
        index: position of the op in its workload (0-based).
        kind: ``"range"``, ``"knn"``, or ``"pt2pt"``.
        position: query position (range / kNN) or source (pt2pt).
        radius: range radius in metres (``range`` only).
        k: neighbour count (``knn`` only).
        target: destination (``pt2pt`` only).
        pivot: a third position carried along for metamorphic
            triangle-inequality checks (``pt2pt`` only).
    """

    index: int
    kind: str
    position: Point
    radius: Optional[float] = None
    k: Optional[int] = None
    target: Optional[Point] = None
    pivot: Optional[Point] = None

    def to_request(self):
        """The op as a serving-layer :class:`~repro.serve.QueryRequest`."""
        from repro.serve.requests import QueryRequest

        if self.kind == "range":
            return QueryRequest.range_query(self.position, self.radius)
        if self.kind == "knn":
            return QueryRequest.knn(self.position, self.k)
        return QueryRequest.pt2pt(self.position, self.target)


def query_workload(
    space: IndoorSpace,
    count: int,
    seed: int = 0,
    mix: Sequence[float] = (0.4, 0.3, 0.3),
) -> List[WorkloadOp]:
    """``count`` mixed ops (range, kNN, pt2pt) — deterministic per seed.

    Args:
        space: the indoor space to sample positions from.
        count: how many operations.
        seed: RNG seed; every position, radius, k, and kind draw derives
            from it, so the same seed always yields the same workload.
        mix: relative weights of (range, knn, pt2pt).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = random.Random(seed)
    ops: List[WorkloadOp] = []
    for index in range(count):
        (kind,) = rng.choices(("range", "knn", "pt2pt"), weights=mix, k=1)
        position = random_indoor_position(space, rng)
        if kind == "range":
            ops.append(
                WorkloadOp(
                    index, kind, position,
                    radius=round(rng.uniform(2.0, 15.0), 3),
                )
            )
        elif kind == "knn":
            ops.append(WorkloadOp(index, kind, position, k=rng.randint(1, 8)))
        else:
            ops.append(
                WorkloadOp(
                    index, kind, position,
                    target=random_indoor_position(space, rng),
                    pivot=random_indoor_position(space, rng),
                )
            )
    return ops


@dataclass(frozen=True)
class FlashCrowdConfig:
    """Shape of a rush-hour flash-crowd workload.

    The arrival rate follows a trapezoid over the op stream: flat at the
    base rate until ``ramp_start``, ramping linearly up to
    ``peak_multiplier`` times the base rate between ``ramp_start`` and
    ``peak_start``, flat at the peak through ``peak_end``, then ramping
    back down by ``ramp_end`` (all fractions of ``count``).

    Attributes:
        count: total operations in the workload.
        hotspots: size of the zipfian POI hotspot pool (rush-hour crowds
            converge on a handful of entrances / food courts).
        zipf_exponent: exponent ``s`` of the hotspot popularity law
            ``1 / (rank + 1) ** s``.
        hotspot_weight: fraction of positions drawn from the hotspot pool
            (the rest stay area-uniform background traffic).
        peak_multiplier: arrival-rate multiplier at the top of the ramp.
        ramp_start / peak_start / peak_end / ramp_end: trapezoid knots as
            fractions of ``count``, strictly increasing within [0, 1].
        base_interval_ms: mean inter-arrival gap at the base rate
            (exponential; at the peak the mean shrinks by
            ``peak_multiplier``).
        tracking_burst_prob: per-op probability of opening a tracking
            burst — a run of consecutive pt2pt ops sharing one moving
            subject, the bursty-update half of the flash-crowd shape.
        tracking_burst_len: ops per tracking burst.
        mix: relative (range, knn, pt2pt) weights for non-burst ops.
    """

    count: int
    hotspots: int = 6
    zipf_exponent: float = 1.1
    hotspot_weight: float = 0.8
    peak_multiplier: float = 5.0
    ramp_start: float = 0.3
    peak_start: float = 0.4
    peak_end: float = 0.6
    ramp_end: float = 0.7
    base_interval_ms: float = 10.0
    tracking_burst_prob: float = 0.08
    tracking_burst_len: int = 4
    mix: Sequence[float] = (0.4, 0.3, 0.3)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if self.hotspots < 1:
            raise ValueError(f"hotspots must be >= 1, got {self.hotspots}")
        if not 0.0 <= self.hotspot_weight <= 1.0:
            raise ValueError(
                f"hotspot_weight must be in [0, 1], got {self.hotspot_weight}"
            )
        if self.peak_multiplier < 1.0:
            raise ValueError(
                f"peak_multiplier must be >= 1, got {self.peak_multiplier}"
            )
        knots = (self.ramp_start, self.peak_start, self.peak_end, self.ramp_end)
        if not all(0.0 <= k <= 1.0 for k in knots) or not all(
            a < b for a, b in zip(knots, knots[1:])
        ):
            raise ValueError(
                "trapezoid knots must be strictly increasing within "
                f"[0, 1], got {knots}"
            )
        if self.base_interval_ms <= 0:
            raise ValueError(
                f"base_interval_ms must be > 0, got {self.base_interval_ms}"
            )
        if self.tracking_burst_len < 1:
            raise ValueError(
                f"tracking_burst_len must be >= 1, got {self.tracking_burst_len}"
            )

    def rate_multiplier(self, fraction: float) -> float:
        """Arrival-rate multiplier at ``fraction`` of the way through."""
        if fraction <= self.ramp_start or fraction >= self.ramp_end:
            return 1.0
        if fraction < self.peak_start:
            progress = (fraction - self.ramp_start) / (
                self.peak_start - self.ramp_start
            )
        elif fraction <= self.peak_end:
            progress = 1.0
        else:
            progress = (self.ramp_end - fraction) / (
                self.ramp_end - self.peak_end
            )
        return 1.0 + (self.peak_multiplier - 1.0) * progress


@dataclass(frozen=True)
class TimedOp:
    """A :class:`WorkloadOp` plus the instant it is *offered* to the
    service (ms since workload start) — open-loop load, unlike the
    closed-loop streams chaos campaigns replay."""

    op: WorkloadOp
    offered_at_ms: float


def flash_crowd_workload(
    space: IndoorSpace,
    config: FlashCrowdConfig,
    seed: int = 0,
) -> List[TimedOp]:
    """A rush-hour flash crowd over ``space`` — deterministic per seed.

    Positions are zipfian over a fixed hotspot pool with area-uniform
    background traffic mixed in; inter-arrival gaps are exponential with
    the mean shrunk by the trapezoid ramp of ``config``; tracking bursts
    emit runs of consecutive pt2pt ops following one subject between
    hotspots.
    """
    rng = random.Random(seed)
    pool = [random_indoor_position(space, rng) for _ in range(config.hotspots)]
    weights = [
        1.0 / (rank + 1.0) ** config.zipf_exponent
        for rank in range(config.hotspots)
    ]

    def draw_position() -> Point:
        if rng.random() < config.hotspot_weight:
            (position,) = rng.choices(pool, weights=weights, k=1)
            return position
        return random_indoor_position(space, rng)

    timed: List[TimedOp] = []
    offered_at_ms = 0.0
    burst_left = 0
    burst_subject: Optional[Point] = None
    while len(timed) < config.count:
        index = len(timed)
        fraction = index / config.count if config.count else 0.0
        mean_gap = config.base_interval_ms / config.rate_multiplier(fraction)
        offered_at_ms += rng.expovariate(1.0 / mean_gap)
        if burst_left == 0 and rng.random() < config.tracking_burst_prob:
            burst_left = config.tracking_burst_len
            burst_subject = draw_position()
        if burst_left > 0:
            burst_left -= 1
            destination = draw_position()
            op = WorkloadOp(
                index, "pt2pt", burst_subject,
                target=destination,
                pivot=random_indoor_position(space, rng),
            )
            burst_subject = destination  # the subject keeps moving
        else:
            (kind,) = rng.choices(("range", "knn", "pt2pt"), weights=config.mix, k=1)
            position = draw_position()
            if kind == "range":
                op = WorkloadOp(
                    index, kind, position,
                    radius=round(rng.uniform(2.0, 15.0), 3),
                )
            elif kind == "knn":
                op = WorkloadOp(index, kind, position, k=rng.randint(1, 8))
            else:
                op = WorkloadOp(
                    index, kind, position,
                    target=draw_position(),
                    pivot=random_indoor_position(space, rng),
                )
        timed.append(TimedOp(op=op, offered_at_ms=offered_at_ms))
    return timed


def flash_crowd_ops(
    space: IndoorSpace,
    count: int,
    seed: int = 0,
    **overrides,
) -> List[WorkloadOp]:
    """The flash-crowd op stream without timestamps, for closed-loop
    replay (chaos campaigns execute ops back-to-back; only the hotspot
    skew and burstiness matter there, not the arrival clock)."""
    config = FlashCrowdConfig(count=count, **overrides)
    return [timed.op for timed in flash_crowd_workload(space, config, seed)]
