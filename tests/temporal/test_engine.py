"""Tests for time-parameterised query processing."""

import pytest

from repro.geometry import Point
from repro.index import IndexFramework, IndoorObject
from repro.model.figure1 import D13, P, Q, build_figure1
from repro.queries import brute_force_knn, brute_force_range
from repro.temporal import (
    DoorSchedule,
    TemporalIndoorSpace,
    TemporalQueryEngine,
    TimeInterval,
)

OBJECTS = [
    IndoorObject(1, Point(6.5, 9.0), payload="in room 13"),
    IndoorObject(2, Point(1.0, 5.0), payload="in hallway"),
    IndoorObject(3, Point(13.0, 6.0), payload="in room 20"),
]


@pytest.fixture
def engine():
    """d13 (the only way INTO room 13) is open 8:00-18:00."""
    schedule = DoorSchedule()
    schedule.set_open(D13, [TimeInterval(8.0, 18.0)])
    temporal = TemporalIndoorSpace(build_figure1(), schedule)
    return TemporalQueryEngine(temporal, OBJECTS)


class TestTimeDependentQueries:
    def test_daytime_queries_match_static_behaviour(self, engine):
        base = build_figure1()
        framework = IndexFramework.build(base, OBJECTS)
        day = engine.range_query(12.0, Q, 12.0)
        from repro.queries import range_query

        assert day == range_query(framework, Q, 12.0)

    def test_object_behind_closed_door_leaves_range_results(self, engine):
        # From the hallway, object 1 (in room 13) is reachable by day but
        # not at night (d13 closed, d15 only leads OUT of room 13).
        day = engine.range_query(12.0, Q, 12.0)
        night = engine.range_query(22.0, Q, 12.0)
        assert 1 in day
        assert 1 not in night
        assert 2 in night  # the hallway object is unaffected

    def test_knn_at_night_skips_the_locked_room(self, engine):
        day_ids = [oid for oid, _ in engine.knn(12.0, Q, 3)]
        night_ids = [oid for oid, _ in engine.knn(22.0, Q, 3)]
        assert 1 in day_ids
        assert 1 not in night_ids
        assert len(night_ids) == 2  # only two objects remain reachable

    def test_queries_from_inside_the_locked_room_still_leave(self, engine):
        # P is in room 13; at night one can still exit via one-way d15.
        night = engine.range_query(22.0, P, 20.0)
        assert 2 in night

    def test_results_match_brute_force_on_the_snapshot(self, engine):
        snapshot = engine.temporal.snapshot(22.0)
        night_range = engine.range_query(22.0, Q, 15.0)
        assert night_range == brute_force_range(
            snapshot, engine.objects, Q, 15.0
        )
        night_knn = engine.knn(22.0, Q, 3)
        expected = brute_force_knn(snapshot, engine.objects, Q, 3)
        assert [d for _, d in night_knn] == pytest.approx(
            [d for _, d in expected]
        )

    def test_regimes_are_cached(self, engine):
        engine.range_query(9.0, Q, 5.0)
        engine.range_query(10.0, Q, 5.0)  # same regime
        engine.range_query(23.0, Q, 5.0)  # night regime
        assert engine.regime_count == 2

    def test_distance_passthrough(self, engine):
        assert engine.distance(12.0, P, Q) == pytest.approx(3.236, abs=1e-3)


class TestSharedObjectStore:
    def test_object_churn_is_visible_in_every_regime(self, engine):
        engine.range_query(12.0, Q, 12.0)  # build the day regime
        engine.range_query(22.0, Q, 12.0)  # build the night regime
        engine.add_object(IndoorObject(4, Point(2.0, 5.5)))
        assert 4 in engine.range_query(12.0, Q, 12.0)
        assert 4 in engine.range_query(22.0, Q, 12.0)
        engine.move_object(4, Point(13.5, 8.0))
        assert 4 not in engine.range_query(22.0, Q, 5.0)
        engine.remove_object(4)
        assert 4 not in engine.range_query(12.0, Q, 100.0)
