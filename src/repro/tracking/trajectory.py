"""Indoor trajectories: timed playback of walking paths.

Bridges the navigation layer and the monitoring layer: an
:class:`IndoorTrajectory` materialises a shortest path as a timed polyline
(constant walking speed through the path's door sequence), and
:func:`drive_session` replays one or more trajectories against a
:class:`~repro.tracking.session.TrackingSession`, producing the stream of
object moves a positioning system would deliver.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.distance.path import IndoorPath
from repro.exceptions import QueryError
from repro.geometry import Point
from repro.model.builder import IndoorSpace

#: A comfortable indoor walking speed (metres / second).
DEFAULT_SPEED = 1.4


def _waypoints(space: IndoorSpace, path: IndoorPath) -> List[Point]:
    points = [path.source]
    points.extend(space.door(d).midpoint for d in path.doors)
    points.append(path.target)
    return points


@dataclass(frozen=True)
class IndoorTrajectory:
    """A timed walk along a path: piecewise-linear between waypoints.

    Waypoints on different floors (staircase hops) jump at the segment
    boundary — playback positions are always valid indoor points.

    Attributes:
        waypoints: positions visited, in order.
        timestamps: arrival time at each waypoint; strictly increasing,
            same length as ``waypoints``.
    """

    waypoints: Tuple[Point, ...]
    timestamps: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.waypoints) != len(self.timestamps):
            raise QueryError("waypoints and timestamps must align")
        if len(self.waypoints) < 1:
            raise QueryError("a trajectory needs at least one waypoint")
        if any(
            b <= a for a, b in zip(self.timestamps, self.timestamps[1:])
        ):
            raise QueryError("timestamps must be strictly increasing")

    @classmethod
    def from_path(
        cls,
        space: IndoorSpace,
        path: IndoorPath,
        start_time: float = 0.0,
        speed: float = DEFAULT_SPEED,
    ) -> "IndoorTrajectory":
        """Walk a shortest path at constant speed, departing at
        ``start_time``."""
        if not path.is_reachable:
            raise QueryError("cannot walk an unreachable path")
        if speed <= 0:
            raise QueryError(f"speed must be positive, got {speed}")
        waypoints = _waypoints(space, path)
        timestamps = [start_time]
        for a, b in zip(waypoints, waypoints[1:]):
            if a.floor == b.floor:
                leg = a.distance_to(b)
            else:
                # Staircase hop: bill the stair walking length.
                host = space.get_host_partition(a)
                leg = host.stair_length if host and host.stair_length else 0.0
            timestamps.append(timestamps[-1] + max(leg, 1e-9) / speed)
        return cls(tuple(waypoints), tuple(timestamps))

    @property
    def start_time(self) -> float:
        """Departure time."""
        return self.timestamps[0]

    @property
    def end_time(self) -> float:
        """Arrival time."""
        return self.timestamps[-1]

    @property
    def duration(self) -> float:
        """Total walking time."""
        return self.end_time - self.start_time

    def position_at(self, t: float) -> Point:
        """Position at time ``t`` (clamped to the endpoints outside the
        trajectory's time span)."""
        if t <= self.start_time:
            return self.waypoints[0]
        if t >= self.end_time:
            return self.waypoints[-1]
        index = bisect.bisect_right(self.timestamps, t) - 1
        a, b = self.waypoints[index], self.waypoints[index + 1]
        t0, t1 = self.timestamps[index], self.timestamps[index + 1]
        fraction = (t - t0) / (t1 - t0)
        if a.floor != b.floor:
            # Inside a staircase hop: report the landing we are closer to.
            return a if fraction < 0.5 else b
        return Point(
            a.x + fraction * (b.x - a.x),
            a.y + fraction * (b.y - a.y),
            a.floor,
        )


def drive_session(
    session,
    trajectories: Dict[int, IndoorTrajectory],
    tick: float,
) -> List[float]:
    """Replay trajectories against a tracking session.

    At every ``tick`` from the earliest departure to the latest arrival,
    each listed object is moved to its trajectory position (objects must
    already exist in the session's store).

    Returns:
        The tick times that were replayed.
    """
    if tick <= 0:
        raise QueryError(f"tick must be positive, got {tick}")
    if not trajectories:
        return []
    start = min(t.start_time for t in trajectories.values())
    end = max(t.end_time for t in trajectories.values())
    times: List[float] = []
    t = start
    while t <= end + 1e-9:
        for object_id, trajectory in trajectories.items():
            session.move_object(object_id, trajectory.position_at(t))
        times.append(t)
        t += tick
    return times
