"""2-hop label construction: pruned per-hub Dijkstra in hierarchy order.

The construction is pruned landmark labeling specialised to the directed
door graph (TopCom, arXiv:1602.01537), with the hub order supplied by the
independent-set hierarchy of :mod:`repro.labels.hierarchy` (IS-LABEL,
arXiv:1211.2367):

* Hubs are processed top-of-hierarchy first.  For hub *h* a forward
  Dijkstra yields d(h, ·) and a backward Dijkstra (on the transposed
  graph) yields d(·, h) — both via the same
  :func:`scipy.sparse.csgraph.dijkstra` routine the dense M_d2d builder
  uses, so every stored label distance is *canonical*.
* An entry ``(h, d(h, v))`` joins L_in(v) only when the labels built so
  far cannot already answer d(h, v) at least as well (the standard PLL
  pruning test, evaluated vectorised over all targets at once); the
  backward side is symmetric for L_out.

Then a **canonical repair pass** makes the labeling answer bit-identically
to the dense matrix: floating-point addition is not associative, so a hub
sum d(u,h) + d(h,v) can differ from the canonically folded Dijkstra value
by an ulp.  The pass streams exact per-source rows (chunked, never
holding N² floats) and records every element where the label query
deviates bitwise into a sparse correction table that query processing
consults first.  On every graph we have measured, corrections are a
vanishing fraction of N² and each deviation is ulp-scale — the table is a
guarantee, not a crutch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.labels.hierarchy import VertexHierarchy, build_hierarchy

#: Sources per canonical-repair Dijkstra batch; bounds the pass's resident
#: memory at ``chunk × N`` floats regardless of graph size.
REPAIR_CHUNK = 256


@dataclass(frozen=True)
class HubLabeling:
    """The finished label arrays for one door graph.

    Label sets are CSR-shaped over matrix indices: node ``v``'s L_in
    entries are ``in_hubs[in_indptr[v]:in_indptr[v+1]]`` with matching
    distances, hubs ascending within each segment.  ``corr_*`` is the
    sparse canonical-correction table (see module docstring).
    """

    out_indptr: np.ndarray
    out_hubs: np.ndarray
    out_dists: np.ndarray
    in_indptr: np.ndarray
    in_hubs: np.ndarray
    in_dists: np.ndarray
    corr_src: np.ndarray
    corr_dst: np.ndarray
    corr_val: np.ndarray
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def entry_count(self) -> int:
        """Total label entries across both directions."""
        return int(len(self.out_hubs) + len(self.in_hubs))

    def memory_bytes(self) -> int:
        """Total bytes of the label and correction arrays."""
        arrays = (
            self.out_indptr,
            self.out_hubs,
            self.out_dists,
            self.in_indptr,
            self.in_hubs,
            self.in_dists,
            self.corr_src,
            self.corr_dst,
            self.corr_val,
        )
        return int(sum(a.nbytes for a in arrays))


def door_graph_csr(
    door_ids: Sequence[int], edges: Sequence[Tuple[int, int, float]]
) -> csr_matrix:
    """The door graph as a CSR adjacency over matrix indices — identical
    assembly to :func:`repro.distance.matrix.build_distance_matrix`."""
    n = len(door_ids)
    index = {door_id: i for i, door_id in enumerate(door_ids)}
    rows = np.fromiter(
        (index[i] for i, _, _ in edges), dtype=np.int64, count=len(edges)
    )
    cols = np.fromiter(
        (index[j] for _, j, _ in edges), dtype=np.int64, count=len(edges)
    )
    weights = np.fromiter(
        (w for _, _, w in edges), dtype=np.float64, count=len(edges)
    )
    return csr_matrix((weights, (rows, cols)), shape=(n, n))


def _csr_from_lists(
    n: int, labels: List[List[Tuple[int, float]]]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack per-node ``(hub, dist)`` lists into CSR arrays, hubs ascending
    within each node segment (entries arrive in hub-processing order)."""
    counts = np.fromiter((len(lst) for lst in labels), dtype=np.int64, count=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    hubs = np.empty(int(indptr[-1]), dtype=np.int64)
    dists = np.empty(int(indptr[-1]), dtype=np.float64)
    for v, entries in enumerate(labels):
        if not entries:
            continue
        entries = sorted(entries)  # by hub index; hubs are unique per node
        start = int(indptr[v])
        for k, (hub, dist) in enumerate(entries):
            hubs[start + k] = hub
            dists[start + k] = dist
    return indptr, hubs, dists


def invert_by_hub(
    n: int, indptr: np.ndarray, hubs: np.ndarray, dists: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hub-inverted view of a label CSR: for each hub, the nodes carrying
    it and their distances.  Deterministically derived (stable sort), so it
    is rebuilt on snapshot load rather than serialized."""
    nodes = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    order = np.argsort(hubs, kind="stable")
    sorted_hubs = hubs[order]
    inv_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(sorted_hubs, minlength=n), out=inv_indptr[1:])
    return inv_indptr, nodes[order], dists[order]


def materialize_row(
    u: int,
    n: int,
    out_indptr: np.ndarray,
    out_hubs: np.ndarray,
    out_dists: np.ndarray,
    inv_in_indptr: np.ndarray,
    inv_in_nodes: np.ndarray,
    inv_in_dists: np.ndarray,
) -> np.ndarray:
    """The full label-answer row d(u, ·): for every hub g in L_out(u), relax
    d(u,g) + d(g,v) over the nodes v carrying g in L_in(v)."""
    row = np.full(n, np.inf)
    for k in range(int(out_indptr[u]), int(out_indptr[u + 1])):
        g = int(out_hubs[k])
        d_ug = out_dists[k]
        start, stop = int(inv_in_indptr[g]), int(inv_in_indptr[g + 1])
        targets = inv_in_nodes[start:stop]
        # Targets are unique per hub, so fancy assignment is safe (and much
        # faster than np.minimum.at).
        row[targets] = np.minimum(row[targets], d_ug + inv_in_dists[start:stop])
    return row


def build_labeling(
    door_ids: Sequence[int],
    edges: Sequence[Tuple[int, int, float]],
    hierarchy: VertexHierarchy = None,
) -> Tuple[HubLabeling, VertexHierarchy]:
    """Construct pruned 2-hop labels (and corrections) for a door graph."""
    ids = tuple(door_ids)
    n = len(ids)
    if hierarchy is None:
        hierarchy = build_hierarchy(ids, edges)
    if n == 0:
        empty_i = np.zeros(1, dtype=np.int64)
        empty_h = np.empty(0, dtype=np.int64)
        empty_d = np.empty(0, dtype=np.float64)
        labeling = HubLabeling(
            empty_i, empty_h, empty_d, empty_i.copy(), empty_h.copy(),
            empty_d.copy(), empty_h.copy(), empty_h.copy(), empty_d.copy(),
            stats={"entries": 0, "corrections": 0, "max_correction": 0.0},
        )
        return labeling, hierarchy

    adj = door_graph_csr(ids, edges)
    adj_t = adj.T.tocsr()

    out_labels: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
    in_labels: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
    # Hub-inverted working views, grown as hubs are processed.
    by_hub_in: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    by_hub_out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    for h in (int(v) for v in hierarchy.order):
        fwd = dijkstra(adj, directed=True, indices=h)
        bwd = dijkstra(adj_t, directed=True, indices=h)

        # PLL pruning tests against labels of strictly earlier hubs, both
        # evaluated before this hub's own entries are appended.
        est_fwd = np.full(n, np.inf)
        for g, d_hg in out_labels[h]:
            targets, dists = by_hub_in[g]
            est_fwd[targets] = np.minimum(est_fwd[targets], d_hg + dists)
        est_bwd = np.full(n, np.inf)
        for g, d_gh in in_labels[h]:
            sources, dists = by_hub_out[g]
            est_bwd[sources] = np.minimum(est_bwd[sources], dists + d_gh)

        keep_in = np.isfinite(fwd) & (fwd < est_fwd)
        targets = np.flatnonzero(keep_in)
        target_dists = fwd[targets]
        for v, dist in zip(targets.tolist(), target_dists.tolist()):
            in_labels[v].append((h, dist))
        by_hub_in[h] = (targets, target_dists)

        keep_out = np.isfinite(bwd) & (bwd < est_bwd)
        sources = np.flatnonzero(keep_out)
        source_dists = bwd[sources]
        for v, dist in zip(sources.tolist(), source_dists.tolist()):
            out_labels[v].append((h, dist))
        by_hub_out[h] = (sources, source_dists)

    out_indptr, out_hubs, out_dists = _csr_from_lists(n, out_labels)
    in_indptr, in_hubs, in_dists = _csr_from_lists(n, in_labels)
    inv_in = invert_by_hub(n, in_indptr, in_hubs, in_dists)

    # Canonical repair pass: stream exact per-source Dijkstra rows and
    # record every bitwise deviation of the label answer.
    corr_src: List[int] = []
    corr_dst: List[int] = []
    corr_val: List[float] = []
    max_err = 0.0
    for start in range(0, n, REPAIR_CHUNK):
        sources = list(range(start, min(start + REPAIR_CHUNK, n)))
        canonical = np.atleast_2d(dijkstra(adj, directed=True, indices=sources))
        for offset, u in enumerate(sources):
            canonical_row = canonical[offset]
            canonical_row[u] = 0.0  # matches fill_diagonal of the matrix path
            label_row = materialize_row(
                u, n, out_indptr, out_hubs, out_dists, *inv_in
            )
            mismatch = np.flatnonzero(label_row != canonical_row)
            for j in mismatch.tolist():
                corr_src.append(u)
                corr_dst.append(j)
                corr_val.append(float(canonical_row[j]))
                if np.isfinite(label_row[j]) and np.isfinite(canonical_row[j]):
                    max_err = max(
                        max_err, abs(float(label_row[j] - canonical_row[j]))
                    )
                else:
                    max_err = np.inf

    labeling = HubLabeling(
        out_indptr=out_indptr,
        out_hubs=out_hubs,
        out_dists=out_dists,
        in_indptr=in_indptr,
        in_hubs=in_hubs,
        in_dists=in_dists,
        corr_src=np.asarray(corr_src, dtype=np.int64),
        corr_dst=np.asarray(corr_dst, dtype=np.int64),
        corr_val=np.asarray(corr_val, dtype=np.float64),
        stats={
            "entries": float(len(out_hubs) + len(in_hubs)),
            "corrections": float(len(corr_src)),
            "max_correction": float(max_err),
        },
    )
    return labeling, hierarchy
