"""Indoor objects and the per-partition bucket store (paper §IV-B, §V-B).

"Motivated by the fact that any indoor object must be located in some
partition, we store objects within the same partition together in an object
bucket" — :class:`ObjectStore` is that arrangement: one
:class:`~repro.index.grid.PartitionGrid` bucket per occupied partition, plus
an object-id directory so objects can be moved and removed (indoor
populations move).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import ModelError, UnknownEntityError
from repro.geometry import Point
from repro.index.grid import PartitionGrid
from repro.model.builder import IndoorSpace

#: Default grid cell edge length in metres (see §V-B; the ablation benchmark
#: sweeps this).
DEFAULT_CELL_SIZE = 2.0


@dataclass(frozen=True)
class IndoorObject:
    """A point of interest or a tracked entity inside the building.

    Attributes:
        object_id: unique non-negative integer.
        position: current indoor position.
        payload: free-form label (flight number, exhibit name, ...).
    """

    object_id: int
    position: Point
    payload: str = ""

    def __post_init__(self) -> None:
        if self.object_id < 0:
            raise ModelError(f"object id must be non-negative, got {self.object_id}")


class ObjectStore:
    """All indoor objects, bucketed by host partition and grid-indexed.

    Args:
        space: the indoor space objects live in.
        cell_size: grid cell edge length handed to each partition bucket.
    """

    def __init__(
        self, space: IndoorSpace, cell_size: float = DEFAULT_CELL_SIZE
    ) -> None:
        if cell_size <= 0:
            raise ModelError(f"cell size must be positive, got {cell_size}")
        self._space = space
        self._cell_size = cell_size
        self._buckets: Dict[int, PartitionGrid] = {}
        self._directory: Dict[int, Tuple[int, IndoorObject]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(
        self, obj: IndoorObject, partition_id: Optional[int] = None
    ) -> int:
        """Insert an object; returns the id of its host partition.

        Args:
            obj: the object to insert.
            partition_id: skip host-partition lookup when the caller already
                knows it (the synthetic generator does); validated cheaply.
        """
        if obj.object_id in self._directory:
            raise ModelError(f"duplicate object id {obj.object_id}")
        if partition_id is None:
            partition = self._space.require_host_partition(obj.position)
            partition_id = partition.partition_id
        bucket = self._buckets.get(partition_id)
        if bucket is None:
            bucket = PartitionGrid(
                self._space.partition(partition_id), self._cell_size
            )
            self._buckets[partition_id] = bucket
        bucket.insert(obj.object_id, obj.position)
        self._directory[obj.object_id] = (partition_id, obj)
        return partition_id

    def add_all(self, objects: Iterable[IndoorObject]) -> None:
        """Insert many objects (host partitions resolved per object)."""
        for obj in objects:
            self.add(obj)

    def remove(self, object_id: int) -> IndoorObject:
        """Remove an object and return it."""
        try:
            partition_id, obj = self._directory.pop(object_id)
        except KeyError:
            raise UnknownEntityError("object", object_id) from None
        self._buckets[partition_id].remove(object_id)
        return obj

    def move(self, object_id: int, new_position: Point) -> IndoorObject:
        """Relocate an object (possibly across partitions); returns the
        updated object."""
        old = self.remove(object_id)
        updated = IndoorObject(object_id, new_position, old.payload)
        self.add(updated)
        return updated

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, object_id: int) -> IndoorObject:
        """The object with the given id."""
        try:
            return self._directory[object_id][1]
        except KeyError:
            raise UnknownEntityError("object", object_id) from None

    def host_partition_id(self, object_id: int) -> int:
        """Which partition currently hosts the object."""
        try:
            return self._directory[object_id][0]
        except KeyError:
            raise UnknownEntityError("object", object_id) from None

    def bucket(self, partition_id: int) -> Optional[PartitionGrid]:
        """The grid bucket of a partition (``None`` when it holds nothing)."""
        return self._buckets.get(partition_id)

    def objects_in(self, partition_id: int) -> List[IndoorObject]:
        """All objects currently inside the given partition."""
        bucket = self._buckets.get(partition_id)
        if bucket is None:
            return []
        return [self._directory[obj_id][1] for obj_id in bucket.object_ids()]

    def __len__(self) -> int:
        return len(self._directory)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._directory

    def __iter__(self) -> Iterator[IndoorObject]:
        return (obj for _, obj in self._directory.values())

    @property
    def cell_size(self) -> float:
        """Grid cell edge length used by all buckets."""
        return self._cell_size

    @property
    def occupied_partitions(self) -> Tuple[int, ...]:
        """Ids of partitions whose bucket currently holds >= 1 object."""
        return tuple(
            sorted(p for p, b in self._buckets.items() if len(b) > 0)
        )
