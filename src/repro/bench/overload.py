"""Open-loop overload benchmark: ``python -m repro overload-bench``.

Answers the question the overload-control stack (:mod:`repro.overload`)
exists for: *what happens when offered load exceeds capacity?*  A
flash-crowd workload (:func:`~repro.synthetic.workload.flash_crowd_workload`:
rush-hour arrival ramp, zipfian POI hotspots, bursty tracking updates) is
offered open-loop — requests are submitted on the workload's own clock
whether or not earlier answers came back — against two configurations:

* **unprotected** — a plain :class:`~repro.serve.service.QueryService`
  with an effectively unbounded queue and no limiter, swept across
  increasing offered-load multipliers until its p99 blows through the
  SLO (the *collapse point*: the queue grows without bound and every
  answer is late);
* **protected** — the same service with an
  :class:`~repro.overload.AdaptiveConcurrencyLimiter` + shed policy +
  :class:`~repro.overload.RetryBudget`, offered **2x the collapse
  point**.  Excess admissions are shed down the degradation ladder
  (fast, honest ``EUCLIDEAN`` answers flagged ``shed``), so the workers
  keep serving *exact* answers at capacity instead of queueing into
  uselessness.

Goodput counts only full-quality (paper-exact) answers delivered within
the SLO.  The committed artifact gates on
``protected.goodput_ratio_capped`` (protected goodput vs the best the
unprotected service ever achieved, capped at 1.0 — the bar is 0.8)
and ``protected.slo_attainment`` (fraction of exact answers within SLO),
plus hard-zero ``mismatches`` — every exact protected answer is checked
against the paper's sequential engine.

Scale is selected through ``REPRO_BENCH_SCALE`` like the other
benchmarks: ``quick`` (default, seconds) or ``paper``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.index.framework import IndexFramework
from repro.queries.engine import QueryEngine
from repro.overload import AdaptiveConcurrencyLimiter, RetryBudget
from repro.runtime.ladder import QualityLevel
from repro.serve.requests import QueryResponse
from repro.serve.service import QueryService, ShedPolicy
from repro.synthetic import (
    BuildingConfig,
    FlashCrowdConfig,
    TimedOp,
    build_object_store,
    flash_crowd_workload,
    generate_building,
)
from repro.bench.serve import _answer_naive


@dataclass(frozen=True)
class OverloadScale:
    """Workload shape for one overload-benchmark scale.

    Attributes:
        name: scale label echoed into the result.
        floors: synthetic building height.
        objects: indoor objects populating the store.
        hotspots: zipfian POI hotspot pool size.
        requests_per_step: flash-crowd ops per offered-load step.
        stress_requests: flash-crowd ops for the protected stress run
            (longer, so the measurement covers sustained overload rather
            than one short burst).
        multipliers: offered-load sweep, as multiples of measured
            capacity *at the peak of the arrival ramp*.
        stress_factor: protected offered load as a multiple of the
            unprotected collapse multiplier.
        slo_ms: the latency objective the limiter defends.
        workers: service worker threads.
        queue_capacity: nominal queue bound for the protected service.
        limiter_initial: starting concurrency limit.
    """

    name: str
    floors: int
    objects: int
    hotspots: int
    requests_per_step: int
    stress_requests: int
    multipliers: Tuple[float, ...]
    stress_factor: float
    slo_ms: float
    workers: int
    queue_capacity: int
    limiter_initial: int


OVERLOAD_QUICK = OverloadScale(
    name="quick",
    floors=4,
    objects=600,
    hotspots=8,
    requests_per_step=800,
    stress_requests=1_600,
    multipliers=(0.5, 1.0, 2.0, 4.0),
    stress_factor=2.0,
    slo_ms=150.0,
    workers=2,
    queue_capacity=64,
    limiter_initial=32,
)

OVERLOAD_PAPER = OverloadScale(
    name="paper",
    floors=10,
    objects=5_000,
    hotspots=12,
    requests_per_step=4_000,
    stress_requests=8_000,
    multipliers=(0.5, 1.0, 2.0, 4.0, 8.0),
    stress_factor=2.0,
    slo_ms=200.0,
    workers=4,
    queue_capacity=128,
    limiter_initial=48,
)


def current_overload_scale() -> OverloadScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").strip().lower()
    if name == "paper":
        return OVERLOAD_PAPER
    return OVERLOAD_QUICK


_EXACT_QUALITIES = (QualityLevel.EXACT_INDEXED, QualityLevel.EXACT_FALLBACK)


def _is_exact(response: QueryResponse) -> bool:
    return response.quality in _EXACT_QUALITIES


def _p99(latencies_ms: Sequence[float]) -> float:
    if not latencies_ms:
        return 0.0
    ordered = sorted(latencies_ms)
    index = max(0, int(len(ordered) * 0.99) - 1) if len(ordered) >= 100 else (
        len(ordered) - 1
    )
    return ordered[index]


def _offer_open_loop(
    service: QueryService,
    stream: List[TimedOp],
    time_scale: float,
) -> Tuple[List[QueryResponse], float]:
    """Submit ``stream`` on its own (scaled) clock; gather everything.

    Open loop: when the service falls behind, submission does *not* slow
    down — that is the whole point of an overload benchmark.  Returns
    the responses in stream order plus the wall time from first submit
    to last answer.
    """
    futures = []
    start = time.perf_counter()
    for timed in stream:
        target = start + (timed.offered_at_ms * time_scale) / 1000.0
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        futures.append(service.submit(timed.op.to_request()))
    responses = [future.result() for future in futures]
    wall_s = time.perf_counter() - start
    return responses, wall_s


def _step_summary(
    responses: List[QueryResponse], wall_s: float, slo_ms: float
) -> Dict[str, Any]:
    exact = [r for r in responses if _is_exact(r)]
    exact_within = [r for r in exact if r.latency_ms <= slo_ms]
    shed = sum(1 for r in responses if r.shed)
    return {
        "requests": len(responses),
        "wall_s": wall_s,
        "offered_qps": len(responses) / wall_s if wall_s else 0.0,
        "p99_ms": _p99([r.latency_ms for r in exact]),
        "exact": len(exact),
        "shed": shed,
        "within_slo": len(exact_within),
        "goodput_qps": len(exact_within) / wall_s if wall_s else 0.0,
        "slo_attainment": (
            len(exact_within) / len(exact) if exact else 0.0
        ),
    }


def _flash_crowd_stream(
    space, scale: OverloadScale, count: int, seed: int
) -> Tuple[List[TimedOp], float]:
    """The workload stream plus its generated peak rate (ops/s)."""
    config = FlashCrowdConfig(count=count, hotspots=scale.hotspots)
    stream = flash_crowd_workload(space, config, seed=seed)
    peak_rate = (1000.0 / config.base_interval_ms) * config.peak_multiplier
    return stream, peak_rate


def measure_overload(
    scale: Optional[OverloadScale] = None, seed: int = 0
) -> Dict[str, Any]:
    """Run the overload benchmark; returns one JSON-ready result dict."""
    scale = scale or current_overload_scale()
    building = generate_building(BuildingConfig(floors=scale.floors))
    building.space.distance_graph.precompute()
    store = build_object_store(building, scale.objects, seed=seed)
    framework = IndexFramework.build(building.space).with_objects(store)
    engine = QueryEngine(framework)
    space = building.space

    step_stream, peak_rate = _flash_crowd_stream(
        space, scale, scale.requests_per_step, seed
    )

    # Capacity calibration: closed-loop throughput of the unprotected
    # service over the same op mix — the most exact answers per second
    # this host can produce.  All offered-load multipliers are relative
    # to it, so the collapse point is host-independent.
    calibration = QueryService(
        engine,
        workers=scale.workers,
        queue_capacity=4 * len(step_stream),
        enable_cache=False,
    )
    with calibration:
        start = time.perf_counter()
        calibration.serve([timed.op.to_request() for timed in step_stream])
        calibration_wall_s = time.perf_counter() - start
    capacity_qps = len(step_stream) / calibration_wall_s

    # Unprotected sweep: same flash crowd, offered faster and faster
    # (time_scale compresses the workload clock so the ramp's *peak*
    # rate hits multiplier x capacity).
    steps: List[Dict[str, Any]] = []
    collapse_multiplier: Optional[float] = None
    for multiplier in scale.multipliers:
        time_scale = peak_rate / (multiplier * capacity_qps)
        service = QueryService(
            engine,
            workers=scale.workers,
            queue_capacity=4 * len(step_stream),  # never sheds
            enable_cache=False,
        )
        with service:
            responses, wall_s = _offer_open_loop(
                service, step_stream, time_scale
            )
        summary = _step_summary(responses, wall_s, scale.slo_ms)
        summary["multiplier"] = multiplier
        steps.append(summary)
        if collapse_multiplier is None and summary["p99_ms"] > scale.slo_ms:
            collapse_multiplier = multiplier
    if collapse_multiplier is None:
        collapse_multiplier = scale.multipliers[-1]
    peak_goodput_qps = max(step["goodput_qps"] for step in steps)

    # Protected stress run: 2x the collapse point, limiter + shed policy
    # + retry budget installed, longer stream so the measurement covers
    # sustained overload.
    stress_multiplier = scale.stress_factor * collapse_multiplier
    stress_stream, stress_peak_rate = _flash_crowd_stream(
        space, scale, scale.stress_requests, seed
    )
    time_scale = stress_peak_rate / (stress_multiplier * capacity_qps)
    limiter = AdaptiveConcurrencyLimiter(
        slo_ms=scale.slo_ms,
        initial_limit=scale.limiter_initial,
        max_limit=4 * scale.queue_capacity,
    )
    budget = RetryBudget()
    protected = QueryService(
        engine,
        workers=scale.workers,
        queue_capacity=scale.queue_capacity,
        enable_cache=False,
        shed_policy=ShedPolicy(),
        limiter=limiter,
        retry_budget=budget,
    )
    with protected:
        responses, wall_s = _offer_open_loop(
            protected, stress_stream, time_scale
        )
    summary = _step_summary(responses, wall_s, scale.slo_ms)

    # Differential oracle over every full-quality protected answer: shed
    # answers are honestly degraded (flagged), but an *exact* answer
    # produced under overload must still equal the paper's sequential
    # engine, bit for bit.
    mismatches = 0
    for timed, response in zip(stress_stream, responses):
        if not _is_exact(response):
            continue
        if response.value != _answer_naive(engine, timed.op.to_request()):
            mismatches += 1

    goodput_ratio = (
        summary["goodput_qps"] / peak_goodput_qps if peak_goodput_qps else 0.0
    )
    return {
        "scale": scale.name,
        "seed": seed,
        "slo_ms": scale.slo_ms,
        "workers": scale.workers,
        "capacity_qps": capacity_qps,
        "unprotected": {
            "steps": steps,
            "collapse_multiplier": collapse_multiplier,
            "peak_goodput_qps": peak_goodput_qps,
        },
        "protected": {
            "multiplier": stress_multiplier,
            **summary,
            "goodput_ratio": goodput_ratio,
            # The gated form: the acceptance bar is "goodput >= 0.8x the
            # unprotected peak", so anything past 1.0 is surplus — capping
            # keeps the gate from demanding a lucky run's surplus forever.
            "goodput_ratio_capped": min(1.0, goodput_ratio),
            "slo_headroom": (
                scale.slo_ms / summary["p99_ms"] if summary["p99_ms"] else 0.0
            ),
            "limiter": limiter.snapshot(),
            "budget": budget.snapshot(),
        },
        "mismatches": mismatches,
    }


def render_overload_summary(result: Dict[str, Any]) -> str:
    """A short plain-text summary of one :func:`measure_overload` result."""
    lines = [
        f"overload-bench  scale={result['scale']}  seed={result['seed']}  "
        f"slo={result['slo_ms']:.0f} ms  "
        f"capacity={result['capacity_qps']:.0f} qps",
        "  unprotected sweep (peak offered vs capacity):",
    ]
    for step in result["unprotected"]["steps"]:
        lines.append(
            f"    x{step['multiplier']:<4}  p99 {step['p99_ms']:8.1f} ms   "
            f"goodput {step['goodput_qps']:7.1f} qps   "
            f"slo-attainment {step['slo_attainment']:.1%}"
        )
    lines.append(
        f"  collapse at x{result['unprotected']['collapse_multiplier']}   "
        f"peak goodput {result['unprotected']['peak_goodput_qps']:.1f} qps"
    )
    protected = result["protected"]
    lines.append(
        f"  protected @ x{protected['multiplier']}:  "
        f"p99 {protected['p99_ms']:.1f} ms   "
        f"goodput {protected['goodput_qps']:.1f} qps "
        f"({protected['goodput_ratio']:.2f}x peak)   "
        f"shed {protected['shed']}   "
        f"slo-attainment {protected['slo_attainment']:.1%}"
    )
    lines.append(f"  mismatches: {result['mismatches']}")
    return "\n".join(lines)
