"""Exception hierarchy for the :mod:`repro` indoor query-processing library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch every library failure with a single ``except`` clause while still being
able to distinguish model-construction problems from query-time problems.
"""

from __future__ import annotations

import math


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A floor plan or indoor-space model is malformed or inconsistent."""


class TopologyError(ModelError):
    """A topology mapping (D2P / P2D) is violated or queried inconsistently.

    Examples: registering a door that connects more than two partitions, or
    asking for the partitions of a door that was never registered.
    """


class GeometryError(ReproError):
    """A geometric primitive is degenerate or an operation is undefined.

    Examples: a polygon with fewer than three vertices, or a visibility
    query between points that lie in no common partition.
    """


class UnknownEntityError(ModelError):
    """An entity identifier (door, partition, object) is not in the model."""

    def __init__(self, kind: str, identifier: object) -> None:
        self.kind = kind
        self.identifier = identifier
        super().__init__(f"unknown {kind}: {identifier!r}")


class UnreachableError(ReproError):
    """No indoor path exists between the requested source and destination."""


class QueryError(ReproError):
    """A query is malformed (e.g. negative range, k < 1, position outdoors)."""


class DeadlineExceededError(QueryError):
    """A query exhausted its cooperative time budget before completing.

    Raised by the hot loops of range / kNN / pt2pt evaluation when a
    :class:`repro.runtime.Deadline` expires.  Carries the budget so callers
    can log or widen it.
    """

    def __init__(self, message: str, budget: float = math.nan) -> None:
        self.budget = budget
        super().__init__(message)


class IndexError_(ReproError):
    """An index structure is missing, stale, or inconsistent with the model.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class StaleIndexError(IndexError_):
    """An index was built at an older topology epoch than its space.

    The space mutated (door added / removed) after the index framework was
    precomputed; indexed answers would silently reflect the old topology.
    """

    def __init__(
        self, message: str, built_epoch: int = -1, current_epoch: int = -1
    ) -> None:
        self.built_epoch = built_epoch
        self.current_epoch = current_epoch
        super().__init__(message)


class CorruptIndexError(IndexError_):
    """An index structure holds values that violate its invariants.

    Examples: NaN or negative entries in M_d2d, a non-zero diagonal, or a
    mid-query loss of the distance matrix (see :mod:`repro.runtime.faults`).
    """


class SerializationError(ReproError):
    """A building, matrix, or object set could not be (de)serialized."""


class SnapshotCorruptError(SerializationError):
    """A persisted snapshot failed checksum or structural verification.

    Raised at load time when the whole-file digest, a section CRC32, or a
    cross-section consistency check fails.  Carries the offending section
    name (``"file"`` for container-level damage) so the recovery ladder can
    report exactly what rotted.
    """

    def __init__(self, message: str, section: str = "file") -> None:
        self.section = section
        super().__init__(message)


class WalCorruptError(SerializationError):
    """A topology write-ahead log holds a damaged record before its tail.

    A torn *final* record is normal (the process died mid-append) and is
    tolerated silently; damage followed by further valid records means the
    log itself rotted and replay must not trust it.
    """


class RecoveryError(ReproError):
    """No snapshot generation could be restored and no rebuild fallback
    was configured."""


class InjectedCrashError(ReproError):
    """A deterministic crash point (see :mod:`repro.runtime.crashpoints`)
    fired inside a persistence write path.

    Chaos campaigns arm these to simulate the process dying at a precise
    step — after a snapshot temp-file write but before the publishing
    rename, or mid-WAL-append leaving a torn record.  Production code never
    raises this; only an armed crash point does.
    """

    def __init__(self, point: str) -> None:
        self.point = point
        super().__init__(f"injected crash at point {point!r}")


class ServiceUnavailableError(ReproError):
    """The query service cannot admit requests in its current lifecycle
    state (still recovering, draining for shutdown, or stopped)."""

    def __init__(self, message: str, state: str = "") -> None:
        self.state = state
        super().__init__(message)


class ShardUnavailableError(ServiceUnavailableError):
    """A shard worker cannot take this request (dead, restarting, hung
    past its liveness deadline, or out of restart budget).

    The scatter-gather router catches this per shard and fills the missing
    slice from the degradation ladder; it only escapes to callers who
    target a shard directly.
    """

    def __init__(self, message: str, shard: int = -1, state: str = "") -> None:
        self.shard = shard
        super().__init__(message, state=state)


__all__ = [
    "ReproError",
    "ModelError",
    "TopologyError",
    "GeometryError",
    "UnknownEntityError",
    "UnreachableError",
    "QueryError",
    "DeadlineExceededError",
    "IndexError_",
    "StaleIndexError",
    "CorruptIndexError",
    "SerializationError",
    "SnapshotCorruptError",
    "WalCorruptError",
    "RecoveryError",
    "InjectedCrashError",
    "ServiceUnavailableError",
    "ShardUnavailableError",
]
