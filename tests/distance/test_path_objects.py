"""Tests for the path value objects themselves (validation + rendering)."""

import math

import pytest

from repro.distance import DoorPath, IndoorPath
from repro.geometry import Point


class TestDoorPath:
    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            DoorPath(5.0, (1, 2, 3), (10,))  # needs 2 partitions

    def test_empty_path_is_valid(self):
        path = DoorPath(math.inf, (), ())
        assert not path.is_reachable

    def test_single_door_path(self):
        path = DoorPath(0.0, (7,), ())
        assert path.hops == 0
        assert path.describe() == "d7"

    def test_describe_multi_hop(self):
        path = DoorPath(4.2, (1, 2, 3), (10, 20))
        assert path.describe() == "d1 -(v10)-> d2 -(v20)-> d3"

    def test_hops_counts_partitions(self):
        assert DoorPath(4.2, (1, 2, 3), (10, 20)).hops == 2


class TestIndoorPath:
    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            IndoorPath(3.0, Point(0, 0), Point(1, 1), (1,), (10,))

    def test_unreachable_skips_validation(self):
        path = IndoorPath(math.inf, Point(0, 0), Point(1, 1), (), ())
        assert not path.is_reachable
        assert path.describe() == "<unreachable>"

    def test_direct_path(self):
        path = IndoorPath(1.41, Point(0, 0), Point(1, 1), (), (10,))
        assert path.is_reachable
        assert "(1.41 m)" in path.describe()

    def test_describe_lists_doors(self):
        path = IndoorPath(
            5.0, Point(0, 0), Point(4, 4), (15, 12), (13, 12, 10)
        )
        text = path.describe()
        assert "d15" in text and "d12" in text
        assert text.index("d15") < text.index("d12")
