"""Per-partition uniform grid object index (paper §V-B).

Each partition's object bucket consists of sub-buckets, one per grid cell.
``rangeSearch`` visits only cells whose minimum Euclidean distance to the
anchor is within the radius (Euclidean distance lower-bounds the walking
distance, so the pruning is safe even with obstacles); ``nnSearch`` visits
cells nearest-first and stops when the next cell cannot beat the current
bound.

Distances returned are exact *intra-partition walking distances* from the
anchor (a query position inside the partition, or a door of the partition):
straight-line Euclidean in convex obstacle-free partitions (the overwhelming
common case, taken as a fast path) and visibility-graph distances otherwise.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterator, List, Tuple

from repro.exceptions import ModelError
from repro.geometry import BoundingBox, Point
from repro.model.entities import Partition


class PartitionGrid:
    """Uniform-grid bucket of object positions inside one partition.

    Args:
        partition: the partition this bucket belongs to.
        cell_size: grid cell edge length (metres).
    """

    def __init__(self, partition: Partition, cell_size: float) -> None:
        if cell_size <= 0:
            raise ModelError(f"cell size must be positive, got {cell_size}")
        self.partition = partition
        self.cell_size = cell_size
        box = partition.polygon.bounding_box
        self._origin_x = box.min_x
        self._origin_y = box.min_y
        self._cells: Dict[Tuple[int, int], Dict[int, Point]] = {}
        self._locations: Dict[int, Point] = {}
        # Straight lines are exact in convex, obstacle-free partitions.
        self._euclidean_ok = (
            not partition.has_obstacles and partition.polygon.is_convex()
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _cell_of(self, point: Point) -> Tuple[int, int]:
        return (
            int((point.x - self._origin_x) // self.cell_size),
            int((point.y - self._origin_y) // self.cell_size),
        )

    def insert(self, object_id: int, position: Point) -> None:
        """Place an object in its grid cell."""
        if object_id in self._locations:
            raise ModelError(f"object {object_id} already in this bucket")
        cell = self._cell_of(position)
        self._cells.setdefault(cell, {})[object_id] = position
        self._locations[object_id] = position

    def remove(self, object_id: int) -> Point:
        """Remove an object; returns its last position."""
        try:
            position = self._locations.pop(object_id)
        except KeyError:
            raise ModelError(f"object {object_id} not in this bucket") from None
        cell = self._cell_of(position)
        bucket = self._cells[cell]
        del bucket[object_id]
        if not bucket:
            del self._cells[cell]
        return position

    def __len__(self) -> int:
        return len(self._locations)

    def object_ids(self) -> Tuple[int, ...]:
        """All object ids in this bucket (unordered but deterministic)."""
        return tuple(self._locations)

    def position_of(self, object_id: int) -> Point:
        """Current position of an object in this bucket."""
        return self._locations[object_id]

    @property
    def occupied_cells(self) -> int:
        """Number of non-empty grid cells."""
        return len(self._cells)

    # ------------------------------------------------------------------
    # Distance helpers
    # ------------------------------------------------------------------
    def _walking_distance(self, anchor: Point, position: Point) -> float:
        if self._euclidean_ok and anchor.floor == position.floor:
            return anchor.distance_to(position)
        return self.partition.intra_distance(anchor, position)

    def _cell_box(self, cell: Tuple[int, int]) -> BoundingBox:
        ix, iy = cell
        return BoundingBox(
            self._origin_x + ix * self.cell_size,
            self._origin_y + iy * self.cell_size,
            self._origin_x + (ix + 1) * self.cell_size,
            self._origin_y + (iy + 1) * self.cell_size,
        )

    def _anchor_planar(self, anchor: Point) -> Point:
        """Cell pruning is planar; project cross-floor staircase anchors."""
        return anchor.on_floor(self.partition.floor)

    # ------------------------------------------------------------------
    # Searches (the rangeSearch / nnSearch procedures of §V)
    # ------------------------------------------------------------------
    def range_search(
        self, anchor: Point, radius: float
    ) -> List[Tuple[int, float]]:
        """All objects within walking distance ``radius`` of ``anchor``.

        Returns ``(object_id, distance)`` pairs, unsorted.  Only grid cells
        overlapping the circle are visited (Euclidean lower bound, safe with
        obstacles).
        """
        if radius < 0:
            return []
        planar = self._anchor_planar(anchor)
        # Planar cell pruning lower-bounds the walking distance only on the
        # partition's own floor; a cross-floor staircase anchor walks the
        # stairs (a constant), so pruning is skipped there.
        prune = anchor.floor == self.partition.floor
        results: List[Tuple[int, float]] = []
        for cell, objects in self._cells.items():
            if prune and self._cell_box(cell).min_distance_to_point(planar) > radius:
                continue
            for object_id, position in objects.items():
                distance = self._walking_distance(anchor, position)
                if distance <= radius:
                    results.append((object_id, distance))
        return results

    def nn_search(
        self, anchor: Point, bound: float = math.inf, k: int = 1
    ) -> List[Tuple[int, float]]:
        """Up to ``k`` nearest objects with walking distance < ``bound``.

        Cells are visited nearest-first; the scan stops when the next cell's
        minimum possible distance cannot beat the running k-th best (or the
        caller's ``bound``).  Returns ``(object_id, distance)`` sorted by
        ascending distance.
        """
        if k < 1 or not self._cells:
            return []
        planar = self._anchor_planar(anchor)
        # Same cross-floor caveat as range_search: planar lower bounds are
        # only valid on the partition's own floor.
        on_floor = anchor.floor == self.partition.floor
        cell_heap: List[Tuple[float, Tuple[int, int]]] = [
            (
                self._cell_box(cell).min_distance_to_point(planar)
                if on_floor
                else 0.0,
                cell,
            )
            for cell in self._cells
        ]
        heapq.heapify(cell_heap)

        # Max-heap (negated) of the best k candidates found so far.
        best: List[Tuple[float, int]] = []
        while cell_heap:
            lower_bound, cell = heapq.heappop(cell_heap)
            cutoff = bound if len(best) < k else min(bound, -best[0][0])
            if lower_bound >= cutoff:
                break
            for object_id, position in self._cells[cell].items():
                distance = self._walking_distance(anchor, position)
                cutoff = bound if len(best) < k else min(bound, -best[0][0])
                if distance >= cutoff:
                    continue
                if len(best) == k:
                    heapq.heapreplace(best, (-distance, object_id))
                else:
                    heapq.heappush(best, (-distance, object_id))
        return [
            (object_id, distance)
            for distance, object_id in sorted(
                (-neg, object_id) for neg, object_id in best
            )
        ]

    def all_within(self) -> Iterator[Tuple[int, Point]]:
        """Iterate over every (object_id, position) in the bucket."""
        return iter(self._locations.items())
