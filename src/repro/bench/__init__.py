"""Benchmark harness regenerating every figure of the paper's §VI.

Run ``python -m repro.bench <figure>`` (``fig6``, ``fig7``, ``fig8a`` ...
``fig9c``, or ``all``) to print the corresponding series.  The pytest
wrappers in ``benchmarks/`` drive the same code through pytest-benchmark.

Workload scale is controlled by the ``REPRO_BENCH_SCALE`` environment
variable: ``quick`` (default; minutes on a laptop) or ``paper`` (the paper's
repetition counts; pure CPython makes this substantially slower than the
authors' Java setup).
"""

from repro.bench.harness import (
    BenchScale,
    current_scale,
    measure_fig6,
    measure_fig7,
    measure_fig8a,
    measure_fig8b,
    measure_fig8c,
    measure_fig9a,
    measure_fig9b,
    measure_fig9c,
    render_table,
)

__all__ = [
    "BenchScale",
    "current_scale",
    "measure_fig6",
    "measure_fig7",
    "measure_fig8a",
    "measure_fig8b",
    "measure_fig8c",
    "measure_fig9a",
    "measure_fig9b",
    "measure_fig9c",
    "render_table",
]
