#!/usr/bin/env python3
"""Airport boarding reminder service (the paper's §I motivating scenario).

"A boarding reminder service in an airport can remind air passengers,
especially those far away from their gates, of their departures. ...
It is attractive to target instead only passengers far from their boarding
gates, and to appropriately direct them to their gates."

The terminal modelled here has a long concourse with gate lounges on both
sides, a landside check-in hall, and a one-way security checkpoint (a
unidirectional door — once airside, passengers cannot walk back through
security, exactly the situation the paper uses to motivate directed doors).

The service computes each checked-in passenger's indoor walking distance to
their gate and sends reminders only to those beyond a threshold, together
with turn-by-turn door directions.

Run:  python examples/airport_boarding.py
"""

import random

from repro import IndoorObject, Point, QueryEngine, Segment, rectangle
from repro.model import IndoorSpaceBuilder, PartitionKind

CHECKIN_HALL = 1
SECURITY = 2
CONCOURSE = 3
GATE_IDS = {f"A{i}": 10 + i for i in range(1, 7)}  # A1..A6

SECURITY_IN = 1  # landside -> security (one-way)
SECURITY_OUT = 2  # security -> concourse (one-way)

REMINDER_THRESHOLD_M = 60.0


def build_terminal():
    """Landside hall, one-way security, concourse, six gate lounges."""
    builder = IndoorSpaceBuilder()
    builder.add_partition(
        CHECKIN_HALL, rectangle(0, 0, 30, 20), PartitionKind.HALLWAY,
        name="check-in hall",
    )
    builder.add_partition(
        SECURITY, rectangle(30, 8, 38, 12), name="security checkpoint"
    )
    builder.add_partition(
        CONCOURSE, rectangle(38, 0, 158, 12), PartitionKind.HALLWAY,
        name="concourse",
    )
    # Gates A1/A3/A5 north of the concourse, A2/A4/A6 at the far side wall.
    gate_positions = {}
    for i, (gate, pid) in enumerate(sorted(GATE_IDS.items())):
        x0 = 44 + i * 18
        builder.add_partition(
            pid, rectangle(x0, 12, x0 + 14, 26), name=f"gate {gate} lounge"
        )
        door_mid = x0 + 7
        builder.add_door(
            10 + i,
            Segment(Point(door_mid - 1, 12), Point(door_mid + 1, 12)),
            connects=(pid, CONCOURSE),
            name=f"gate {gate} door",
        )
        gate_positions[gate] = Point(door_mid, 20)  # desk inside the lounge
    # Security is strictly one-way: hall -> security -> concourse.
    builder.add_door(
        SECURITY_IN, Segment(Point(30, 9), Point(30, 11)),
        connects=(CHECKIN_HALL, SECURITY), one_way=True, name="security in",
    )
    builder.add_door(
        SECURITY_OUT, Segment(Point(38, 9), Point(38, 11)),
        connects=(SECURITY, CONCOURSE), one_way=True, name="security out",
    )
    return builder.build(), gate_positions


def scatter_passengers(space, rng, count):
    """Passengers scattered across hall, concourse, and lounges."""
    passengers = []
    partitions = [CHECKIN_HALL, CONCOURSE] + list(GATE_IDS.values())
    gates = sorted(GATE_IDS)
    for pid in range(count):
        partition = space.partition(rng.choice(partitions))
        box = partition.polygon.bounding_box
        while True:
            pos = Point(
                rng.uniform(box.min_x, box.max_x),
                rng.uniform(box.min_y, box.max_y),
            )
            if partition.contains(pos):
                break
        gate = rng.choice(gates)
        passengers.append(IndoorObject(pid, pos, payload=f"gate {gate}"))
    return passengers


def main():
    rng = random.Random(7)
    space, gate_positions = build_terminal()
    engine = QueryEngine.for_space(space)
    passengers = scatter_passengers(space, rng, 14)
    engine.add_objects(passengers)

    print("== Boarding reminder service ==")
    print(f"terminal: {space.num_partitions} partitions, "
          f"{space.num_doors} doors (security is one-way)\n")

    # One-way consequence: a passenger at their gate is 'close' to the gate,
    # but the walking distance back to the check-in hall is infinite.
    sample = Point(100, 20)
    back = engine.distance(sample, Point(15, 10))
    print(f"airside -> landside distance: {back} "
          "(one-way security: unreachable)\n")

    reminded = 0
    for passenger in passengers:
        gate = passenger.payload.split()[-1]
        distance = engine.distance(passenger.position, gate_positions[gate])
        if distance > REMINDER_THRESHOLD_M:
            reminded += 1
            path = engine.shortest_path(
                passenger.position, gate_positions[gate]
            )
            doors = " -> ".join(
                space.door(d).name or f"d{d}" for d in path.doors
            )
            print(f"REMIND passenger {passenger.object_id:>2} "
                  f"({passenger.payload}): {distance:6.1f} m away"
                  f"   route: {doors or 'stay in lounge'}")
        else:
            print(f"  ok   passenger {passenger.object_id:>2} "
                  f"({passenger.payload}): {distance:6.1f} m")
    print(f"\nreminders sent: {reminded}/{len(passengers)} "
          f"(threshold {REMINDER_THRESHOLD_M:.0f} m) — the naive broadcast "
          "would have pinged everyone")

    # Live monitoring: a standing range query around gate A4 fires ENTER /
    # EXIT events as passengers move, so the gate agent sees arrivals
    # without polling.
    from repro.tracking import TrackingSession

    session = TrackingSession(engine)
    gate_a4 = gate_positions["A4"]
    watch = session.watch_range(gate_a4, radius=15.0)
    print(f"\n== Live gate-area monitor (15 m around gate A4) ==")
    print(f"initially at the gate: {watch.result}")

    # Passenger 6 (far away, flying from A4) walks to the gate; one of the
    # passengers already at the gate wanders off to the concourse shops.
    session.move_object(6, gate_a4.translated(2.0, -1.0))
    if watch.result:
        session.move_object(watch.result[-1], Point(60, 6))
    for event in watch.events:
        print(f"  event: passenger {event.object_id} {event.kind.value}s "
              "the gate area")
    print(f"now at the gate: {watch.result}")


if __name__ == "__main__":
    main()
