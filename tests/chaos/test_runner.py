"""The campaign engine end-to-end: determinism, the composed standard
campaign, and the silent-wrong-answer demonstration."""

import pytest

from repro.chaos import (
    CampaignConfig,
    CampaignReport,
    CampaignRunner,
    FaultAction,
    FaultPlan,
    IncidentClass,
)

CORRUPT_ONLY = FaultPlan([
    FaultAction(
        2, "corrupt_md2d", {"mode": "nan", "count": 4, "seed": 5}, label="x"
    ),
])


def _run(**overrides):
    config = CampaignConfig(**overrides)
    return CampaignRunner(config).run()


@pytest.fixture(scope="module")
def standard_report():
    return _run(seed=3, duration_ops=120)


class TestDeterminism:
    def test_same_config_reproduces_the_digest(self, standard_report):
        again = _run(seed=3, duration_ops=120)
        assert again.digest == standard_report.digest
        assert (
            [i.to_dict() for i in again.incidents]
            == [i.to_dict() for i in standard_report.incidents]
        )

    def test_different_seed_differs(self, standard_report):
        other = _run(seed=4, duration_ops=120)
        assert other.digest != standard_report.digest


class TestStandardCampaign:
    def test_passes_with_zero_silent_wrong_answers(self, standard_report):
        counts = standard_report.counts()
        assert standard_report.verdict == "PASS"
        assert counts["silent_wrong_answer"] == 0
        assert counts["unrecovered"] == 0
        assert counts["degraded_correctly"] > 0
        assert counts["recovered"] > 0

    def test_composed_scenario_left_its_footprints(self, standard_report):
        kinds = {i.kind for i in standard_report.incidents}
        # Breaker fallback windows, the injected crash, the quarantined
        # snapshot, the torn WAL tail, and the supervised restart all show
        # up in the incident trace of the standard plan.
        for expected in (
            "breaker_degraded",
            "injected_crash",
            "quarantined",
            "wal_torn_tail",
            "restarted",
        ):
            assert expected in kinds, expected

    def test_executes_the_whole_workload(self, standard_report):
        assert standard_report.ops_executed == 120
        assert standard_report.latency_ms  # per-rung percentiles recorded
        assert standard_report.breaker.get("state") is not None


class TestSilentWrongAnswer:
    def test_unguarded_corruption_fails_the_campaign(self):
        report = _run(
            seed=0,
            duration_ops=40,
            plan=CORRUPT_ONLY,
            integrity_gate=False,
            breaker=False,
        )
        assert report.verdict == "FAIL"
        assert not report.passed
        silent = [
            i for i in report.incidents
            if i.classification is IncidentClass.SILENT_WRONG_ANSWER
        ]
        assert silent
        assert all(i.kind == "oracle_violation" for i in silent)

    def test_guarded_corruption_degrades_instead(self):
        report = _run(seed=0, duration_ops=40, plan=CORRUPT_ONLY)
        assert report.verdict == "PASS"
        assert report.counts()["silent_wrong_answer"] == 0
        assert report.counts()["degraded_correctly"] > 0


class TestConfigAndReportRoundtrips:
    def test_config_dict_roundtrip(self):
        config = CampaignConfig(
            seed=9, duration_ops=50, plan=CORRUPT_ONLY, breaker=False
        )
        restored = CampaignConfig.from_dict(config.to_dict())
        assert restored.seed == 9
        assert restored.duration_ops == 50
        assert restored.breaker is False
        assert restored.resolved_plan().actions == CORRUPT_ONLY.actions

    def test_report_save_load_roundtrip(self, standard_report, tmp_path):
        path = standard_report.save(tmp_path / "report.json")
        loaded = CampaignReport.load(path)
        assert loaded.digest == standard_report.digest
        assert loaded.verdict == standard_report.verdict
        assert (
            [i.to_dict() for i in loaded.incidents]
            == [i.to_dict() for i in standard_report.incidents]
        )
        # The embedded config replays to the same digest.
        replayed = CampaignRunner(
            CampaignConfig.from_dict(loaded.config)
        ).run()
        assert replayed.digest == standard_report.digest

    def test_unknown_building_rejected(self):
        with pytest.raises(ValueError, match="unknown building"):
            _run(building="escher")
