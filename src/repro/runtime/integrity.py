"""Index-integrity diagnostics: is this framework safe to answer from?

:func:`check_index_integrity` verifies the §IV structures against their
invariants:

* **M_d2d finiteness** — no NaN entries (``inf`` is legal: it encodes
  unreachability between doors);
* **M_d2d non-negativity** — walking distances cannot be negative;
* **M_d2d zero diagonal** — a door is at distance 0 from itself;
* **M_d2d symmetry** — only enforced when the space has no one-way doors
  (directional doors legitimately make the matrix asymmetric, the paper's
  Figure-3 remark);
* **M_idx coherence** — every M_d2d row gathered in its M_idx scan order
  must be non-descending.  True by construction at build time, and broken
  by any in-place edit of M_d2d values, so this catches tampering that the
  symmetry check legitimately cannot see on plans with one-way doors;
* **DPT completeness** — every door of the space has a Door-to-Partition
  record;
* **epoch freshness** — the framework was built at the space's current
  topology epoch (optional, on by default).

The matrix checks apply to the dense backend only; a labels-backed
framework (:class:`repro.labels.index.LabeledDistanceIndex`) is audited
through its own :meth:`self_check` structural invariants instead, with
each violation reported as a ``labels-corrupt`` finding.  The DPT,
door-set, and epoch checks are backend-independent and always run.

Findings are reported as :class:`repro.model.validation.Issue` values so the
``repro doctor`` CLI can render floor-plan lint and index health in one
report.  :func:`require_index_integrity` converts error-severity findings
into :class:`~repro.exceptions.CorruptIndexError` /
:class:`~repro.exceptions.StaleIndexError` for programmatic use — the
resilient engine calls it before trusting the exact indexed rung.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import CorruptIndexError
from repro.index.framework import IndexFramework
from repro.model.validation import Issue, Severity

#: Absolute tolerance for the symmetry comparison (metres).
SYMMETRY_TOLERANCE = 1e-6


def check_index_integrity(
    framework: IndexFramework, include_stale: bool = True
) -> List[Issue]:
    """Run every index invariant check; errors first.

    Args:
        framework: the index structures to audit.
        include_stale: also flag an epoch mismatch between the framework and
            its space (disable when staleness is handled separately).
    """
    issues: List[Issue] = []
    space = framework.space

    if include_stale and not framework.is_fresh:
        issues.append(
            Issue(
                Severity.ERROR,
                "index-stale",
                f"indexes built at topology epoch {framework.built_epoch} "
                f"but the space is at epoch {space.topology_epoch}",
            )
        )

    if getattr(framework.distance_index, "kind", "matrix") == "labels":
        issues.extend(_labels_issues(framework))
    else:
        issues.extend(_matrix_issues(framework))

    missing = [
        d for d in space.topology.door_ids if not framework.dpt.has_record(d)
    ]
    if missing:
        issues.append(
            Issue(
                Severity.ERROR,
                "dpt-missing",
                f"DPT lacks records for doors {missing}; range/kNN expansion "
                "through them would fail",
            )
        )

    index_doors = set(framework.distance_index.door_ids)
    space_doors = set(space.topology.door_ids)
    if index_doors != space_doors:
        issues.append(
            Issue(
                Severity.ERROR,
                "md2d-door-mismatch",
                f"distance index covers doors {sorted(index_doors)} but the "
                f"space has {sorted(space_doors)}",
            )
        )

    issues.sort(key=lambda issue: (issue.severity is not Severity.ERROR,))
    return issues


def _labels_issues(framework: IndexFramework) -> List[Issue]:
    """Invariant findings for the 2-hop labels backend.

    The label arrays carry their own structural invariants (monotone
    indptrs, finite non-negative distances, in-range hubs, zero
    self-distance), audited by
    :meth:`repro.labels.index.LabeledDistanceIndex.self_check`; each
    violation surfaces as an error-severity ``labels-corrupt`` finding.
    """
    return [
        Issue(Severity.ERROR, "labels-corrupt", problem)
        for problem in framework.distance_index.self_check()
    ]


def _matrix_issues(framework: IndexFramework) -> List[Issue]:
    """Invariant findings for the dense M_d2d / M_idx backend."""
    issues: List[Issue] = []
    space = framework.space
    matrix = framework.distance_index.md2d
    nan_count = int(np.isnan(matrix).sum())
    if nan_count:
        issues.append(
            Issue(
                Severity.ERROR,
                "md2d-nan",
                f"M_d2d holds {nan_count} NaN entr"
                f"{'y' if nan_count == 1 else 'ies'}; every distance "
                "comparison against them is silently false",
            )
        )
    negative_count = int((matrix < 0).sum())
    if negative_count:
        issues.append(
            Issue(
                Severity.ERROR,
                "md2d-negative",
                f"M_d2d holds {negative_count} negative entr"
                f"{'y' if negative_count == 1 else 'ies'}; walking distances "
                "must be non-negative",
            )
        )
    diagonal = np.diagonal(matrix)
    bad_diagonal = int((~(diagonal == 0.0)).sum())
    if bad_diagonal:
        issues.append(
            Issue(
                Severity.ERROR,
                "md2d-diagonal",
                f"{bad_diagonal} diagonal entr"
                f"{'y is' if bad_diagonal == 1 else 'ies are'} non-zero; "
                "every door is at distance 0 from itself",
            )
        )

    if matrix.size:
        # M_idx was argsorted from M_d2d at build time, so gathering each
        # row in scan order must give a non-descending sequence.  Any
        # in-place value edit breaks this — even ones the symmetry check
        # cannot flag because the plan has one-way doors.  NaN diffs
        # compare false and are reported by the NaN check instead.
        gathered = np.take_along_axis(
            matrix, framework.distance_index.scan_order, axis=1
        )
        with np.errstate(invalid="ignore"):
            disorder = int(
                (np.diff(gathered, axis=1) < -SYMMETRY_TOLERANCE).sum()
            )
        if disorder:
            issues.append(
                Issue(
                    Severity.ERROR,
                    "midx-disorder",
                    f"M_idx scan order disagrees with M_d2d at {disorder} "
                    f"position{'' if disorder == 1 else 's'}; the sorted "
                    "early-termination scan would miss doors",
                )
            )

    has_one_way = any(
        space.topology.is_unidirectional(d) for d in space.topology.door_ids
    )
    if not has_one_way and matrix.size:
        transposed = matrix.T
        finite_both = np.isfinite(matrix) & np.isfinite(transposed)
        mismatch = finite_both & (
            np.abs(matrix - transposed) > SYMMETRY_TOLERANCE
        )
        # An inf on one side only is also asymmetric.
        mismatch |= np.isinf(matrix) != np.isinf(transposed)
        asymmetric = int(mismatch.sum())
        if asymmetric:
            issues.append(
                Issue(
                    Severity.ERROR,
                    "md2d-asymmetric",
                    f"M_d2d is asymmetric in {asymmetric} entr"
                    f"{'y' if asymmetric == 1 else 'ies'} although the plan "
                    "has no one-way doors",
                )
            )

    return issues


def require_index_integrity(
    framework: IndexFramework, include_stale: bool = False
) -> None:
    """Raise :class:`CorruptIndexError` when any error-severity invariant
    fails (staleness is reported via ``check_fresh`` separately by default).
    """
    if include_stale:
        framework.check_fresh()
    errors = [
        issue
        for issue in check_index_integrity(framework, include_stale=False)
        if issue.severity is Severity.ERROR
    ]
    if errors:
        raise CorruptIndexError(
            "index integrity check failed: "
            + "; ".join(f"{issue.code}: {issue.message}" for issue in errors)
        )
