"""Simple polygons and axis-aligned bounding boxes.

Indoor partitions (rooms, hallways, staircases) and obstacles are modelled as
simple polygons.  The library only needs containment tests, edges, areas, and
bounding boxes — no boolean operations — so the implementation favours clarity
and robustness over generality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import GeometryError
from repro.geometry.primitives import EPSILON, Point, Segment


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle, used by the R-tree and the grid index."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(f"inverted bounding box: {self}")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, p: Point, tol: float = EPSILON) -> bool:
        """True when ``p``'s planar coordinates fall inside (or on) the box."""
        return (
            self.min_x - tol <= p.x <= self.max_x + tol
            and self.min_y - tol <= p.y <= self.max_y + tol
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the two boxes share at least a boundary point."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """The smallest box enclosing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def enlargement(self, other: "BoundingBox") -> float:
        """Area increase needed for this box to also cover ``other``."""
        return self.union(other).area - self.area

    def min_distance_to_point(self, p: Point) -> float:
        """Smallest Euclidean distance from ``p`` to any point of the box."""
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, p: Point) -> float:
        """Largest Euclidean distance from ``p`` to any point of the box."""
        dx = max(abs(p.x - self.min_x), abs(p.x - self.max_x))
        dy = max(abs(p.y - self.min_y), abs(p.y - self.max_y))
        return math.hypot(dx, dy)


class Polygon:
    """A simple (non-self-intersecting) polygon on a single floor.

    Vertices may be given in either winding order; they are normalised to
    counter-clockwise.  The polygon is closed implicitly (the last vertex
    connects back to the first).
    """

    def __init__(self, vertices: Sequence[Point]) -> None:
        if len(vertices) < 3:
            raise GeometryError("a polygon needs at least three vertices")
        floors = {v.floor for v in vertices}
        if len(floors) != 1:
            raise GeometryError("all polygon vertices must share a floor")
        if len({(v.x, v.y) for v in vertices}) != len(vertices):
            raise GeometryError("polygon has duplicate vertices")
        self._vertices: Tuple[Point, ...] = tuple(vertices)
        if self.signed_area() < 0:
            self._vertices = tuple(reversed(self._vertices))
        if abs(self.signed_area()) <= EPSILON:
            raise GeometryError("degenerate (zero-area) polygon")

    @property
    def vertices(self) -> Tuple[Point, ...]:
        """The vertices in counter-clockwise order."""
        return self._vertices

    @property
    def floor(self) -> int:
        """The floor every vertex lies on."""
        return self._vertices[0].floor

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._vertices)

    def signed_area(self) -> float:
        """Shoelace signed area (positive for counter-clockwise rings)."""
        total = 0.0
        n = len(self._vertices)
        for i, a in enumerate(self._vertices):
            b = self._vertices[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return total / 2.0

    @property
    def area(self) -> float:
        """Unsigned area of the polygon."""
        return abs(self.signed_area())

    @property
    def centroid(self) -> Point:
        """Area centroid of the polygon."""
        a = self.signed_area()
        cx = cy = 0.0
        n = len(self._vertices)
        for i, p in enumerate(self._vertices):
            q = self._vertices[(i + 1) % n]
            cross = p.x * q.y - q.x * p.y
            cx += (p.x + q.x) * cross
            cy += (p.y + q.y) * cross
        return Point(cx / (6.0 * a), cy / (6.0 * a), self.floor)

    def is_convex(self) -> bool:
        """True when every interior angle is at most 180 degrees.

        Convex, obstacle-free partitions admit straight-line intra-partition
        distances, which the grid index exploits as a fast path.
        """
        n = len(self._vertices)
        for i in range(n):
            a = self._vertices[i]
            b = self._vertices[(i + 1) % n]
            c = self._vertices[(i + 2) % n]
            cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
            if cross < -EPSILON:
                return False
        return True

    def edges(self) -> List[Segment]:
        """The boundary segments, counter-clockwise."""
        n = len(self._vertices)
        return [
            Segment(self._vertices[i], self._vertices[(i + 1) % n]) for i in range(n)
        ]

    @property
    def bounding_box(self) -> BoundingBox:
        """The smallest axis-aligned box containing the polygon."""
        xs = [v.x for v in self._vertices]
        ys = [v.y for v in self._vertices]
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    def contains_point(self, p: Point, tol: float = EPSILON) -> bool:
        """Boundary-inclusive point-in-polygon test (ray casting).

        Points on another floor are never contained.
        """
        if p.floor != self.floor:
            return False
        if not self.bounding_box.contains_point(p, tol):
            return False
        for edge in self.edges():
            if edge.contains_point(p, tol):
                return True
        inside = False
        n = len(self._vertices)
        for i in range(n):
            a = self._vertices[i]
            b = self._vertices[(i + 1) % n]
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def strictly_contains_point(self, p: Point, tol: float = EPSILON) -> bool:
        """True when ``p`` is inside the polygon but not on its boundary."""
        if not self.contains_point(p, tol):
            return False
        return not any(edge.contains_point(p, tol) for edge in self.edges())

    def segment_crosses_boundary(self, seg: Segment) -> bool:
        """True when ``seg`` properly crosses any boundary edge."""
        return any(seg.properly_intersects(edge) for edge in self.edges())

    def contains_segment(self, seg: Segment, samples: int = 8) -> bool:
        """True when the whole segment stays inside (or on) the polygon.

        Uses boundary-crossing plus interior sampling; exact for convex
        polygons and reliable for the rectilinear partitions used throughout
        the library.
        """
        if seg.floor != self.floor:
            return False
        if not (self.contains_point(seg.start) and self.contains_point(seg.end)):
            return False
        if self.segment_crosses_boundary(seg):
            return False
        for i in range(1, samples):
            t = i / samples
            p = Point(
                seg.start.x + t * (seg.end.x - seg.start.x),
                seg.start.y + t * (seg.end.y - seg.start.y),
                seg.floor,
            )
            if not self.contains_point(p):
                return False
        return True

    def on_floor(self, floor: int) -> "Polygon":
        """A copy of the polygon with every vertex moved to ``floor``."""
        return Polygon([v.on_floor(floor) for v in self._vertices])

    def translated(self, dx: float, dy: float) -> "Polygon":
        """A copy of the polygon shifted by ``(dx, dy)``."""
        return Polygon([v.translated(dx, dy) for v in self._vertices])

    def __repr__(self) -> str:
        pts = ", ".join(str(v) for v in self._vertices)
        return f"Polygon([{pts}])"


def rectangle(
    min_x: float, min_y: float, max_x: float, max_y: float, floor: int = 0
) -> Polygon:
    """Convenience constructor for an axis-aligned rectangular polygon."""
    if min_x >= max_x or min_y >= max_y:
        raise GeometryError(
            f"rectangle needs min < max, got x: [{min_x}, {max_x}], "
            f"y: [{min_y}, {max_y}]"
        )
    return Polygon(
        [
            Point(min_x, min_y, floor),
            Point(max_x, min_y, floor),
            Point(max_x, max_y, floor),
            Point(min_x, max_y, floor),
        ]
    )


def convex_hull(points: Iterable[Point]) -> List[Point]:
    """Andrew's monotone-chain convex hull (counter-clockwise, no duplicates).

    Used by tests and by the synthetic generator when deriving partition
    outlines from sampled points.
    """
    unique = sorted({(p.x, p.y, p.floor) for p in points})
    pts = [Point(x, y, f) for x, y, f in unique]
    if len(pts) <= 2:
        return pts

    def cross(o: Point, a: Point, b: Point) -> float:
        return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)

    lower: List[Point] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= EPSILON:
            lower.pop()
        lower.append(p)
    upper: List[Point] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= EPSILON:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]
