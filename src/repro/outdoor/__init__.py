"""Integrated indoor-outdoor distance model (paper §VII, future work).

"Yet another relevant possibility is to propose an integrated distance model
for both outdoor and indoor spaces ... the shortest distance path from an
outdoor/indoor position to another outdoor/indoor position may involve
outdoor and indoor spaces in an interweaved fashion.  Consequently, simply
applying an outdoor model followed by an indoor model, or the other way
around, does not work because it disables the interweaving."

:class:`RoadNetwork` is a conventional weighted road graph;
:class:`IntegratedSpace` joins it to an indoor space by *anchoring* exterior
doors to road nodes and runs one Dijkstra over the union graph — so routes
are free to leave a building, traverse roads, and re-enter (possibly another
building within the same model), which the naive composition cannot do.
"""

from repro.outdoor.network import RoadNetwork
from repro.outdoor.integrated import IntegratedSpace, OutdoorLocation

__all__ = ["RoadNetwork", "IntegratedSpace", "OutdoorLocation"]
