"""Tests for the composite distance-aware queries (§VII compositions)."""

import math
import random

import pytest

from repro.distance import pt2pt_distance_refined
from repro.exceptions import QueryError
from repro.geometry import Point, Segment, rectangle
from repro.index import IndexFramework, IndoorObject
from repro.model import IndoorSpaceBuilder
from repro.queries import (
    aggregate_nn,
    closest_pair,
    distance_join,
    distances_to_all_objects,
    range_query,
    range_query_with_distances,
)
from tests.queries.conftest import random_point_in


class TestRangeWithDistances:
    def test_same_ids_as_plain_range(self, populated_figure1):
        framework = populated_figure1
        rng = random.Random(31)
        for _ in range(6):
            q = random_point_in(framework.space, rng)
            radius = rng.uniform(2.0, 20.0)
            plain = range_query(framework, q, radius)
            with_distances = range_query_with_distances(framework, q, radius)
            assert sorted(oid for oid, _ in with_distances) == plain

    def test_distances_are_exact_pt2pt(self, populated_figure1):
        framework = populated_figure1
        rng = random.Random(33)
        q = random_point_in(framework.space, rng)
        for object_id, distance in range_query_with_distances(framework, q, 15.0):
            obj = framework.objects.get(object_id)
            assert distance == pytest.approx(
                pt2pt_distance_refined(framework.space, q, obj.position)
            )

    def test_sorted_by_distance(self, populated_figure1):
        rng = random.Random(35)
        q = random_point_in(populated_figure1.space, rng)
        results = range_query_with_distances(populated_figure1, q, 20.0)
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_negative_radius_raises(self, populated_figure1):
        with pytest.raises(QueryError):
            range_query_with_distances(populated_figure1, Point(5, 5), -1.0)

    def test_no_index_variant_matches(self, populated_figure1):
        rng = random.Random(36)
        q = random_point_in(populated_figure1.space, rng)
        assert range_query_with_distances(
            populated_figure1, q, 12.0, use_index=True
        ) == pytest.approx(
            range_query_with_distances(populated_figure1, q, 12.0, use_index=False)
        )


class TestDistancesToAll:
    def test_covers_every_reachable_object(self, populated_figure1):
        framework = populated_figure1
        rng = random.Random(37)
        q = random_point_in(framework.space, rng)
        distances = distances_to_all_objects(framework, q)
        assert len(distances) == len(framework.objects)
        for obj in framework.objects:
            assert distances[obj.object_id] == pytest.approx(
                pt2pt_distance_refined(framework.space, q, obj.position)
            )

    def test_excludes_unreachable_objects(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(2, 1), one_way=True
        )
        framework = IndexFramework.build(
            builder.build(), [IndoorObject(1, Point(12, 2))]
        )
        assert distances_to_all_objects(framework, Point(5, 5)) == {}


class TestDistanceJoin:
    @pytest.fixture
    def small_framework(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        builder.add_door(1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2))
        objects = [
            IndoorObject(1, Point(1, 5)),
            IndoorObject(2, Point(3, 5)),
            IndoorObject(3, Point(11, 5)),
        ]
        return IndexFramework.build(builder.build(), objects)

    def test_join_pairs(self, small_framework):
        pairs = distance_join(small_framework, 2.5)
        assert pairs == [(1, 2, pytest.approx(2.0))]

    def test_join_through_door(self, small_framework):
        pairs = distance_join(small_framework, 9.0)
        ids = {(a, b) for a, b, _ in pairs}
        assert (2, 3) in ids  # 3->2 is 8 m through the door
        assert (1, 2) in ids

    def test_each_pair_once(self, populated_figure1):
        pairs = distance_join(populated_figure1, 5.0)
        keys = [(a, b) for a, b, _ in pairs]
        assert len(keys) == len(set(keys))
        assert all(a < b for a, b in keys)

    def test_join_matches_brute_force(self, small_framework):
        space = small_framework.space
        objects = list(small_framework.objects)
        expected = set()
        for i, a in enumerate(objects):
            for b in objects[i + 1 :]:
                if pt2pt_distance_refined(space, a.position, b.position) <= 9.0:
                    expected.add(tuple(sorted((a.object_id, b.object_id))))
        got = {(a, b) for a, b, _ in distance_join(small_framework, 9.0)}
        assert got == expected

    def test_negative_radius_raises(self, small_framework):
        with pytest.raises(QueryError):
            distance_join(small_framework, -1.0)


class TestAggregateNN:
    @pytest.fixture
    def meeting_framework(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        builder.add_partition(3, rectangle(20, 0, 30, 10))
        builder.add_door(1, Segment(Point(10, 4), Point(10, 6)), connects=(1, 2))
        builder.add_door(2, Segment(Point(20, 4), Point(20, 6)), connects=(2, 3))
        # The west and east objects sit off the door axis, so reaching them
        # from the far member costs a detour — otherwise every object on the
        # straight line between two members ties on the sum aggregate.
        objects = [
            IndoorObject(1, Point(5, 1)),     # west room, off-axis
            IndoorObject(2, Point(15, 5)),    # middle room, on the axis
            IndoorObject(3, Point(25, 1)),    # east room, off-axis
        ]
        return IndexFramework.build(builder.build(), objects)

    def test_sum_aggregate_picks_the_middle(self, meeting_framework):
        members = [Point(2, 5), Point(28, 5)]
        (winner, score) = aggregate_nn(meeting_framework, members, k=1)[0]
        assert winner == 2
        assert score == pytest.approx(13.0 + 13.0)

    def test_max_aggregate(self, meeting_framework):
        members = [Point(2, 5), Point(28, 5)]
        (winner, score) = aggregate_nn(
            meeting_framework, members, k=1, agg="max"
        )[0]
        assert winner == 2
        assert score == pytest.approx(13.0)

    def test_k_results_sorted(self, meeting_framework):
        results = aggregate_nn(meeting_framework, [Point(2, 5)], k=3)
        scores = [s for _, s in results]
        assert scores == sorted(scores)
        assert len(results) == 3

    def test_validation(self, meeting_framework):
        with pytest.raises(QueryError):
            aggregate_nn(meeting_framework, [], k=1)
        with pytest.raises(QueryError):
            aggregate_nn(meeting_framework, [Point(2, 5)], k=0)
        with pytest.raises(QueryError):
            aggregate_nn(meeting_framework, [Point(2, 5)], agg="median")

    def test_matches_brute_force(self, populated_figure1):
        framework = populated_figure1
        rng = random.Random(39)
        members = [random_point_in(framework.space, rng) for _ in range(3)]
        (winner, score) = aggregate_nn(framework, members, k=1)[0]
        space = framework.space
        best = min(
            (
                sum(
                    pt2pt_distance_refined(space, m, obj.position)
                    for m in members
                ),
                obj.object_id,
            )
            for obj in framework.objects
        )
        assert score == pytest.approx(best[0])


class TestClosestPair:
    def test_obvious_pair(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        objects = [
            IndoorObject(1, Point(1, 1)),
            IndoorObject(2, Point(1.5, 1)),
            IndoorObject(3, Point(9, 9)),
        ]
        framework = IndexFramework.build(builder.build(), objects)
        assert closest_pair(framework) == (1, 2, pytest.approx(0.5))

    def test_fewer_than_two_objects(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        framework = IndexFramework.build(
            builder.build(), [IndoorObject(1, Point(1, 1))]
        )
        assert closest_pair(framework) is None

    def test_matches_brute_force(self, populated_figure1):
        framework = populated_figure1
        space = framework.space
        objects = list(framework.objects)
        best = math.inf
        for i, a in enumerate(objects):
            for b in objects[i + 1 :]:
                forward = pt2pt_distance_refined(space, a.position, b.position)
                backward = pt2pt_distance_refined(space, b.position, a.position)
                best = min(best, forward, backward)
        pair = closest_pair(framework)
        assert pair is not None
        assert pair[2] == pytest.approx(best)
