"""Epoch-fenced live reconfiguration: rolling rounds, torn rounds,
planned restarts, and the fencing invariant.

Every test drives real topology mutations through the
:class:`~repro.shard.reconfig.ReconfigRecorder` against a forked
3-shard fleet over Figure 1, then demands the post-round fleet answer
bit-identically to a :class:`~repro.queries.engine.QueryEngine` built
fresh over the mutated space — the protocol's whole contract.
"""

import random

import pytest

from repro.exceptions import InjectedCrashError, ServiceUnavailableError
from repro.geometry import Point, Segment
from repro.index import IndexFramework, IndoorObject
from repro.model.figure1 import build_figure1
from repro.queries import QueryEngine
from repro.runtime import crashpoints
from repro.runtime.ladder import QualityLevel
from repro.serve.requests import QueryRequest

from tests.queries.conftest import random_point_in
from tests.shard.conftest import make_service

#: Figure 1's d24 (rooms 21-22, which stay connected through d21/d22).
DOOR = 24
DOOR_GEOMETRY = Segment(Point(16.0, 1.6, 0), Point(16.0, 2.4, 0))
DOOR_CONNECTS = (21, 22)


@pytest.fixture(autouse=True)
def _disarm():
    yield
    crashpoints.disarm_all()


@pytest.fixture
def fresh_framework():
    """Function-scoped twin of ``shard_framework_fixture``: reconfig
    rounds mutate the space *in place*, so sharing one framework across
    tests would leak epochs and missing doors between them."""
    space = build_figure1()
    rng = random.Random(1311)
    indoor_ids = [p for p in space.partition_ids if p != 0]
    objects = [
        IndoorObject(i, random_point_in(space, rng, indoor_ids))
        for i in range(48)
    ]
    return IndexFramework.build(space, objects)


def _fresh_engine(service):
    """A pristine engine over the fleet's current (mutated) space."""
    framework = service.framework
    return QueryEngine.for_space(framework.space, list(framework.objects))


def _assert_bit_identical(service, positions, *, epoch):
    engine = _fresh_engine(service)
    for index, position in enumerate(positions):
        range_resp = service.execute(QueryRequest.range_query(position, 8.0))
        assert range_resp.quality is QualityLevel.EXACT_INDEXED
        assert range_resp.served_epoch == epoch
        assert set(range_resp.reply_epochs) <= {epoch}
        assert range_resp.value == engine.range_query(position, 8.0)

        knn_resp = service.execute(QueryRequest.knn(position, k=5))
        assert knn_resp.quality is QualityLevel.EXACT_INDEXED
        assert knn_resp.value == engine.knn(position, k=5)

        target = positions[(index + 1) % len(positions)]
        pt_resp = service.execute(QueryRequest.pt2pt(position, target))
        assert pt_resp.quality is QualityLevel.EXACT_INDEXED
        assert float(pt_resp.value) == engine.distance(position, target)


class TestRollingRounds:
    def test_wal_recorder_requires_started_service(
        self, fresh_framework
    ):
        service = make_service(fresh_framework)
        with pytest.raises(ServiceUnavailableError):
            service.wal_recorder()

    def test_remove_door_rolls_fleet_to_new_epoch(
        self, fresh_framework, shard_positions
    ):
        service = make_service(fresh_framework, cache_capacity=0)
        service.start(wait=True)
        try:
            base_epoch = service.framework.space.topology_epoch
            service.wal_recorder().remove_door(DOOR)
            target = base_epoch + 1
            assert service.framework.space.topology_epoch == target

            payload = service.readiness()
            reconfig = payload["reconfig"]
            assert reconfig["committed_epoch"] == target
            assert reconfig["fence_epoch"] == target
            assert reconfig["rounds"] == 1
            assert reconfig["prepares"] == 3
            assert reconfig["commits"] == 3
            assert reconfig["prepare_failures"] == 0
            assert reconfig["commit_failures"] == 0
            assert reconfig["pending_records"] == 0
            assert set(reconfig["epoch_skew"].values()) == {0}
            for detail in payload["supervision"]["shards"].values():
                assert detail["topology_epoch"] == target

            _assert_bit_identical(service, shard_positions, epoch=target)
        finally:
            service.shutdown()

    def test_remove_then_readd_converges_and_stays_exact(
        self, fresh_framework, shard_positions
    ):
        service = make_service(fresh_framework, cache_capacity=0)
        service.start(wait=True)
        try:
            base_epoch = service.framework.space.topology_epoch
            recorder = service.wal_recorder()
            recorder.remove_door(DOOR)
            recorder.add_door(
                DOOR, DOOR_GEOMETRY, connects=DOOR_CONNECTS
            )
            target = base_epoch + 2
            assert service.framework.space.topology_epoch == target
            assert service.readiness()["reconfig"]["rounds"] == 2
            # Topologically back to the original building, two epochs on.
            _assert_bit_identical(service, shard_positions, epoch=target)
        finally:
            service.shutdown()

    def test_labels_backend_repairs_and_matches_fresh_engine(
        self, fresh_framework, shard_positions
    ):
        from repro.index import IndexFramework

        framework = IndexFramework.build(
            fresh_framework.space,
            list(fresh_framework.objects),
            backend="labels",
        )
        service = make_service(framework, cache_capacity=0)
        service.start(wait=True)
        try:
            # remove_door is the labels rebuild path; the re-add is the
            # incremental-repair path.  Both must land bit-identical.
            recorder = service.wal_recorder()
            recorder.remove_door(DOOR)
            recorder.add_door(DOOR, DOOR_GEOMETRY, connects=DOOR_CONNECTS)
            target = framework.space.topology_epoch
            assert service.framework.build_config["backend"] == "labels"
            _assert_bit_identical(service, shard_positions, epoch=target)
        finally:
            service.shutdown()

    def test_failed_mutation_aborts_cleanly(
        self, fresh_framework, shard_positions
    ):
        service = make_service(fresh_framework, cache_capacity=0)
        service.start(wait=True)
        try:
            base_epoch = service.framework.space.topology_epoch
            with pytest.raises(Exception):
                service.wal_recorder().remove_door(99999)  # no such door
            reconfig = service.readiness()["reconfig"]
            assert reconfig["aborts"] == 1
            assert reconfig["rounds"] == 0
            assert reconfig["committed_epoch"] == base_epoch
            # The abort re-enabled pruning and left serving untouched.
            _assert_bit_identical(service, shard_positions, epoch=base_epoch)
        finally:
            service.shutdown()


class TestTornRounds:
    def test_prepare_torn_heals_on_await_healthy(
        self, fresh_framework, shard_positions
    ):
        service = make_service(fresh_framework, cache_capacity=0)
        service.start(wait=True)
        try:
            base_epoch = service.framework.space.topology_epoch
            target = base_epoch + 1
            crashpoints.arm("reconfig.prepare.torn")
            with pytest.raises(InjectedCrashError):
                service.wal_recorder().remove_door(DOOR)
            reconfig = service.readiness()["reconfig"]
            # Fence up, nothing prepared, nothing committed.
            assert reconfig["fence_epoch"] == target
            assert reconfig["committed_epoch"] == base_epoch
            assert reconfig["prepares"] == 0

            assert service.await_healthy(30.0)
            reconfig = service.readiness()["reconfig"]
            assert reconfig["committed_epoch"] == target
            assert reconfig["resumes"] == 1
            _assert_bit_identical(service, shard_positions, epoch=target)
        finally:
            service.shutdown()

    def test_commit_torn_never_mixes_epochs_then_heals(
        self, fresh_framework, shard_positions
    ):
        service = make_service(fresh_framework, cache_capacity=0)
        service.start(wait=True)
        try:
            base_epoch = service.framework.space.topology_epoch
            target = base_epoch + 1
            crashpoints.arm("reconfig.commit.torn")
            with pytest.raises(InjectedCrashError):
                service.wal_recorder().remove_door(DOOR)
            reconfig = service.readiness()["reconfig"]
            assert reconfig["fence_epoch"] == target
            assert reconfig["committed_epoch"] == base_epoch
            assert reconfig["commits"] == 1  # exactly one flipped

            # Mid-tear the fleet straddles two epochs; every merge must
            # still be single-epoch, and nothing may serve exact below
            # the fence.
            for position in shard_positions:
                response = service.execute(
                    QueryRequest.range_query(position, 8.0)
                )
                assert len(set(response.reply_epochs)) <= 1
                assert response.served_epoch >= target
                if response.quality is QualityLevel.EXACT_INDEXED:
                    assert set(response.reply_epochs) == {target}

            assert service.await_healthy(30.0)
            reconfig = service.readiness()["reconfig"]
            assert reconfig["committed_epoch"] == target
            assert reconfig["resumes"] == 1
            _assert_bit_identical(service, shard_positions, epoch=target)
        finally:
            service.shutdown()

    def test_worker_killed_between_prepare_and_commit_rejoins(
        self, fresh_framework, shard_positions
    ):
        service = make_service(fresh_framework, cache_capacity=0)
        service.start(wait=True)
        try:
            base_epoch = service.framework.space.topology_epoch
            target = base_epoch + 1
            crashpoints.arm("reconfig.kill_after_prepare")
            service.wal_recorder().remove_door(DOOR)
            reconfig = service.readiness()["reconfig"]
            assert reconfig["committed_epoch"] == target
            # The killed worker either missed its commit or respawned in
            # time; both leave the round committed and the fleet healing.
            assert service.await_healthy(30.0)
            for detail in (
                service.readiness()["supervision"]["shards"].values()
            ):
                assert detail["topology_epoch"] == target
            _assert_bit_identical(service, shard_positions, epoch=target)
        finally:
            service.shutdown()


class TestEpochMismatchRestart:
    def test_stale_rejoin_is_a_planned_restart_onto_rebuild_rung(
        self, fresh_framework, shard_positions
    ):
        """Regression: a worker rejoining at a stale epoch must be
        restarted as a *planned* transition (no fault-budget burn) and
        come back at the spec's epoch via the rebuild rung."""
        import dataclasses
        import time

        import repro.shard.supervisor as supervisor_mod
        from repro.shard.worker import shard_worker_main as real_main

        # restart_budget=2 so an unplanned classification of the repeated
        # stale rejoins would exhaust the budget and fail await_healthy.
        service = make_service(
            fresh_framework, cache_capacity=0, restart_budget=2
        )
        service.start(wait=True)
        try:
            service.wal_recorder().remove_door(DOOR)
            target = service.framework.space.topology_epoch

            def stale_main(spec, conn):
                # Shard 0 comes up numbering itself one epoch behind the
                # spec it was handed — the stale private state a worker
                # crashed mid-round might rejoin from.  Runs in the
                # forked child, so the parent-side patch below reaches it.
                if spec.shard_id == 0:
                    spec = dataclasses.replace(
                        spec,
                        topology_epoch=spec.topology_epoch - 1,
                        built_epoch=spec.built_epoch - 1,
                    )
                real_main(spec, conn)

            supervisor_mod.shard_worker_main = stale_main
            try:
                service.kill_shard(0, cold=True)
                deadline = time.monotonic() + 30.0
                seen = False
                while time.monotonic() < deadline and not seen:
                    events = service.readiness()["supervision"]["events"]
                    seen = any(
                        event["event"] == "epoch_mismatch"
                        for event in events
                    )
                    time.sleep(0.05)
                assert seen, "supervisor never recorded the epoch_mismatch"
            finally:
                # Heal: the next respawn materialises honestly.
                supervisor_mod.shard_worker_main = real_main

            assert service.await_healthy(30.0)
            shards = service.readiness()["supervision"]["shards"]
            assert shards["0"]["state"] == "ready"
            assert shards["0"]["topology_epoch"] == target
            assert (
                service.readiness()["reconfig"]["planned_restarts"] >= 1
            )
            _assert_bit_identical(service, shard_positions, epoch=target)
        finally:
            service.shutdown()


class TestStoreRecovery:
    def test_recovery_replays_reconfig_mutation_from_wal(
        self, fresh_framework, shard_positions, tmp_path
    ):
        """A mutation rolled through the fleet is durable: a brand-new
        service recovered from the same store starts at the mutated
        epoch (the supervisor-side WAL append happened before any
        worker saw the delta)."""
        from repro.persist.recovery import SnapshotStore

        store = SnapshotStore(tmp_path / "store")
        store.save(fresh_framework)
        base_epoch = fresh_framework.space.topology_epoch
        service = make_service(
            None, store=store, cache_capacity=0,
            snapshot_on_shutdown=False,
        )
        service.start(wait=True)
        try:
            service.wal_recorder().remove_door(DOOR)
            assert (
                service.framework.space.topology_epoch == base_epoch + 1
            )
        finally:
            service.shutdown()

        recovered = make_service(
            None, store=store, cache_capacity=0,
            snapshot_on_shutdown=False,
        )
        recovered.start(wait=True)
        try:
            space = recovered.framework.space
            assert space.topology_epoch == base_epoch + 1
            assert DOOR not in space.door_ids
            _assert_bit_identical(
                recovered, shard_positions, epoch=base_epoch + 1
            )
        finally:
            recovered.shutdown()
