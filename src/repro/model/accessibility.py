"""The accessibility base graph G_accs (paper §III-B).

G_accs = (V, E_a, L): partitions are vertices, every permitted movement
direction of a door is a labelled, directed edge, and labels are door ids.
Several doors between the same two partitions yield parallel edges, and a
bidirectional door yields two anti-parallel edges — both exactly as the paper
requires.

The graph is a thin, immutable view over :class:`~repro.model.topology.Topology`;
it adds reachability utilities used by model validation and by tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.model.topology import Topology


@dataclass(frozen=True)
class AccessEdge:
    """One labelled, directed edge of G_accs: movement from ``source`` to
    ``target`` through door ``door_id``."""

    source: int
    target: int
    door_id: int


class AccessibilityGraph:
    """Immutable directed multigraph of partition connectivity."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._edges: Tuple[AccessEdge, ...] = tuple(
            AccessEdge(source, target, door_id)
            for source, target, door_id in topology.directed_edges()
        )
        self._out: Dict[int, List[AccessEdge]] = {
            p: [] for p in topology.partition_ids
        }
        self._in: Dict[int, List[AccessEdge]] = {p: [] for p in topology.partition_ids}
        for edge in self._edges:
            self._out[edge.source].append(edge)
            self._in[edge.target].append(edge)

    @property
    def vertices(self) -> Tuple[int, ...]:
        """V: all partition ids, ascending."""
        return self._topology.partition_ids

    @property
    def edges(self) -> Tuple[AccessEdge, ...]:
        """E_a: all labelled directed edges."""
        return self._edges

    @property
    def labels(self) -> Tuple[int, ...]:
        """L: all door ids, ascending."""
        return self._topology.door_ids

    def out_edges(self, partition_id: int) -> Tuple[AccessEdge, ...]:
        """Edges leaving ``partition_id``."""
        return tuple(self._out.get(partition_id, ()))

    def in_edges(self, partition_id: int) -> Tuple[AccessEdge, ...]:
        """Edges entering ``partition_id``."""
        return tuple(self._in.get(partition_id, ()))

    def neighbors(self, partition_id: int) -> FrozenSet[int]:
        """Partitions directly reachable from ``partition_id``."""
        return frozenset(edge.target for edge in self._out.get(partition_id, ()))

    def reachable_from(self, partition_id: int) -> FrozenSet[int]:
        """All partitions reachable from ``partition_id`` (including itself),
        respecting door directionality."""
        seen: Set[int] = {partition_id}
        queue = deque([partition_id])
        while queue:
            current = queue.popleft()
            for edge in self._out.get(current, ()):
                if edge.target not in seen:
                    seen.add(edge.target)
                    queue.append(edge.target)
        return frozenset(seen)

    def is_strongly_connected(self) -> bool:
        """True when every partition can reach every other partition.

        Useful as a sanity check on floor plans: a building where some room
        cannot be left (or entered) usually indicates a modelling mistake —
        though intentionally one-way spaces (e.g. airport security) can make
        this legitimately false.
        """
        vertices = self.vertices
        if not vertices:
            return True
        first = vertices[0]
        if len(self.reachable_from(first)) != len(vertices):
            return False
        # Reverse reachability via in-edges.
        seen: Set[int] = {first}
        queue = deque([first])
        while queue:
            current = queue.popleft()
            for edge in self._in.get(current, ()):
                if edge.source not in seen:
                    seen.add(edge.source)
                    queue.append(edge.source)
        return len(seen) == len(vertices)

    def door_hop_distance(self, source: int, target: int) -> float:
        """Fewest doors crossed to go from partition ``source`` to ``target``.

        This is the "length" notion of the lattice-based baseline model
        [Li & Lee 2008] that the paper argues against; exposed here so the
        baseline comparison (and the motivating Figure-1 example) can be
        reproduced.  Returns ``inf`` when unreachable.
        """
        if source == target:
            return 0.0
        seen: Set[int] = {source}
        queue = deque([(source, 0)])
        while queue:
            current, hops = queue.popleft()
            for edge in self._out.get(current, ()):
                if edge.target == target:
                    return float(hops + 1)
                if edge.target not in seen:
                    seen.add(edge.target)
                    queue.append((edge.target, hops + 1))
        return float("inf")
