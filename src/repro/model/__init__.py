"""The distance-aware indoor space model (paper §III).

The model layer turns a floor plan into the structures the paper builds on:

* :class:`~repro.model.entities.Partition` and
  :class:`~repro.model.entities.Door` — the indoor entities;
* :class:`~repro.model.topology.Topology` — the D2P / P2D mappings of §III-A;
* :class:`~repro.model.accessibility.AccessibilityGraph` — G_accs of §III-B;
* :class:`~repro.model.distance_graph.DistanceAwareGraph` — G_dist of §III-C,
  exposing f_dv and f_d2d;
* :class:`~repro.model.builder.IndoorSpace` /
  :class:`~repro.model.builder.IndoorSpaceBuilder` — the construction API;
* :mod:`repro.model.figure1` — the paper's running example floor plan.
"""

from repro.model.entities import Door, Partition, PartitionKind
from repro.model.topology import Topology
from repro.model.accessibility import AccessibilityGraph
from repro.model.distance_graph import DistanceAwareGraph
from repro.model.builder import IndoorSpace, IndoorSpaceBuilder

__all__ = [
    "Door",
    "Partition",
    "PartitionKind",
    "Topology",
    "AccessibilityGraph",
    "DistanceAwareGraph",
    "IndoorSpace",
    "IndoorSpaceBuilder",
]
