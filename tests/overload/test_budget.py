"""Retry-budget token bucket and budget-gated retry-loop tests."""

import pytest

from repro.exceptions import StaleIndexError
from repro.overload import RetryBudget, run_with_budget
from repro.runtime import RetryPolicy
from repro.serve import MetricsRegistry


class TestTokenBucket:
    def test_starts_full_and_spends_down(self):
        budget = RetryBudget(capacity=3.0)
        assert budget.tokens == 3.0
        assert budget.try_spend()
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_successes_refill_at_the_ratio(self):
        budget = RetryBudget(capacity=4.0, refill_ratio=0.5)
        for _ in range(4):
            assert budget.try_spend()
        assert not budget.try_spend()
        budget.record_success()
        budget.record_success()
        assert budget.tokens == pytest.approx(1.0)
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_refill_never_exceeds_capacity(self):
        budget = RetryBudget(capacity=2.0, refill_ratio=1.0)
        for _ in range(10):
            budget.record_success()
        assert budget.tokens == pytest.approx(2.0)

    def test_denied_spend_withdraws_nothing(self):
        budget = RetryBudget(capacity=1.0)
        assert budget.try_spend()
        balance = budget.tokens
        assert not budget.try_spend()
        assert budget.tokens == balance

    def test_counters_and_snapshot(self):
        metrics = MetricsRegistry()
        budget = RetryBudget(capacity=1.0, metrics=metrics)
        budget.try_spend()
        budget.try_spend()
        budget.record_success()
        counters = metrics.snapshot()["counters"]
        assert counters["overload.budget_spent"] == 1
        assert counters["overload.budget_denied"] == 1
        snapshot = budget.snapshot()
        assert snapshot["capacity"] == 1.0
        assert snapshot["successes"] == 1
        assert snapshot["spent"] == 1
        assert snapshot["denied"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=0.0)
        with pytest.raises(ValueError):
            RetryBudget(refill_ratio=-0.1)


class FlakyOperation:
    """Fails ``failures`` times, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise StaleIndexError(f"attempt {self.calls} fails")
        return "ok"


def instant_policy(max_attempts):
    return RetryPolicy(max_attempts=max_attempts, sleep=lambda _: None)


class TestRunWithBudget:
    def test_first_attempt_is_free(self):
        budget = RetryBudget(capacity=1.0)
        budget.try_spend()  # drain it
        assert run_with_budget(
            instant_policy(2), FlakyOperation(0), budget
        ) == "ok"
        assert budget.tokens == 0.0

    def test_retries_spend_one_token_each(self):
        budget = RetryBudget(capacity=4.0)
        op = FlakyOperation(2)
        assert run_with_budget(instant_policy(3), op, budget) == "ok"
        assert op.calls == 3
        assert budget.tokens == pytest.approx(2.0)

    def test_exhausted_budget_raises_the_last_error(self):
        budget = RetryBudget(capacity=1.0)
        budget.try_spend()
        op = FlakyOperation(5)
        with pytest.raises(StaleIndexError, match="attempt 1"):
            run_with_budget(instant_policy(3), op, budget)
        assert op.calls == 1  # denied before the second attempt

    def test_policy_exhaustion_still_raises_last_error(self):
        budget = RetryBudget(capacity=8.0)
        op = FlakyOperation(5)
        with pytest.raises(StaleIndexError, match="attempt 2"):
            run_with_budget(instant_policy(2), op, budget)
        assert op.calls == 2

    def test_none_budget_falls_back_to_plain_policy(self):
        op = FlakyOperation(1)
        assert run_with_budget(instant_policy(2), op, None) == "ok"
        assert op.calls == 2
