"""SupervisedQueryService: readiness gating, warm start, graceful shutdown."""

import threading

import pytest

from repro.exceptions import RecoveryError, ServiceUnavailableError
from repro.model.figure1 import D21, P
from repro.persist import RecoveryManager, SnapshotStore
from repro.persist.recovery import RecoverySource
from repro.runtime import flip_snapshot_byte
from repro.serve import QueryRequest, ServiceState, SupervisedQueryService


@pytest.fixture
def store(tmp_path):
    return SnapshotStore(tmp_path / "snapshots")


@pytest.fixture
def warm_store(store, serve_framework):
    """A store with one good generation already published."""
    store.save(serve_framework)
    return store


def gated_rebuild(framework, gate):
    """A rebuild callable that blocks until ``gate`` is set (and counts)."""
    calls = []

    def rebuild():
        gate.wait(timeout=10.0)
        calls.append(1)
        return framework.rebuild()

    return rebuild, calls


class TestReadiness:
    def test_not_ready_until_recovery_completes(self, store, serve_framework):
        # An empty store forces the rebuild rung; gating it holds the
        # service in STARTING so the probe's NOT_READY window is observable
        # rather than a race.
        gate = threading.Event()
        rebuild, _ = gated_rebuild(serve_framework, gate)
        supervised = SupervisedQueryService(
            store, rebuild=rebuild, workers=1, snapshot_on_shutdown=False
        )
        supervised.start(wait=False)
        try:
            probe = supervised.readiness()
            assert probe["state"] == "starting"
            assert probe["ready"] is False
            with pytest.raises(ServiceUnavailableError) as excinfo:
                supervised.submit(QueryRequest.knn(P, k=1))
            assert excinfo.value.state == "starting"

            gate.set()
            assert supervised.wait_ready(timeout=10.0)
            probe = supervised.readiness()
            assert probe["ready"] is True
            assert probe["recovery"]["source"] == "rebuild"
            supervised.execute(QueryRequest.knn(P, k=1))
        finally:
            supervised.shutdown()

    def test_startup_failure_is_reraised_and_probed(self, store):
        # Nothing to load and no rebuild fallback: startup must surface
        # RecoveryError, and the probe must report it instead of hanging.
        supervised = SupervisedQueryService(store, snapshot_on_shutdown=False)
        supervised.start(wait=False)
        with pytest.raises(RecoveryError):
            supervised.wait_ready(timeout=10.0)
        probe = supervised.readiness()
        assert probe["ready"] is False
        assert "no rebuild fallback" in probe["error"]

    def test_context_manager_waits_for_ready(self, warm_store):
        with SupervisedQueryService(warm_store, workers=1) as supervised:
            assert supervised.state is ServiceState.READY
            response = supervised.execute(QueryRequest.knn(P, k=2))
            assert response.value
        assert supervised.state is ServiceState.STOPPED


class TestWarmStart:
    def test_recovers_from_snapshot_without_rebuild(self, warm_store):
        def forbidden_rebuild():
            raise AssertionError("warm start must not rebuild")

        with SupervisedQueryService(
            warm_store, rebuild=forbidden_rebuild, workers=1,
            snapshot_on_shutdown=False,
        ) as supervised:
            report = supervised.recovery_report
            assert report.source is RecoverySource.SNAPSHOT
            assert report.generation == 1

    def test_corrupt_generation_quarantined_on_start(
        self, warm_store, serve_framework
    ):
        warm_store.save(serve_framework)
        flip_snapshot_byte(warm_store.path_for(2))
        with SupervisedQueryService(
            warm_store, workers=1, snapshot_on_shutdown=False
        ) as supervised:
            probe = supervised.readiness()
            assert probe["recovery"]["generation"] == 1
            assert probe["recovery"]["quarantined"] == [
                "snapshot-000002.snap.corrupt"
            ]


class TestGracefulShutdown:
    def test_drains_and_writes_final_snapshot(self, warm_store, query_positions):
        requests = [
            QueryRequest.range_query(position, 9.0)
            for position in query_positions
        ]
        supervised = SupervisedQueryService(warm_store, workers=2).start()
        futures = [supervised.submit(request) for request in requests]
        supervised.shutdown()
        # Every admitted request completed (drain, not abort) ...
        assert all(future.result(timeout=1.0).value is not None or True
                   for future in futures)
        assert all(future.done() for future in futures)
        # ... and a fresh generation was published.
        assert warm_store.latest() == 2
        assert supervised.state is ServiceState.STOPPED
        with pytest.raises(ServiceUnavailableError):
            supervised.execute(QueryRequest.knn(P, k=1))

    def test_shutdown_is_idempotent(self, warm_store):
        supervised = SupervisedQueryService(warm_store, workers=1).start()
        first = supervised.shutdown()
        assert supervised.shutdown() is first
        assert warm_store.latest() == 2  # exactly one final snapshot

    def test_wal_mutation_survives_restart(self, warm_store):
        supervised = SupervisedQueryService(warm_store, workers=1).start()
        try:
            recorder = supervised.wal_recorder()
            recorder.remove_door(D21)
        finally:
            supervised.shutdown()
        # The final snapshot absorbed the mutation and truncated the WAL.
        assert not warm_store.wal_path.exists()

        with SupervisedQueryService(
            warm_store, workers=1, snapshot_on_shutdown=False
        ) as restarted:
            framework = restarted.service.engine.framework
            assert D21 not in framework.space.door_ids
            assert framework.is_fresh

    def test_no_snapshot_on_shutdown_replays_wal_instead(self, warm_store):
        supervised = SupervisedQueryService(
            warm_store, workers=1, snapshot_on_shutdown=False
        ).start()
        try:
            supervised.wal_recorder().remove_door(D21)
        finally:
            supervised.shutdown()
        # The crashier path: no final snapshot, so the next start must
        # recover the mutation from the WAL.
        assert warm_store.latest() == 1
        assert warm_store.wal_path.exists()
        with SupervisedQueryService(
            warm_store, workers=1, snapshot_on_shutdown=False
        ) as restarted:
            assert (
                restarted.recovery_report.source is RecoverySource.SNAPSHOT_WAL
            )
            framework = restarted.service.engine.framework
            assert D21 not in framework.space.door_ids

    def test_custom_recovery_manager_is_honoured(self, warm_store):
        manager = RecoveryManager(warm_store, verify_integrity=False)
        with SupervisedQueryService(
            warm_store, recovery=manager, workers=1, snapshot_on_shutdown=False
        ) as supervised:
            assert supervised.recovery_report.generation == 1
