"""Indoor distance computation (paper §III-D).

* :mod:`repro.distance.door_to_door` — Algorithm 1, the door-to-door minimum
  walking distance search over G_dist, with shortest-path reconstruction.
* :mod:`repro.distance.point_to_point` — Algorithms 2, 3, and 4, the three
  position-to-position distance algorithms the paper compares in Figure 6.
* :mod:`repro.distance.matrix` — all-pairs door-to-door distances: the
  paper-faithful reference (repeated Algorithm 1) and a numerically identical
  bulk builder on :func:`scipy.sparse.csgraph.dijkstra`.
* :mod:`repro.distance.door_count` — the Li & Lee door-count baseline [11]
  the paper argues against.
* :mod:`repro.distance.path` — path value objects.
"""

from repro.distance.door_to_door import (
    DoorSearchResult,
    d2d_distance,
    d2d_path,
    door_to_door_search,
)
from repro.distance.point_to_point import (
    pt2pt_distance,
    pt2pt_distance_basic,
    pt2pt_distance_memoized,
    pt2pt_distance_refined,
    pt2pt_path,
)
from repro.distance.matrix import (
    build_distance_matrix,
    build_distance_matrix_reference,
)
from repro.distance.door_count import door_count_distance, door_count_pt2pt
from repro.distance.path import DoorPath, IndoorPath

__all__ = [
    "DoorSearchResult",
    "d2d_distance",
    "d2d_path",
    "door_to_door_search",
    "pt2pt_distance",
    "pt2pt_distance_basic",
    "pt2pt_distance_refined",
    "pt2pt_distance_memoized",
    "pt2pt_path",
    "build_distance_matrix",
    "build_distance_matrix_reference",
    "door_count_distance",
    "door_count_pt2pt",
    "DoorPath",
    "IndoorPath",
]
