"""Staleness epochs: mutation bumps, freshness checks, bounded rebuilds."""

import pytest

from repro.exceptions import StaleIndexError
from repro.geometry import Point, Segment, rectangle
from repro.index import IndexFramework
from repro.model.figure1 import D15, P, ROOM_12, build_figure1
from repro.queries import knn_query, range_query
from repro.runtime import (
    NO_REBUILD,
    QualityLevel,
    ResilientQueryEngine,
    RetryPolicy,
)


class TestEpochCounter:
    def test_fresh_space_starts_at_zero(self):
        assert build_figure1().topology_epoch == 0

    def test_remove_door_bumps_epoch(self):
        space = build_figure1()
        space.remove_door(D15)
        assert space.topology_epoch == 1
        assert D15 not in space.door_ids

    def test_add_door_bumps_epoch(self):
        space = build_figure1()
        space.add_door(
            99,
            Segment(Point(4.0, 7.0), Point(4.0, 8.0)),
            connects=(ROOM_12, 11),
        )
        assert space.topology_epoch == 1
        assert 99 in space.door_ids

    def test_add_partition_bumps_epoch(self):
        space = build_figure1()
        space.add_partition(77, rectangle(20, 20, 24, 24))
        assert space.topology_epoch == 1

    def test_mutation_invalidates_derived_graphs(self):
        space = build_figure1()
        graph_before = space.distance_graph
        access_before = space.accessibility
        space.remove_door(D15)
        assert space.distance_graph is not graph_before
        assert space.accessibility is not access_before


class TestFreshnessChecks:
    def test_stale_range_query_raises(self):
        space = build_figure1()
        framework = IndexFramework.build(space)
        space.remove_door(D15)
        with pytest.raises(StaleIndexError) as excinfo:
            range_query(framework, P, 5.0)
        assert excinfo.value.built_epoch == 0
        assert excinfo.value.current_epoch == 1

    def test_stale_knn_query_raises(self):
        space = build_figure1()
        framework = IndexFramework.build(space)
        space.add_partition(88, rectangle(30, 30, 34, 34))
        with pytest.raises(StaleIndexError):
            knn_query(framework, P, 2)

    def test_with_objects_inherits_build_epoch(self):
        from repro.index.objects import ObjectStore

        space = build_figure1()
        framework = IndexFramework.build(space)
        space.remove_door(D15)
        derived = framework.with_objects(ObjectStore(space))
        assert not derived.is_fresh
        with pytest.raises(StaleIndexError):
            range_query(derived, P, 5.0)

    def test_rebuild_restores_freshness(self):
        space = build_figure1()
        framework = IndexFramework.build(space)
        space.remove_door(D15)
        assert not framework.is_fresh
        rebuilt = framework.rebuild()
        assert rebuilt.is_fresh
        # The removed one-way shortcut d15 (room 13 -> room 12) is gone
        # from the rebuilt matrix.
        assert D15 not in rebuilt.distance_index.door_ids
        range_query(rebuilt, P, 5.0)  # no raise


class TestTransparentRebuild:
    def test_resilient_engine_rebuilds_and_stays_exact(
        self, figure1_framework
    ):
        resilient = ResilientQueryEngine(figure1_framework)
        space = figure1_framework.space
        before = resilient.range_query(P, 9.0)
        assert before.quality is QualityLevel.EXACT_INDEXED

        space.remove_door(D15)
        after = resilient.range_query(P, 9.0)
        assert after.rebuilt
        assert after.quality is QualityLevel.EXACT_INDEXED
        assert resilient.framework.is_fresh
        # d15 was P's one-way shortcut out of room 13; without it some
        # objects may drop out of range, but the answer is exact for the
        # *current* topology: it matches a from-scratch framework.
        scratch = IndexFramework.build(space, list(resilient.framework.objects))
        assert after.value == range_query(scratch, P, 9.0)

    def test_rebuild_happens_once_not_per_query(self, figure1_framework):
        resilient = ResilientQueryEngine(figure1_framework)
        figure1_framework.space.remove_door(D15)
        first = resilient.range_query(P, 9.0)
        second = resilient.range_query(P, 9.0)
        assert first.rebuilt
        assert not second.rebuilt  # already fresh again

    def test_no_rebuild_policy_degrades_instead(self, figure1_framework):
        resilient = ResilientQueryEngine(
            figure1_framework, retry_policy=NO_REBUILD
        )
        space = figure1_framework.space
        space.remove_door(D15)
        result = resilient.knn(P, k=3)
        assert not result.rebuilt
        assert result.quality is QualityLevel.EXACT_FALLBACK
        assert isinstance(result.failures[0].error, StaleIndexError)
        # The fallback rung answers for the *current* topology.
        scratch = IndexFramework.build(space, list(figure1_framework.objects))
        assert [oid for oid, _ in result.value] == [
            oid for oid, _ in knn_query(scratch, P, 3)
        ]


class TestRetryPolicy:
    def test_backoff_sequence(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, multiplier=2.0, max_delay=0.3
        )
        assert list(policy.delays()) == pytest.approx([0.0, 0.1, 0.2, 0.3])

    def test_run_retries_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.1, sleep=sleeps.append
        )
        attempts = []

        def operation():
            attempts.append(1)
            if len(attempts) < 3:
                raise StaleIndexError("not yet")
            return "done"

        assert policy.run(operation) == "done"
        assert len(attempts) == 3
        assert sleeps == pytest.approx([0.1, 0.2])

    def test_run_exhausts_and_reraises(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, sleep=lambda _: None)

        def operation():
            raise StaleIndexError("forever stale")

        with pytest.raises(StaleIndexError):
            policy.run(operation)

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
