"""Indoor space assembly: :class:`IndoorSpace` and :class:`IndoorSpaceBuilder`.

:class:`IndoorSpace` is the immutable* container the rest of the library works
against: partitions, doors, the topology mappings, and lazily constructed
views (accessibility graph, distance-aware graph).  It also hosts
``get_host_partition`` (the paper's point query of §III-D2, backed by a
pluggable spatial index — the query engine installs an R-tree) and ``dist_v``
(the intra-partition point-to-door distance of Eq. 6).

:class:`IndoorSpaceBuilder` offers a forgiving construction API and performs
all validation at :meth:`~IndoorSpaceBuilder.build` time.

*"Immutable" in the conventional sense: queries never mutate a built space,
and derived caches are transparent.  Explicit topology mutation (adding /
removing doors or partitions on a live space) is supported and bumps the
space's :attr:`~IndoorSpace.topology_epoch`, which marks previously built
index frameworks stale (see :mod:`repro.runtime`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ModelError, UnknownEntityError
from repro.geometry import Point, Polygon, Segment
from repro.model.accessibility import AccessibilityGraph
from repro.model.entities import Door, Partition, PartitionKind
from repro.model.topology import Topology

#: Signature of a pluggable host-partition locator: point -> partition id or None.
PartitionLocator = Callable[[Point], Optional[int]]


def _make_door(door_id: int, geometry, name: str = "") -> Door:
    """Construct a :class:`Door` from a Point (zero-width) or Segment."""
    if isinstance(geometry, Point):
        return Door.at_point(door_id, geometry, name)
    if isinstance(geometry, Segment):
        return Door(door_id, geometry, name)
    raise ModelError(
        f"door geometry must be a Point or Segment, got {type(geometry)!r}"
    )


class IndoorSpace:
    """A complete indoor space: entities + topology + derived graphs."""

    def __init__(
        self,
        partitions: Dict[int, Partition],
        doors: Dict[int, Door],
        topology: Topology,
    ) -> None:
        self._partitions = dict(partitions)
        self._doors = dict(doors)
        self._topology = topology
        self._accessibility: Optional[AccessibilityGraph] = None
        self._distance_graph = None  # constructed lazily to avoid import cycle
        self._locator: Optional[PartitionLocator] = None
        self._topology_epoch = 0

    # ------------------------------------------------------------------
    # Entity access
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The D2P / P2D mappings."""
        return self._topology

    @property
    def partition_ids(self) -> Tuple[int, ...]:
        """All partition ids, ascending."""
        return self._topology.partition_ids

    @property
    def door_ids(self) -> Tuple[int, ...]:
        """All door ids, ascending."""
        return self._topology.door_ids

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    @property
    def num_doors(self) -> int:
        return len(self._doors)

    @property
    def num_floors(self) -> int:
        """Count of distinct base floors among the partitions."""
        return len({p.floor for p in self._partitions.values()})

    def partition(self, partition_id: int) -> Partition:
        """The partition entity with the given id."""
        try:
            return self._partitions[partition_id]
        except KeyError:
            raise UnknownEntityError("partition", partition_id) from None

    def door(self, door_id: int) -> Door:
        """The door entity with the given id."""
        try:
            return self._doors[door_id]
        except KeyError:
            raise UnknownEntityError("door", door_id) from None

    def partitions(self) -> Iterable[Partition]:
        """All partition entities, ascending by id."""
        return (self._partitions[p] for p in self.partition_ids)

    def doors(self) -> Iterable[Door]:
        """All door entities, ascending by id."""
        return (self._doors[d] for d in self.door_ids)

    def partitions_on_floor(self, floor: int) -> List[Partition]:
        """Partitions whose span includes ``floor``."""
        return [p for p in self.partitions() if floor in p.floors]

    # ------------------------------------------------------------------
    # Topology mutation and staleness epochs
    # ------------------------------------------------------------------
    @property
    def topology_epoch(self) -> int:
        """Monotone counter bumped by every door / partition mutation.

        Index structures record the epoch they were built at
        (:attr:`repro.index.IndexFramework.built_epoch`); a mismatch means
        the indexes describe an older topology and indexed queries raise
        :class:`~repro.exceptions.StaleIndexError`.
        """
        return self._topology_epoch

    def _bump_topology_epoch(self) -> None:
        """Invalidate derived graphs and advance the epoch after a mutation."""
        self._topology_epoch += 1
        self._accessibility = None
        self._distance_graph = None

    def restore_topology_epoch(self, epoch: int) -> None:
        """Reset the epoch counter when restoring a persisted space.

        A freshly deserialised space starts at epoch 0, but the snapshot it
        came from records the epoch its indexes were built against; restoring
        it keeps WAL replay and staleness comparisons coherent across process
        restarts (see :mod:`repro.persist`).  Derived graph caches are
        dropped, matching what every genuine mutation does.
        """
        if epoch < 0:
            raise ModelError(f"topology epoch must be >= 0, got {epoch}")
        self._topology_epoch = epoch
        self._accessibility = None
        self._distance_graph = None

    def add_partition(
        self,
        partition_id: int,
        polygon: Polygon,
        kind: PartitionKind = PartitionKind.ROOM,
        name: str = "",
        obstacles: Tuple[Polygon, ...] = (),
        stair_length: Optional[float] = None,
    ) -> Partition:
        """Register a new (initially door-less) partition on a built space.

        Bumps the topology epoch: existing indexes become stale.
        """
        if partition_id in self._partitions:
            raise ModelError(f"duplicate partition id {partition_id}")
        partition = Partition(
            partition_id, polygon, kind, name, tuple(obstacles), stair_length
        )
        self._partitions[partition_id] = partition
        self._topology.add_partition(partition_id)
        self._bump_topology_epoch()
        return partition

    def add_door(
        self,
        door_id: int,
        geometry,
        connects: Tuple[int, int],
        one_way: bool = False,
        name: str = "",
    ) -> Door:
        """Open a new door on a built space (same contract as the builder's
        :meth:`IndoorSpaceBuilder.add_door`).

        Bumps the topology epoch: existing indexes become stale.
        """
        if door_id in self._doors:
            raise ModelError(f"duplicate door id {door_id}")
        door = _make_door(door_id, geometry, name)
        from_partition, to_partition = connects
        self._topology.connect(
            door_id, from_partition, to_partition, bidirectional=not one_way
        )
        self._doors[door_id] = door
        self._bump_topology_epoch()
        return door

    def remove_door(self, door_id: int) -> Door:
        """Remove a door (closed for maintenance, demolished, ...).

        Bumps the topology epoch: existing indexes become stale.

        Returns:
            The removed door entity.
        """
        door = self.door(door_id)
        self._topology.disconnect(door_id)
        del self._doors[door_id]
        self._bump_topology_epoch()
        return door

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    @property
    def accessibility(self) -> AccessibilityGraph:
        """G_accs, the accessibility base graph (built on first use)."""
        if self._accessibility is None:
            self._accessibility = AccessibilityGraph(self._topology)
        return self._accessibility

    @property
    def distance_graph(self):
        """G_dist, the distance-aware graph with f_dv and f_d2d."""
        if self._distance_graph is None:
            from repro.model.distance_graph import DistanceAwareGraph

            self._distance_graph = DistanceAwareGraph(self)
        return self._distance_graph

    # ------------------------------------------------------------------
    # Point location and intra-partition distances (paper §III-D2)
    # ------------------------------------------------------------------
    def set_partition_locator(self, locator: Optional[PartitionLocator]) -> None:
        """Install a spatial index callback for :meth:`get_host_partition`.

        The query engine installs an R-tree here; without one the model falls
        back to a linear scan over the partitions of the point's floor.
        """
        self._locator = locator

    def get_host_partition(self, point: Point) -> Optional[Partition]:
        """The partition containing ``point`` (paper's getHostPartition).

        Points on a wall shared by several partitions resolve to the lowest
        partition id deterministically.  Returns ``None`` for points in no
        partition (e.g. inside a wall or outside a modelled outdoor apron).
        """
        if self._locator is not None:
            partition_id = self._locator(point)
            if partition_id is None:
                return None
            return self._partitions[partition_id]
        for partition_id in self.partition_ids:
            if self._partitions[partition_id].contains(point):
                return self._partitions[partition_id]
        return None

    def require_host_partition(self, point: Point) -> Partition:
        """Like :meth:`get_host_partition` but raises when no partition hosts
        the point."""
        partition = self.get_host_partition(point)
        if partition is None:
            raise ModelError(f"no partition contains {point}")
        return partition

    def dist_v(
        self, point: Point, door_id: int, partition: Optional[Partition] = None
    ) -> float:
        """distV(p, d) of Eq. 6: shortest intra-partition distance between a
        position and a door touching the position's host partition.

        Returns ``inf`` when the door does not touch the host partition (the
        paper's stipulation), or when ``point`` lies in no partition.
        """
        if partition is None:
            partition = self.get_host_partition(point)
            if partition is None:
                return float("inf")
        if not self._topology.touches(door_id, partition.partition_id):
            return float("inf")
        return partition.intra_distance(point, self.door(door_id).midpoint)


class IndoorSpaceBuilder:
    """Incremental construction of an :class:`IndoorSpace`.

    Example::

        builder = IndoorSpaceBuilder()
        builder.add_partition(10, rectangle(0, 0, 12, 2), PartitionKind.HALLWAY)
        builder.add_partition(11, rectangle(0, 2, 4, 6))
        builder.add_door(11, Segment(Point(2, 2), Point(3, 2)),
                         connects=(11, 10))           # bidirectional
        builder.add_door(12, Segment(Point(5, 2), Point(6, 2)),
                         connects=(12, 10), one_way=True)  # 12 -> 10 only
        space = builder.build()
    """

    def __init__(self) -> None:
        self._partitions: Dict[int, Partition] = {}
        self._doors: Dict[int, Door] = {}
        self._topology = Topology()

    def add_partition(
        self,
        partition_id: int,
        polygon: Polygon,
        kind: PartitionKind = PartitionKind.ROOM,
        name: str = "",
        obstacles: Tuple[Polygon, ...] = (),
        stair_length: Optional[float] = None,
    ) -> Partition:
        """Register a partition; returns the created entity."""
        if partition_id in self._partitions:
            raise ModelError(f"duplicate partition id {partition_id}")
        partition = Partition(
            partition_id, polygon, kind, name, tuple(obstacles), stair_length
        )
        self._partitions[partition_id] = partition
        self._topology.add_partition(partition_id)
        return partition

    def add_door(
        self,
        door_id: int,
        geometry,
        connects: Tuple[int, int],
        one_way: bool = False,
        name: str = "",
    ) -> Door:
        """Register a door.

        Args:
            door_id: unique non-negative integer.
            geometry: a :class:`Segment` (the doorway) or a :class:`Point`
                (a zero-width door).
            connects: ``(from_partition, to_partition)``.  With
                ``one_way=True`` movement is permitted only from → to;
                otherwise both ways.
            one_way: door directionality.
            name: optional label.
        """
        if door_id in self._doors:
            raise ModelError(f"duplicate door id {door_id}")
        door = _make_door(door_id, geometry, name)
        from_partition, to_partition = connects
        self._topology.connect(
            door_id, from_partition, to_partition, bidirectional=not one_way
        )
        self._doors[door_id] = door
        return door

    def build(self, validate_geometry: bool = True) -> IndoorSpace:
        """Validate everything and return the finished :class:`IndoorSpace`.

        Args:
            validate_geometry: also check that each door's midpoint lies
                within (the boundary of) both partitions it touches.  Disable
                for huge synthetic buildings where the generator guarantees
                placement by construction.
        """
        self._topology.validate()
        if validate_geometry:
            self._validate_door_placement()
        return IndoorSpace(self._partitions, self._doors, self._topology)

    def _validate_door_placement(self) -> None:
        for door_id in self._topology.door_ids:
            door = self._doors[door_id]
            for partition_id in self._topology.partitions_of(door_id):
                partition = self._partitions[partition_id]
                if not partition.contains(door.midpoint):
                    raise ModelError(
                        f"door {door.label} midpoint {door.midpoint} lies "
                        f"outside partition {partition.label}"
                    )
