"""Tests for the distance-aware graph G_dist (§III-C): f_dv and f_d2d."""

import math

import pytest

from repro.exceptions import UnknownEntityError
from repro.geometry import Point
from repro.model.figure1 import (
    D12,
    D13,
    D15,
    D21,
    D22,
    D24,
    HALLWAY,
    ROOM_12,
    ROOM_13,
    ROOM_20,
    ROOM_22,
    build_figure1,
)


@pytest.fixture(scope="module")
def space():
    return build_figure1()


@pytest.fixture(scope="module")
def gdist(space):
    return space.distance_graph


class TestFdv:
    def test_fdv_finite_for_enterable_partition(self, space, gdist):
        # d13 enters room 13; the farthest point of room 13 from d13 is a
        # far corner of the room.
        midpoint = space.door(D13).midpoint
        expected = max(
            midpoint.distance_to(v)
            for v in space.partition(ROOM_13).polygon.vertices
        )
        assert gdist.fdv(D13, ROOM_13) == pytest.approx(expected)

    def test_fdv_infinite_for_non_enterable_partition(self, gdist):
        # d12 is one-way out of room 12, so room 12 is not enterable via d12.
        assert math.isinf(gdist.fdv(D12, ROOM_12))

    def test_fdv_infinite_for_untouched_partition(self, gdist):
        assert math.isinf(gdist.fdv(D13, ROOM_20))

    def test_fdv_unknown_partition_raises(self, gdist):
        with pytest.raises(UnknownEntityError):
            gdist.fdv(D13, 999)

    def test_fdv_is_cached(self, space):
        graph = space.distance_graph
        graph.fdv(D13, ROOM_13)
        stats = graph.cache_stats()
        graph.fdv(D13, ROOM_13)
        assert graph.cache_stats() == stats


class TestFd2d:
    def test_paper_one_way_asymmetry(self, gdist):
        # §III-C1: f_d2d(v12, d12, d15) = ∞ because one cannot go from d12 to
        # d15 within room 12 (d12 does not *enter* room 12); the reverse
        # direction d15 -> d12 is the finite intra-room distance.
        assert math.isinf(gdist.fd2d(ROOM_12, D12, D15))
        expected = Point(6, 8).distance_to(Point(5, 6))
        assert gdist.fd2d(ROOM_12, D15, D12) == pytest.approx(expected)

    def test_same_door_is_zero(self, gdist):
        assert gdist.fd2d(ROOM_12, D12, D12) == 0.0
        assert gdist.fd2d(HALLWAY, D12, D12) == 0.0

    def test_same_door_not_touching_partition_is_inf(self, gdist):
        assert math.isinf(gdist.fd2d(ROOM_20, D12, D12))

    def test_bidirectional_door_pair_is_symmetric(self, gdist):
        forward = gdist.fd2d(ROOM_20, D21, D22)
        backward = gdist.fd2d(ROOM_20, D22, D21)
        assert forward == pytest.approx(backward)
        assert forward > 0

    def test_obstructed_d22_d24_distance(self, space, gdist):
        # The paper's §III-C1 note: the d22-d24 distance within room 22 is
        # *not* Euclidean because an obstacle blocks the line of sight.
        euclidean = space.door(D22).midpoint.distance_to(space.door(D24).midpoint)
        obstructed = gdist.fd2d(ROOM_22, D22, D24)
        assert obstructed > euclidean + 0.1

    def test_doors_not_sharing_partition_are_inf(self, gdist):
        assert math.isinf(gdist.fd2d(HALLWAY, D21, D13))

    def test_unknown_partition_raises(self, gdist):
        with pytest.raises(UnknownEntityError):
            gdist.fd2d(999, D12, D13)


class TestPrecompute:
    def test_precompute_fills_caches(self):
        space = build_figure1()
        graph = space.distance_graph
        assert graph.cache_stats()["fd2d_entries"] == 0
        graph.precompute()
        stats = graph.cache_stats()
        assert stats["fd2d_entries"] > 0
        assert stats["fdv_entries"] > 0
        # Precomputing again adds nothing.
        graph.precompute()
        assert graph.cache_stats() == stats

    def test_precomputed_values_match_lazy_values(self):
        lazy = build_figure1().distance_graph
        eager = build_figure1().distance_graph
        eager.precompute()
        for partition_id in (HALLWAY, ROOM_12, ROOM_13, ROOM_20, ROOM_22):
            topo = lazy.space.topology
            for di in topo.enterable_doors(partition_id):
                for dj in topo.leaveable_doors(partition_id):
                    assert eager.fd2d(partition_id, di, dj) == pytest.approx(
                        lazy.fd2d(partition_id, di, dj)
                    )
