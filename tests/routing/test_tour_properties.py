"""Property-based tests for tour planning."""

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.routing import plan_tour
from repro.routing.tour import _distance_table, _path_cost
from tests.strategies import build_grid_plan

RELAXED = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def tour_scenarios(draw, max_stops=5):
    columns = draw(st.integers(min_value=2, max_value=3))
    rows = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    stop_count = draw(st.integers(min_value=1, max_value=max_stops))
    plan = build_grid_plan(columns, rows, seed)
    rng = random.Random(seed + 1)
    start = plan.random_interior_point(rng)
    stops = [plan.random_interior_point(rng) for _ in range(stop_count)]
    return plan, start, stops


class TestTourProperties:
    @RELAXED
    @given(tour_scenarios())
    def test_every_stop_visited_exactly_once(self, scenario):
        plan, start, stops = scenario
        tour = plan_tour(plan.space, start, stops)
        assert sorted(tour.order) == list(range(len(stops)))

    @RELAXED
    @given(tour_scenarios())
    def test_total_is_sum_of_legs(self, scenario):
        plan, start, stops = scenario
        tour = plan_tour(plan.space, start, stops)
        assert tour.total_distance == pytest.approx(sum(tour.leg_distances))

    @RELAXED
    @given(tour_scenarios(max_stops=4))
    def test_exact_plans_beat_every_permutation(self, scenario):
        plan, start, stops = scenario
        tour = plan_tour(plan.space, start, stops)
        assert tour.exact
        table = _distance_table(plan.space, start, stops)
        for perm in itertools.permutations(range(len(stops))):
            assert tour.total_distance <= _path_cost(table, list(perm)) + 1e-9

    @RELAXED
    @given(tour_scenarios())
    def test_legs_match_pairwise_distances(self, scenario):
        from repro.distance import pt2pt_distance_memoized

        plan, start, stops = scenario
        tour = plan_tour(plan.space, start, stops)
        cursor = start
        for index, leg in zip(tour.order, tour.leg_distances):
            assert leg == pytest.approx(
                pt2pt_distance_memoized(plan.space, cursor, stops[index])
            )
            cursor = stops[index]
