"""2-hop distance labeling for campus-scale door graphs (beyond the paper).

The dense M_d2d / M_idx pair of §IV is O(N²) in the door count — fine for
one building, fatal for a campus.  This package provides the scalable
alternative behind ``IndexFramework.build(backend="labels")``:

* :mod:`repro.labels.hierarchy` — an independent-set vertex hierarchy
  over the door graph (IS-LABEL, arXiv:1211.2367).
* :mod:`repro.labels.builder` — pruned per-hub Dijkstra labeling in
  hierarchy order, directed-aware (TopCom, arXiv:1602.01537), plus the
  canonical repair pass that makes answers bit-identical to the matrix.
* :mod:`repro.labels.index` — :class:`LabeledDistanceIndex`, the
  :class:`repro.index.DistanceBackend` implementation.
* :mod:`repro.labels.serialize` — the deterministic snapshot codec.
* :mod:`repro.labels.repair` — WAL-driven incremental repair with
  full-rebuild fallback.

See ``docs/indexing.md`` for when to prefer labels over the matrix.
"""

from repro.labels.builder import HubLabeling, build_labeling
from repro.labels.hierarchy import (
    VertexHierarchy,
    affected_cone,
    build_hierarchy,
)
from repro.labels.index import LabelPatches, LabeledDistanceIndex
from repro.labels.repair import (
    MAX_PATCHES,
    RepairOutcome,
    repair_framework,
    repair_labels,
)
from repro.labels.serialize import labels_from_bytes, labels_to_bytes

__all__ = [
    "HubLabeling",
    "LabelPatches",
    "LabeledDistanceIndex",
    "MAX_PATCHES",
    "RepairOutcome",
    "VertexHierarchy",
    "affected_cone",
    "build_hierarchy",
    "build_labeling",
    "labels_from_bytes",
    "labels_to_bytes",
    "repair_framework",
    "repair_labels",
]
