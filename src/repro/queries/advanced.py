"""Composite distance-aware queries (paper §VII: "it is also relevant to
consider other types of distance-aware indoor queries ... by using the
query types in this paper as building blocks").

All of these compose the §V machinery:

* :func:`range_query_with_distances` — Algorithm 5 returning exact
  distances per object (the whole-bucket shortcut is replaced by real
  intra-partition searches, and distances are min-merged across routes);
* :func:`distances_to_all_objects` — one-to-all object distances, the
  workhorse behind the aggregate queries (and services like the boarding
  reminder, which needs every passenger's distance);
* :func:`distance_join` — all object pairs within a walking distance;
* :func:`aggregate_nn` — group nearest neighbour: the object minimising
  the sum (or maximum) of walking distances from a set of positions
  (meeting-point finding);
* :func:`closest_pair` — the two objects nearest each other.
"""

from __future__ import annotations

import math
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.queries.knn_query import knn_query


def _object_distances(
    framework: IndexFramework,
    position: Point,
    radius: Optional[float],
    use_index: bool = True,
) -> Dict[int, float]:
    """Exact walking distance to every object within ``radius`` of
    ``position`` (all objects when ``radius`` is None), as a min-merged
    dict over all door routes plus the direct intra-partition route."""
    space = framework.space
    host = space.require_host_partition(position)
    store = framework.objects
    best: Dict[int, float] = {}

    def offer(object_id: int, distance: float) -> None:
        if radius is not None and distance > radius:
            return
        if distance < best.get(object_id, math.inf):
            best[object_id] = distance

    bucket = store.bucket(host.partition_id)
    if bucket is not None:
        limit = math.inf if radius is None else radius
        for object_id, distance in bucket.range_search(position, limit):
            offer(object_id, distance)

    for di in sorted(space.topology.leaveable_doors(host.partition_id)):
        to_door = space.dist_v(position, di, host)
        if math.isinf(to_door):
            continue
        budget = None if radius is None else radius - to_door
        if budget is not None and budget < 0:
            continue
        scan = (
            framework.distance_index.doors_by_distance(di, max_distance=budget)
            if use_index
            else framework.distance_index.doors_unsorted(di)
        )
        for dj, door_distance in scan:
            if budget is not None and door_distance > budget:
                continue
            remaining = (
                math.inf if budget is None else budget - door_distance
            )
            door_point = space.door(dj).midpoint
            for partition_id, _ in framework.dpt.record(dj).enterable():
                target_bucket = store.bucket(partition_id)
                if target_bucket is None:
                    continue
                for object_id, intra in target_bucket.range_search(
                    door_point, remaining
                ):
                    offer(object_id, to_door + door_distance + intra)
    return best


def range_query_with_distances(
    framework: IndexFramework,
    position: Point,
    radius: float,
    use_index: bool = True,
) -> List[Tuple[int, float]]:
    """Algorithm 5 with exact distances: ``(object_id, distance)`` for every
    object within ``radius``, sorted by ascending distance."""
    if radius < 0:
        raise QueryError(f"range radius must be non-negative, got {radius}")
    distances = _object_distances(framework, position, radius, use_index)
    return sorted(distances.items(), key=lambda item: (item[1], item[0]))


def distances_to_all_objects(
    framework: IndexFramework, position: Point
) -> Dict[int, float]:
    """Walking distance from ``position`` to every reachable object."""
    return _object_distances(framework, position, radius=None)


def distance_join(
    framework: IndexFramework, radius: float
) -> List[Tuple[int, int, float]]:
    """All object pairs within walking distance ``radius`` of each other.

    Returns ``(id_low, id_high, distance)`` triples, each pair once, sorted
    by distance.  One range expansion per object; pairs are deduplicated by
    reporting only partners with a larger id.
    """
    if radius < 0:
        raise QueryError(f"join radius must be non-negative, got {radius}")
    pairs: List[Tuple[int, int, float]] = []
    for obj in sorted(framework.objects, key=lambda o: o.object_id):
        for other_id, distance in _object_distances(
            framework, obj.position, radius
        ).items():
            if other_id > obj.object_id:
                pairs.append((obj.object_id, other_id, distance))
    pairs.sort(key=lambda triple: (triple[2], triple[0], triple[1]))
    return pairs


def aggregate_nn(
    framework: IndexFramework,
    positions: Sequence[Point],
    k: int = 1,
    agg: Literal["sum", "max"] = "sum",
) -> List[Tuple[int, float]]:
    """Group nearest neighbour: the ``k`` objects minimising the aggregate
    walking distance from all of ``positions``.

    ``agg='sum'`` finds the best meeting point for total walking;
    ``agg='max'`` minimises the farthest member's walk.  Objects unreachable
    from any member are excluded.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if not positions:
        raise QueryError("aggregate_nn needs at least one position")
    if agg not in ("sum", "max"):
        raise QueryError(f"unsupported aggregate: {agg!r}")

    per_member = [
        distances_to_all_objects(framework, position) for position in positions
    ]
    common = set(per_member[0])
    for distances in per_member[1:]:
        common &= set(distances)
    scored: List[Tuple[float, int]] = []
    for object_id in common:
        values = [distances[object_id] for distances in per_member]
        score = sum(values) if agg == "sum" else max(values)
        scored.append((score, object_id))
    scored.sort()
    return [(object_id, score) for score, object_id in scored[:k]]


def closest_pair(
    framework: IndexFramework,
) -> Optional[Tuple[int, int, float]]:
    """The two distinct objects with the smallest walking distance between
    them, as ``(id_low, id_high, distance)``; ``None`` with fewer than two
    objects or when no pair is mutually reachable.

    Runs a 2-NN query anchored at every object (the nearest neighbour of
    some object realises the closest pair).
    """
    best: Optional[Tuple[int, int, float]] = None
    for obj in framework.objects:
        for other_id, distance in knn_query(framework, obj.position, k=2):
            if other_id == obj.object_id:
                continue
            low, high = sorted((obj.object_id, other_id))
            if best is None or distance < best[2]:
                best = (low, high, distance)
    return best
