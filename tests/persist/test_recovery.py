"""Tests for the snapshot store and recovery ladder (repro.persist.recovery)."""

import numpy as np
import pytest

from repro.exceptions import RecoveryError
from repro.index import IndexFramework
from repro.model.figure1 import D21, build_figure1
from repro.persist import RecoveryManager, SnapshotStore, WalRecorder
from repro.persist.recovery import RecoverySource
from repro.runtime import corrupt_md2d, flip_snapshot_byte


def _rebuild_from(framework):
    """A rebuild callable recreating ``framework``'s space and objects."""
    objects = list(framework.objects)

    def rebuild():
        return IndexFramework.build(build_figure1(), objects)

    return rebuild


class TestSnapshotStore:
    def test_generations_are_sequential(self, store, figure1_framework):
        assert store.generations() == []
        assert store.latest() is None
        store.save(figure1_framework)
        store.save(figure1_framework)
        assert store.generations() == [1, 2]
        assert store.latest() == 2

    def test_prune_keeps_newest(self, tmp_path, figure1_framework):
        store = SnapshotStore(tmp_path / "snaps", keep=2)
        for _ in range(4):
            store.save(figure1_framework)
        store.prune()
        assert store.generations() == [3, 4]

    def test_checkpoint_truncates_the_wal(self, store, figure1_framework):
        recorder = WalRecorder(figure1_framework.space, store.wal(fsync=False))
        recorder.remove_door(D21)
        assert store.wal_path.exists()
        framework = figure1_framework.rebuild()
        store.checkpoint(framework)
        assert not store.wal_path.exists()
        assert store.latest() == 1

    def test_quarantine_renames_not_deletes(self, store, figure1_framework):
        store.save(figure1_framework)
        moved = store.quarantine(1)
        assert moved.name.endswith(".snap.corrupt")
        assert moved.exists()
        assert store.generations() == []


class TestRecoveryLadder:
    def test_clean_snapshot_served(self, store, figure1_framework):
        store.save(figure1_framework)
        report = RecoveryManager(store).recover()
        assert report.source is RecoverySource.SNAPSHOT
        assert report.generation == 1
        assert report.quarantined == []
        assert np.array_equal(
            report.framework.distance_index.md2d,
            figure1_framework.distance_index.md2d,
        )

    def test_wal_replay_on_top_of_snapshot(self, store, figure1_framework):
        store.save(figure1_framework)
        recorder = WalRecorder(figure1_framework.space, store.wal(fsync=False))
        recorder.remove_door(D21)

        report = RecoveryManager(store).recover()
        assert report.source is RecoverySource.SNAPSHOT_WAL
        assert report.replay.applied == 1
        assert D21 not in report.framework.space.door_ids
        assert report.framework.is_fresh

    def test_corrupt_latest_falls_back_to_older_generation(
        self, store, figure1_framework
    ):
        store.save(figure1_framework)
        store.save(figure1_framework)
        flip_snapshot_byte(store.path_for(2))

        report = RecoveryManager(store).recover()
        assert report.generation == 1
        assert [p.name for p in report.quarantined] == [
            "snapshot-000002.snap.corrupt"
        ]
        # The damaged generation is preserved as evidence, never deleted.
        assert (store.directory / "snapshot-000002.snap.corrupt").exists()

    def test_all_corrupt_rebuilds(self, store, figure1_framework):
        store.save(figure1_framework)
        store.save(figure1_framework)
        flip_snapshot_byte(store.path_for(1), seed=1)
        flip_snapshot_byte(store.path_for(2), seed=2)

        manager = RecoveryManager(store, rebuild=_rebuild_from(figure1_framework))
        report = manager.recover()
        assert report.source is RecoverySource.REBUILD
        assert report.generation is None
        assert len(report.quarantined) == 2
        assert np.array_equal(
            report.framework.distance_index.md2d,
            figure1_framework.distance_index.md2d,
        )

    def test_all_corrupt_without_rebuild_is_fatal(
        self, store, figure1_framework
    ):
        store.save(figure1_framework)
        flip_snapshot_byte(store.path_for(1))
        with pytest.raises(RecoveryError, match="no rebuild fallback"):
            RecoveryManager(store).recover()

    def test_empty_store_rebuilds(self, store, figure1_framework):
        manager = RecoveryManager(store, rebuild=_rebuild_from(figure1_framework))
        assert manager.recover().source is RecoverySource.REBUILD

    def test_crash_mid_write_ignores_the_partial(
        self, store, figure1_framework
    ):
        # Simulate a writer killed between the temp write and the rename:
        # generation 1 is published, generation 2 exists only as a half-done
        # temp file from a dead pid.
        store.save(figure1_framework)
        data = store.path_for(1).read_bytes()
        partial = store.directory / "snapshot-000002.snap.tmp.99999"
        partial.write_bytes(data[: len(data) // 3])

        report = RecoveryManager(store).recover()
        assert report.generation == 1
        assert [p.name for p in report.removed_partials] == [partial.name]
        assert not partial.exists()
        assert store.generations() == [1]

    def test_corrupt_wal_is_quarantined_snapshot_still_served(
        self, store, figure1_framework
    ):
        store.save(figure1_framework)
        recorder = WalRecorder(figure1_framework.space, store.wal(fsync=False))
        recorder.remove_door(D21)
        recorder.add_door(
            D21,
            build_figure1().door(D21).segment,
            connects=(20, 21),
        )
        # Damage the *first* record while a valid one follows: that is rot,
        # not a torn append, so the log is unusable — but the snapshot
        # itself is intact and must still be served.
        lines = store.wal_path.read_bytes().splitlines(keepends=True)
        damaged = bytearray(lines[0])
        damaged[len(damaged) // 2] ^= 0xFF
        store.wal_path.write_bytes(bytes(damaged) + lines[1])

        report = RecoveryManager(store).recover()
        assert report.source is RecoverySource.SNAPSHOT
        assert report.generation == 1
        assert [p.name for p in report.quarantined] == ["wal.log.corrupt"]
        assert not store.wal_path.exists()
        # The un-replayed mutation is lost (reported, not silent): the
        # served framework still has the door.
        assert D21 in report.framework.space.door_ids

    def test_semantic_corruption_fails_integrity_not_checksums(
        self, store, figure1_framework
    ):
        # Persist a NaN faithfully: every checksum passes, so only the §IV
        # integrity check can refuse to serve it.
        corrupt_md2d(figure1_framework, mode="nan")
        store.save(figure1_framework)
        manager = RecoveryManager(store, rebuild=_rebuild_from(figure1_framework))
        report = manager.recover()
        assert report.source is RecoverySource.REBUILD
        assert len(report.quarantined) == 1
        assert any("integrity" in note for note in report.notes)

    def test_verify_integrity_opt_out(self, store, figure1_framework):
        corrupt_md2d(figure1_framework, mode="nan")
        store.save(figure1_framework)
        report = RecoveryManager(store, verify_integrity=False).recover()
        assert report.source is RecoverySource.SNAPSHOT
