"""Algorithms 2-4: position-to-position minimum walking distance (§III-D2).

All three algorithms compute the same value

    min over (d_s, d_t) of  distV(p_s, d_s) + d2d(d_s, d_t) + distV(p_t, d_t)

where ``d_s`` ranges over the doors through which the source partition can be
left and ``d_t`` over the doors through which the destination partition can be
entered — plus, when source and destination share a host partition, the direct
intra-partition distance (the paper's Figure-5 discussion shows that *both*
candidate sets are needed: an out-and-back door route can beat the intra-
partition path when obstacles are present, and vice versa).

They differ in how much work they share:

* :func:`pt2pt_distance_basic` (Algorithm 2) calls the door-to-door search
  blindly for every (d_s, d_t) pair.
* :func:`pt2pt_distance_refined` (Algorithm 3) prunes dead-end source doors,
  prunes destination doors against the best distance found so far, and runs
  a *single* multi-target expansion per source door with early termination.
* :func:`pt2pt_distance_memoized` (Algorithm 4) additionally memoises
  door-to-door distances across source-door iterations, harvesting them
  backward along shortest-path trees (the ``prev`` walk) and short-circuiting
  a source door whose expansion reaches an already-processed source door.

The paper's Figure 6/7 experiments compare exactly these three functions.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.distance.door_to_door import DoorSearchResult, door_to_door_search
from repro.distance.path import IndoorPath
from repro.geometry import Point
from repro.model.builder import IndoorSpace
from repro.model.entities import Partition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.deadline import Deadline


def _hosts(space: IndoorSpace, source: Point, target: Point) -> Tuple[Partition, Partition]:
    return (
        space.require_host_partition(source),
        space.require_host_partition(target),
    )


def _direct_candidate(
    vs: Partition, vt: Partition, source: Point, target: Point
) -> float:
    """The intra-partition candidate when both positions share a partition."""
    if vs.partition_id != vt.partition_id:
        return math.inf
    return vs.intra_distance(source, target)


def _source_doors(
    space: IndoorSpace, vs: Partition, vt: Partition
) -> List[int]:
    """P2D⊢(v_s) with the dead-end pruning of Algorithm 3 (lines 5-8):
    drop a source door whose only enterable partition is a non-destination
    partition that cannot be left except through that same door."""
    topology = space.topology
    doors_s = sorted(topology.leaveable_doors(vs.partition_id))
    pruned: List[int] = []
    for ds in doors_s:
        other = topology.enterable_partitions(ds) - {vs.partition_id}
        if len(other) == 1:
            neighbor = next(iter(other))
            if (
                neighbor != vt.partition_id
                and topology.leaveable_doors(neighbor) == frozenset({ds})
            ):
                continue
        pruned.append(ds)
    return pruned


def pt2pt_distance_basic(
    space: IndoorSpace,
    source: Point,
    target: Point,
    deadline: Optional["Deadline"] = None,
) -> float:
    """Algorithm 2: iterate blindly over all (d_s, d_t) door pairs."""
    vs, vt = _hosts(space, source, target)
    if deadline is not None:
        deadline.check("pt2pt distance")
    graph = space.distance_graph
    topology = space.topology

    best = _direct_candidate(vs, vt, source, target)
    doors_t = sorted(topology.enterable_doors(vt.partition_id))
    for ds in sorted(topology.leaveable_doors(vs.partition_id)):
        dist1 = space.dist_v(source, ds, vs)
        if math.isinf(dist1):
            continue
        for dt in doors_t:
            if deadline is not None:
                deadline.check("pt2pt distance")
            dist2 = space.dist_v(target, dt, vt)
            if math.isinf(dist2):
                continue
            result = door_to_door_search(graph, ds, target_door=dt)
            candidate = dist1 + result.distance_to(dt) + dist2
            if candidate < best:
                best = candidate
    return best


def pt2pt_distance_refined(
    space: IndoorSpace,
    source: Point,
    target: Point,
    deadline: Optional["Deadline"] = None,
) -> float:
    """Algorithm 3: one pruned multi-target expansion per source door."""
    vs, vt = _hosts(space, source, target)
    if deadline is not None:
        deadline.check("pt2pt distance")
    graph = space.distance_graph
    topology = space.topology

    doors_s = _source_doors(space, vs, vt)
    doors_t = sorted(topology.enterable_doors(vt.partition_id))
    dist_to_source_door = {
        ds: space.dist_v(source, ds, vs) for ds in doors_s
    }
    dist_from_target_door = {
        dt: space.dist_v(target, dt, vt) for dt in doors_t
    }

    best = _direct_candidate(vs, vt, source, target)
    for ds in doors_s:
        dist1 = dist_to_source_door[ds]
        if math.isinf(dist1):
            continue
        pending: Set[int] = {
            dt
            for dt in doors_t
            if dist1 + dist_from_target_door[dt] < best
        }
        if not pending:
            continue

        # Algorithm 3's inner expansion (lines 15-36): Dijkstra over doors
        # from ds, harvesting destination doors as they settle.
        dist: Dict[int, float] = {ds: 0.0}
        settled: Set[int] = set()
        heap: list = [(0.0, ds)]
        while heap:
            if deadline is not None:
                deadline.check("pt2pt distance")
            d, current = heapq.heappop(heap)
            if current in settled:
                continue
            settled.add(current)
            if current in pending:
                pending.discard(current)
                candidate = dist1 + d + dist_from_target_door[current]
                if candidate < best:
                    best = candidate
                if not pending:
                    break
            if d + dist1 >= best:
                # Everything still on the heap is at least this far: no
                # remaining destination can improve on the best.
                break
            for partition_id in topology.enterable_partitions(current):
                for next_door in topology.leaveable_doors(partition_id):
                    if next_door in settled:
                        continue
                    weight = graph.fd2d(partition_id, current, next_door)
                    if math.isinf(weight):
                        continue
                    candidate = d + weight
                    if candidate < dist.get(next_door, math.inf):
                        dist[next_door] = candidate
                        heapq.heappush(heap, (candidate, next_door))
    return best


def pt2pt_distance_memoized(
    space: IndoorSpace,
    source: Point,
    target: Point,
    deadline: Optional["Deadline"] = None,
) -> float:
    """Algorithm 4: Algorithm 3 plus cross-iteration reuse of door-to-door
    distances via the ``dists[.][.]`` table and the ``prev`` walk."""
    vs, vt = _hosts(space, source, target)
    if deadline is not None:
        deadline.check("pt2pt distance")
    graph = space.distance_graph
    topology = space.topology

    doors_s = _source_doors(space, vs, vt)
    doors_t = sorted(topology.enterable_doors(vt.partition_id))
    dist_to_source_door = {ds: space.dist_v(source, ds, vs) for ds in doors_s}
    dist_from_target_door = {dt: space.dist_v(target, dt, vt) for dt in doors_t}
    source_door_set = set(doors_s)

    # dists[(d_i, d_j)]: known shortest door-to-door distance from source
    # door d_i to destination door d_j (the paper's 2-D array, lines 9-10).
    dists: Dict[Tuple[int, int], float] = {}

    best = _direct_candidate(vs, vt, source, target)
    for ds in doors_s:  # ascending door ids (paper footnote 4)
        dist1 = dist_to_source_door[ds]
        if math.isinf(dist1):
            continue
        pending: Set[int] = {
            dt
            for dt in doors_t
            if (ds, dt) not in dists
            and dist1 + dist_from_target_door[dt] < best
        }
        if not pending:
            continue

        dist: Dict[int, float] = {ds: 0.0}
        prev: Dict[int, Optional[Tuple[int, int]]] = {ds: None}
        settled: Set[int] = set()
        heap: list = [(0.0, ds)]
        while heap:
            if deadline is not None:
                deadline.check("pt2pt distance")
            d, current = heapq.heappop(heap)
            if current in settled:
                continue
            settled.add(current)

            if current in pending:
                pending.discard(current)
                # The paper's pseudocode omits this write, but its forward
                # optimisation (line 42) reads dists[d_i][d_j] for doors that
                # were processed as source doors — which is only populated if
                # settling a destination records the exact distance here.
                dists[(ds, current)] = d
                candidate = dist1 + d + dist_from_target_door[current]
                if candidate < best:
                    best = candidate
                # Backward optimisation (lines 31-37): walk the shortest-path
                # tree back towards ds; every not-yet-processed source door on
                # the way knows its distance to `current` as a difference of
                # labels (subpaths of shortest paths are shortest paths).
                step = prev[current]
                while step is not None:
                    _, previous_door = step
                    if previous_door == ds:
                        break
                    if previous_door in source_door_set and previous_door > ds:
                        via = dist[current] - dist[previous_door]
                        dists[(previous_door, current)] = via
                        candidate = (
                            dist_to_source_door[previous_door]
                            + via
                            + dist_from_target_door[current]
                        )
                        if candidate < best:
                            best = candidate
                    step = prev[previous_door]
                if not pending:
                    break

            elif current in source_door_set and current < ds:
                # Forward optimisation (paper lines 40-45): `current` was
                # already processed as a source door, so chain its memoised
                # distances through to the pending destinations.  The paper
                # then `break`s unconditionally, assuming every remaining
                # shortest path from ds runs through `current`; that
                # assumption fails on general topologies (a destination door
                # can be reachable more cheaply around `current`), so we keep
                # the chaining but rely on the provably safe bound below to
                # stop the expansion.  See DESIGN.md, "Algorithm 4 fix".
                for dt in pending:
                    via = dists.get((current, dt), math.inf)
                    if math.isinf(via):
                        continue
                    candidate = dist1 + d + via + dist_from_target_door[dt]
                    if candidate < best:
                        best = candidate

            if d + dist1 >= best:
                break
            for partition_id in topology.enterable_partitions(current):
                for next_door in topology.leaveable_doors(partition_id):
                    if next_door in settled:
                        continue
                    weight = graph.fd2d(partition_id, current, next_door)
                    if math.isinf(weight):
                        continue
                    candidate = d + weight
                    if candidate < dist.get(next_door, math.inf):
                        dist[next_door] = candidate
                        prev[next_door] = (partition_id, current)
                        heapq.heappush(heap, (candidate, next_door))
    return best


def pt2pt_distance(
    space: IndoorSpace,
    source: Point,
    target: Point,
    deadline: Optional["Deadline"] = None,
) -> float:
    """The library default position-to-position distance: Algorithm 4.

    All three algorithms are exact in this implementation (Algorithm 4's
    forward short-circuit is replaced by a provably safe stopping bound —
    see DESIGN.md, "Algorithm 4 fix"); Algorithm 4 reuses the most work and
    is the fastest on multi-door source partitions, so it is the default.

    ``deadline`` is an optional cooperative time budget checked in the
    expansion loops; see :mod:`repro.runtime.deadline`.
    """
    return pt2pt_distance_memoized(space, source, target, deadline=deadline)


def pt2pt_path(space: IndoorSpace, source: Point, target: Point) -> IndoorPath:
    """Position-to-position shortest path with its door/partition sequence.

    One multi-target door search per source door (Algorithm 3's sharing),
    keeping the ``prev`` arrays so the winning pair's concrete path can be
    reconstructed afterwards.
    """
    vs, vt = _hosts(space, source, target)
    graph = space.distance_graph
    topology = space.topology

    best = _direct_candidate(vs, vt, source, target)
    best_path: Optional[IndoorPath] = None
    if not math.isinf(best):
        best_path = IndoorPath(best, source, target, (), (vs.partition_id,))

    doors_t = sorted(topology.enterable_doors(vt.partition_id))
    dist_from_target_door = {dt: space.dist_v(target, dt, vt) for dt in doors_t}
    winner: Optional[Tuple[int, int, DoorSearchResult]] = None
    for ds in sorted(topology.leaveable_doors(vs.partition_id)):
        dist1 = space.dist_v(source, ds, vs)
        if math.isinf(dist1):
            continue
        result = door_to_door_search(graph, ds, targets=set(doors_t))
        for dt in doors_t:
            dist2 = dist_from_target_door[dt]
            if math.isinf(dist2):
                continue
            candidate = dist1 + result.distance_to(dt) + dist2
            if candidate < best:
                best = candidate
                winner = (ds, dt, result)

    if winner is not None:
        ds, dt, result = winner
        doors = [dt]
        partitions: List[int] = []
        cursor = dt
        while True:
            step = result.prev[cursor]
            if step is None:
                break
            partition_id, previous_door = step
            partitions.append(partition_id)
            doors.append(previous_door)
            cursor = previous_door
        doors.reverse()
        partitions.reverse()
        best_path = IndoorPath(
            best,
            source,
            target,
            tuple(doors),
            (vs.partition_id, *partitions, vt.partition_id),
        )
    if best_path is None:
        return IndoorPath(math.inf, source, target, (), ())
    return best_path
