"""Graphviz DOT export of the accessibility graph.

Renders G_accs (partitions = nodes, door movements = edges) for inspection
with standard graph tooling.  Bidirectional doors collapse to one undirected
edge (``dir=both``); one-way doors keep their arrow.  Node shape follows the
partition kind.
"""

from __future__ import annotations

from typing import Dict

from repro.model.builder import IndoorSpace
from repro.model.entities import PartitionKind

_SHAPES: Dict[PartitionKind, str] = {
    PartitionKind.ROOM: "box",
    PartitionKind.HALLWAY: "ellipse",
    PartitionKind.STAIRCASE: "parallelogram",
    PartitionKind.OUTDOOR: "doubleoctagon",
}


def _quote(label: str) -> str:
    return '"' + label.replace('"', '\\"') + '"'


def to_dot(space: IndoorSpace, name: str = "indoor") -> str:
    """The accessibility graph as a Graphviz ``digraph`` document."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for partition in space.partitions():
        lines.append(
            f"  p{partition.partition_id} "
            f"[label={_quote(partition.label)} "
            f"shape={_SHAPES[partition.kind]}];"
        )
    topology = space.topology
    for door_id in topology.door_ids:
        label = _quote(space.door(door_id).label)
        edges = sorted(topology.d2p(door_id))
        if topology.is_bidirectional(door_id):
            source, target = edges[0]
            lines.append(
                f"  p{source} -> p{target} [label={label} dir=both];"
            )
        else:
            ((source, target),) = edges
            lines.append(
                f"  p{source} -> p{target} "
                f"[label={label} color=orangered];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
