"""Tests for the SVG floor-plan renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.distance import pt2pt_path
from repro.exceptions import GeometryError
from repro.geometry import Point
from repro.index import IndoorObject
from repro.model.figure1 import P, Q, build_figure1
from repro.viz import render_svg, save_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def space():
    return build_figure1()


def parse(svg):
    return ET.fromstring(svg)


def elements_with_class(root, name):
    return [
        el for el in root.iter() if el.get("class", "").startswith(name)
    ]


class TestRenderSvg:
    def test_valid_xml_with_size(self, space):
        root = parse(render_svg(space, width=640))
        assert root.tag == f"{SVG_NS}svg"
        assert root.get("width") == "640"
        assert int(root.get("height")) > 0

    def test_one_polygon_per_partition_plus_obstacles(self, space):
        root = parse(render_svg(space))
        partitions = elements_with_class(root, "partition")
        obstacles = elements_with_class(root, "obstacle")
        assert len(partitions) == space.num_partitions
        assert len(obstacles) == 1  # room 22's exhibition stand

    def test_doors_rendered_with_one_way_colour(self, space):
        root = parse(render_svg(space))
        doors = elements_with_class(root, "door")
        assert len(doors) == space.num_doors
        one_way = [d for d in doors if d.get("stroke") == "#ea580c"]
        assert len(one_way) == 2  # d12 and d15

    def test_objects_and_query_overlay(self, space):
        objects = [IndoorObject(1, Point(6.5, 9.0)), IndoorObject(2, Point(1, 5))]
        svg = render_svg(space, objects=objects, query=(P, 8.0))
        root = parse(svg)
        assert len(elements_with_class(root, "object")) == 2
        assert len(elements_with_class(root, "query")) == 2  # disc + center

    def test_objects_on_other_floors_are_skipped(self, space):
        svg = render_svg(space, objects=[IndoorObject(1, Point(5, 5, floor=3))])
        assert elements_with_class(parse(svg), "object") == []

    def test_path_overlay(self, space):
        path = pt2pt_path(space, P, Q)
        root = parse(render_svg(space, paths=[path]))
        polylines = elements_with_class(root, "path")
        assert len(polylines) == 1
        # Waypoints: source, d15, d12, target -> four coordinate pairs.
        assert len(polylines[0].get("points").split()) == 4

    def test_unreachable_path_is_skipped(self, space):
        from repro.distance.path import IndoorPath
        import math

        dead = IndoorPath(math.inf, P, Q, (), ())
        root = parse(render_svg(space, paths=[dead]))
        assert elements_with_class(root, "path") == []

    def test_labels_toggle(self, space):
        with_labels = parse(render_svg(space, labels=True))
        without = parse(render_svg(space, labels=False))
        assert len(list(with_labels.iter(f"{SVG_NS}text"))) == space.num_partitions
        assert list(without.iter(f"{SVG_NS}text")) == []

    def test_empty_floor_raises(self, space):
        with pytest.raises(GeometryError):
            render_svg(space, floor=7)

    def test_multi_floor_building_renders_each_floor(self):
        from repro.synthetic import BuildingConfig, generate_building

        building = generate_building(BuildingConfig(floors=2, rooms_per_floor=4))
        for floor in (0, 1):
            root = parse(render_svg(building.space, floor=floor))
            assert len(elements_with_class(root, "partition")) > 0

    def test_save_svg(self, space, tmp_path):
        target = tmp_path / "plan.svg"
        save_svg(render_svg(space), target)
        assert target.exists()
        parse(target.read_text())
