"""REP006 — global lock-acquisition ordering.

Two threads that take the same pair of locks in opposite orders can
deadlock; no per-module rule can see that, because the two halves of the
inversion usually live in different files (the supervisor monitor
holding ``ShardSupervisor._lock`` while poking an incarnation, reconfig
holding the coordinator lock while fencing the router...).

The checker reads the project-wide lock graph from
:mod:`repro.analysis.lint.callgraph`: an edge ``A -> B`` means some
code path can attempt ``B`` while holding ``A``, either syntactically
nested or through any resolved call chain.  Any cycle in that graph is
a potential deadlock and is reported on **every** edge of the cycle,
each finding carrying the full cycle and both witness call paths, so a
``# repro: noqa REP006`` suppression must be argued at each
participating acquisition site separately.

Self-edges are skipped for reentrant kinds (``RLock``, ``Condition``)
and for cross-instance acquisitions (``incarnation._lock`` taken from
supervisor code is another instance's lock, not a re-take).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.analysis.lint.callgraph import (
    LockId,
    ProjectGraph,
    build_graph,
    lock_label,
    witness_chain,
)
from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import Checker, register

#: Same reporting scope as REP001/REP007: the concurrent subsystems.
_SCOPE_PREFIXES = (
    "repro.serve",
    "repro.persist",
    "repro.shard",
    "repro.labels",
    "repro.overload",
    "repro.runtime",
)


@register
class LockOrderChecker(Checker):
    rule_id = "REP006"
    summary = "lock-acquisition graph must be cycle-free (deadlock risk)"

    def __init__(self) -> None:
        self._by_module: Dict[str, List[Finding]] = {}

    def scan(self, project: ProjectContext) -> None:
        graph = build_graph(project)
        module_by_path = {m.relpath: m for m in project.modules}
        for cycle in graph.cycles():
            for finding in self._cycle_findings(graph, cycle, module_by_path):
                self._by_module.setdefault(finding.path, []).append(finding)

    def check(
        self, module: ModuleContext, project: ProjectContext
    ) -> Iterable[Finding]:
        return self._by_module.get(module.relpath, [])

    def _cycle_findings(
        self,
        graph: ProjectGraph,
        cycle: List[LockId],
        module_by_path: Dict[str, ModuleContext],
    ) -> Iterable[Finding]:
        if len(cycle) == 1:
            edges = [(cycle[0], cycle[0])]
        else:
            edges = [
                (src, dst)
                for src in cycle
                for dst in cycle
                if src != dst and (src, dst) in graph.edges
            ]
        ring = " -> ".join(lock_label(lock) for lock in cycle)
        ring += f" -> {lock_label(cycle[0])}"
        witness_lines = "; ".join(
            f"{lock_label(src)}->{lock_label(dst)} via "
            f"{witness_chain(graph.edges[(src, dst)].path)} "
            f"({graph.edges[(src, dst)].relpath}:"
            f"{graph.edges[(src, dst)].line})"
            for src, dst in edges
            if (src, dst) in graph.edges
        )
        for src, dst in edges:
            edge = graph.edges.get((src, dst))
            if edge is None:
                continue
            module = module_by_path.get(edge.relpath)
            if module is None:
                continue
            if not module.module_name.startswith(_SCOPE_PREFIXES):
                continue
            yield self.finding(
                module,
                edge.line,
                0,
                f"lock-order cycle: {ring} — this site takes "
                f"{lock_label(dst)} while holding {lock_label(src)} "
                f"(via {witness_chain(edge.path)})",
                hint=(
                    "pick one global order for these locks and restructure "
                    f"the losing side; witnesses: {witness_lines}"
                ),
            )
