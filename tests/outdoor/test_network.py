"""Tests for the road network substrate."""

import math

import pytest

from repro.exceptions import ModelError, UnknownEntityError
from repro.geometry import Point
from repro.outdoor import RoadNetwork


@pytest.fixture
def grid_network():
    """A 3x3 block grid with unit spacing 10."""
    network = RoadNetwork()
    for row in range(3):
        for col in range(3):
            network.add_node(row * 3 + col, Point(col * 10, row * 10))
    for row in range(3):
        for col in range(3):
            nid = row * 3 + col
            if col < 2:
                network.add_edge(nid, nid + 1)
            if row < 2:
                network.add_edge(nid, nid + 3)
    return network


class TestConstruction:
    def test_duplicate_node_raises(self):
        network = RoadNetwork()
        network.add_node(1, Point(0, 0))
        with pytest.raises(ModelError):
            network.add_node(1, Point(1, 1))

    def test_edge_to_unknown_node_raises(self):
        network = RoadNetwork()
        network.add_node(1, Point(0, 0))
        with pytest.raises(UnknownEntityError):
            network.add_edge(1, 2)

    def test_self_loop_raises(self):
        network = RoadNetwork()
        network.add_node(1, Point(0, 0))
        with pytest.raises(ModelError):
            network.add_edge(1, 1)

    def test_negative_length_raises(self):
        network = RoadNetwork()
        network.add_node(1, Point(0, 0))
        network.add_node(2, Point(10, 0))
        with pytest.raises(ModelError):
            network.add_edge(1, 2, length=-5)

    def test_default_length_is_euclidean(self, grid_network):
        assert grid_network.distance(0, 1) == pytest.approx(10.0)

    def test_explicit_length_overrides(self):
        network = RoadNetwork()
        network.add_node(1, Point(0, 0))
        network.add_node(2, Point(10, 0))
        network.add_edge(1, 2, length=42.0)
        assert network.distance(1, 2) == pytest.approx(42.0)


class TestShortestPaths:
    def test_manhattan_route(self, grid_network):
        distance, path = grid_network.shortest_path(0, 8)
        assert distance == pytest.approx(40.0)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == 5

    def test_same_node(self, grid_network):
        assert grid_network.distance(4, 4) == 0.0

    def test_disconnected(self):
        network = RoadNetwork()
        network.add_node(1, Point(0, 0))
        network.add_node(2, Point(10, 0))
        distance, path = network.shortest_path(1, 2)
        assert math.isinf(distance)
        assert path == []

    def test_one_way_street(self):
        network = RoadNetwork()
        network.add_node(1, Point(0, 0))
        network.add_node(2, Point(10, 0))
        network.add_edge(1, 2, bidirectional=False)
        assert network.distance(1, 2) == pytest.approx(10.0)
        assert math.isinf(network.distance(2, 1))

    def test_unknown_node_raises(self, grid_network):
        with pytest.raises(UnknownEntityError):
            grid_network.distance(0, 99)

    def test_nearest_node(self, grid_network):
        assert grid_network.nearest_node(Point(11, 1)) == 1
        assert grid_network.nearest_node(Point(9, 9)) == 4
        assert RoadNetwork().nearest_node(Point(0, 0)) is None
