"""Turn-by-turn directions from indoor shortest paths.

Splits an :class:`~repro.distance.path.IndoorPath` into legs — one per
partition traversed — with exact distances (the legs sum to the path
distance), and renders them as human-readable instructions using partition
and door display names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.distance.path import IndoorPath
from repro.exceptions import QueryError
from repro.model.builder import IndoorSpace


@dataclass(frozen=True)
class RouteLeg:
    """One walking leg of a route.

    Attributes:
        partition_id: the partition this leg crosses.
        distance: walking distance of the leg.
        exit_door: the door this leg ends at (``None`` for the final leg,
            which ends at the destination position).
    """

    partition_id: int
    distance: float
    exit_door: Optional[int]


def route_legs(space: IndoorSpace, path: IndoorPath) -> List[RouteLeg]:
    """Decompose a reachable path into per-partition legs.

    The leg distances sum to ``path.distance`` exactly: the first leg is the
    intra-partition walk from the source to the first door, middle legs are
    the f_d2d crossings, and the last leg walks from the final door to the
    destination.
    """
    if not path.is_reachable:
        raise QueryError("cannot decompose an unreachable path")
    graph = space.distance_graph
    if not path.doors:
        return [RouteLeg(path.partitions[0], path.distance, None)]

    legs: List[RouteLeg] = []
    host = space.partition(path.partitions[0])
    first = host.intra_distance(path.source, space.door(path.doors[0]).midpoint)
    legs.append(RouteLeg(host.partition_id, first, path.doors[0]))
    for i in range(1, len(path.doors)):
        partition_id = path.partitions[i]
        legs.append(
            RouteLeg(
                partition_id,
                graph.fd2d(partition_id, path.doors[i - 1], path.doors[i]),
                path.doors[i],
            )
        )
    last_partition = space.partition(path.partitions[-1])
    last = last_partition.intra_distance(
        space.door(path.doors[-1]).midpoint, path.target
    )
    legs.append(RouteLeg(last_partition.partition_id, last, None))
    return legs


def directions(space: IndoorSpace, path: IndoorPath) -> List[str]:
    """Human-readable walking instructions for a path.

    Example output::

        Walk 2.7 m through room 13 to d15.
        Pass through d15; walk 2.2 m through room 12 to d12.
        Pass through d12; walk 0.8 m through hallway 10 to your destination.

    Unreachable paths yield a single "no route" line.
    """
    if not path.is_reachable:
        return ["No route exists to the destination."]
    steps: List[str] = []
    previous_door: Optional[int] = None
    for leg in route_legs(space, path):
        partition = space.partition(leg.partition_id)
        goal = (
            space.door(leg.exit_door).label
            if leg.exit_door is not None
            else "your destination"
        )
        sentence = f"walk {leg.distance:.1f} m through {partition.label} to {goal}."
        sentence = (
            sentence[0].upper() + sentence[1:]
            if previous_door is None
            else f"Pass through {space.door(previous_door).label}; " + sentence
        )
        steps.append(sentence)
        previous_door = leg.exit_door
    return steps
