"""Shared fixtures for the sharded-serving tests.

Everything runs over the Figure-1 space: single-floor, so the placement
takes the partition-split layout and three shards still produce real
cross-shard scatter-gather.  Workers fork (not spawn) to keep process
startup in the milliseconds — the same trade the chaos campaigns make.
"""

import random

import pytest

from repro.index import IndexFramework, IndoorObject
from repro.model.figure1 import build_figure1
from repro.shard import ShardedQueryService
from tests.queries.conftest import random_point_in


@pytest.fixture(scope="module")
def shard_framework_fixture():
    """Figure-1 space + 48 deterministic objects, fully indexed."""
    space = build_figure1()
    rng = random.Random(1311)
    indoor_ids = [p for p in space.partition_ids if p != 0]
    objects = [
        IndoorObject(i, random_point_in(space, rng, indoor_ids))
        for i in range(48)
    ]
    return IndexFramework.build(space, objects)


@pytest.fixture(scope="module")
def shard_positions(shard_framework_fixture):
    """A deterministic pool of valid query positions."""
    space = shard_framework_fixture.space
    rng = random.Random(23)
    indoor_ids = [p for p in space.partition_ids if p != 0]
    return [random_point_in(space, rng, indoor_ids) for _ in range(10)]


def make_service(framework, **overrides):
    """A ShardedQueryService with test-friendly supervision timings."""
    options = dict(
        framework=framework,
        shards=3,
        client_threads=4,
        shard_timeout_s=2.0,
        cache_capacity=32,
        heartbeat_interval=0.05,
        liveness_timeout=1.0,
        start_timeout=30.0,
        restart_backoff=0.05,
        start_method="fork",
    )
    options.update(overrides)
    return ShardedQueryService(**options)


@pytest.fixture(scope="module")
def sharded_service(shard_framework_fixture):
    """One healthy 3-shard fleet shared by the read-only tests."""
    service = make_service(shard_framework_fixture)
    service.start(wait=True)
    yield service
    service.shutdown()
