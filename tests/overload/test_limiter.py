"""AIMD adaptive concurrency limiter unit tests."""

import pytest

from repro.overload import AdaptiveConcurrencyLimiter
from repro.serve import MetricsRegistry


def make_limiter(**overrides):
    options = dict(
        slo_ms=100.0,
        initial_limit=16,
        min_limit=4,
        max_limit=64,
        adjust_every=8,
        increase_by=2,
        decrease_factor=0.5,
        brake_factor=3.0,
    )
    options.update(overrides)
    return AdaptiveConcurrencyLimiter(**options)


class TestAdjustment:
    def test_healthy_window_increases_additively(self):
        limiter = make_limiter()
        for _ in range(8):
            limiter.observe(10.0)
        assert limiter.limit == 18

    def test_breached_window_decreases_multiplicatively(self):
        limiter = make_limiter()
        for _ in range(8):
            limiter.observe(200.0)  # p99 far above the SLO
        assert limiter.limit == 8

    def test_limit_never_leaves_its_bounds(self):
        limiter = make_limiter()
        for _ in range(20 * 8):
            limiter.observe(500.0)
        assert limiter.limit == 4
        for _ in range(100 * 8):
            limiter.observe(1.0)
        assert limiter.limit == 64

    def test_mixed_window_adjusts_on_p99_not_mean(self):
        # One bad sample in a window of 8: nearest-rank p99 of 8 samples
        # is the max, so a single outlier above the SLO decreases.
        limiter = make_limiter()
        for _ in range(7):
            limiter.observe(5.0)
        limiter.observe(150.0)
        assert limiter.limit == 8

    def test_brake_fires_immediately_on_extreme_latency(self):
        limiter = make_limiter()
        limiter.observe(301.0)  # > brake_factor * slo: no window wait
        assert limiter.limit == 8

    def test_brake_fires_at_most_once_per_window(self):
        limiter = make_limiter()
        limiter.observe(301.0)
        limiter.observe(301.0)  # same window: no second brake
        assert limiter.limit == 8

    def test_counters_track_adjustments(self):
        metrics = MetricsRegistry()
        limiter = make_limiter(metrics=metrics)
        for _ in range(8):
            limiter.observe(10.0)
        for _ in range(8):
            limiter.observe(200.0)
        counters = metrics.snapshot()["counters"]
        assert counters["overload.limit_increased"] == 1
        assert counters["overload.limit_decreased"] == 1


class TestSnapshotAndOccupancy:
    def test_snapshot_shape(self):
        limiter = make_limiter()
        for _ in range(8):
            limiter.observe(10.0)
        snapshot = limiter.snapshot()
        assert snapshot["limit"] == 18
        assert snapshot["slo_ms"] == 100.0
        assert snapshot["increases"] == 1
        assert snapshot["decreases"] == 0
        assert snapshot["p99_ms"] == 10.0

    def test_occupancy_is_relative_to_the_live_limit(self):
        limiter = make_limiter()
        assert limiter.occupancy(8) == pytest.approx(0.5)
        for _ in range(8):
            limiter.observe(200.0)
        assert limiter.occupancy(8) == pytest.approx(1.0)


class TestValidation:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            make_limiter(min_limit=32, initial_limit=16)
        with pytest.raises(ValueError):
            make_limiter(max_limit=8, initial_limit=16)
        with pytest.raises(ValueError):
            make_limiter(slo_ms=0.0)
        with pytest.raises(ValueError):
            make_limiter(decrease_factor=1.0)
