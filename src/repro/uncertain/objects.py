"""Uncertain indoor objects: discrete position distributions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import ModelError
from repro.geometry import Point

#: Tolerance when checking that sample probabilities sum to one.
_PROBABILITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class UncertainObject:
    """An object whose position is a discrete probability distribution.

    Attributes:
        object_id: unique non-negative integer.
        samples: ``(position, probability)`` pairs; probabilities are
            positive and sum to 1.
        payload: free-form label.
    """

    object_id: int
    samples: Tuple[Tuple[Point, float], ...]
    payload: str = ""

    def __post_init__(self) -> None:
        if self.object_id < 0:
            raise ModelError(f"object id must be non-negative, got {self.object_id}")
        if not self.samples:
            raise ModelError("an uncertain object needs at least one sample")
        total = 0.0
        for position, probability in self.samples:
            if not isinstance(position, Point):
                raise ModelError(f"sample position must be a Point: {position!r}")
            if probability <= 0:
                raise ModelError(
                    f"sample probabilities must be positive, got {probability}"
                )
            total += probability
        if abs(total - 1.0) > _PROBABILITY_TOLERANCE:
            raise ModelError(
                f"sample probabilities must sum to 1, got {total:.6f}"
            )

    @classmethod
    def certain(
        cls, object_id: int, position: Point, payload: str = ""
    ) -> "UncertainObject":
        """An object with a single, certain position (probability 1)."""
        return cls(object_id, ((position, 1.0),), payload)

    @property
    def sample_count(self) -> int:
        """How many candidate positions the distribution has."""
        return len(self.samples)

    def expected_position(self) -> Point:
        """The probability-weighted mean position (same-floor samples only;
        raises for distributions spanning floors, where a mean position is
        meaningless)."""
        floors = {p.floor for p, _ in self.samples}
        if len(floors) != 1:
            raise ModelError(
                "expected_position is undefined across floors "
                f"(samples span floors {sorted(floors)})"
            )
        x = sum(p.x * w for p, w in self.samples)
        y = sum(p.y * w for p, w in self.samples)
        return Point(x, y, next(iter(floors)))
