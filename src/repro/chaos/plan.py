"""The fault-schedule DSL: *what* goes wrong, *when*, composably.

A :class:`FaultPlan` is an ordered list of :class:`FaultAction` entries,
each pinned to a workload operation index — never to a wall clock, so a
plan replays identically from the same seed.  Actions compose the existing
:mod:`repro.runtime.faults` injectors with the chaos-only ones
(per-call latency, crash points, topology mutations, restarts):

==================  =======================================================
action              params
==================  =======================================================
``corrupt_md2d``    ``mode`` / ``count`` / ``seed`` — poison M_d2d cells
``drop_dpt``        ``count`` / ``seed`` — remove DPT records
``flaky_index``     ``fail_after`` — index dies after N lookups
``latency``         ``per_call_ms`` — slow every distance-index call
``flip_snapshot``   ``count`` / ``seed`` — bit-rot the newest generation
``heal``            ``label`` (empty = all) — undo injected faults
``checkpoint``      write a snapshot generation, truncate the WAL
``remove_door``     ``id`` — topology mutation through the WAL recorder
``add_door``        ``id`` / ``geometry`` / ``connects`` / ``one_way``
``arm_crash``       ``point`` / ``skip`` — arm a persistence crash point
``restart``         kill the service (no final snapshot), recover fresh
``kill_shard``      ``shard`` / ``cold`` — SIGKILL one worker process
``hang_shard``      ``shard`` / ``seconds`` — stall a worker's event loop
``corrupt_shard_snapshot``  ``shard`` / ``count`` / ``seed`` — bit-rot one
                    shard's private snapshot
==================  =======================================================

The three ``*_shard`` actions only make sense against the multi-process
:class:`~repro.shard.service.ShardedQueryService` tier and are rejected
by single-process campaigns; the injected-fault actions conversely only
apply single-process (see :class:`~repro.chaos.runner.CampaignRunner`).
Topology mutations (``remove_door`` / ``add_door``) and ``arm_crash``
work in *both* modes: against the sharded tier they route through the
:class:`~repro.shard.reconfig.ReconfigRecorder` and so drive a live
epoch-fenced rolling update, and ``arm_crash`` may arm the
reconfiguration crash points (``reconfig.prepare.torn``,
``reconfig.commit.torn``, ``reconfig.kill_after_prepare``) to tear a
round mid-flight.

Injected-fault actions take a ``label`` so a later ``heal`` can target
them.  Plans serialise to JSON (:meth:`FaultPlan.to_json_dict`) and ride
inside the :class:`~repro.chaos.report.CampaignReport`, which is what
makes ``repro chaos replay`` possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: Every action name the runner understands.
ACTIONS = (
    "corrupt_md2d",
    "drop_dpt",
    "flaky_index",
    "latency",
    "flip_snapshot",
    "heal",
    "checkpoint",
    "remove_door",
    "add_door",
    "arm_crash",
    "restart",
    "kill_shard",
    "hang_shard",
    "corrupt_shard_snapshot",
)

#: Actions that target one worker of the sharded serving tier.
SHARD_ACTIONS = ("kill_shard", "hang_shard", "corrupt_shard_snapshot")

#: Actions that inject a revertable fault and therefore take a label.
INJECTING_ACTIONS = (
    "corrupt_md2d", "drop_dpt", "flaky_index", "latency", "flip_snapshot",
)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled step of a chaos campaign.

    Attributes:
        at_op: the workload operation index this fires *before*.
        action: one of :data:`ACTIONS`.
        params: JSON-safe action parameters (see module docstring).
        label: handle name for injected faults, referenced by ``heal``.
    """

    at_op: int
    action: str
    params: Dict = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if self.at_op < 0:
            raise ValueError(f"at_op must be >= 0, got {self.at_op}")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r}; expected one of {ACTIONS}"
            )

    def to_dict(self) -> Dict:
        """JSON-safe representation."""
        return {
            "at_op": self.at_op,
            "action": self.action,
            "params": dict(self.params),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "FaultAction":
        """Inverse of :meth:`to_dict`."""
        return cls(
            at_op=int(raw["at_op"]),
            action=raw["action"],
            params=dict(raw.get("params", {})),
            label=raw.get("label", ""),
        )


class FaultPlan:
    """An immutable, op-indexed fault schedule.

    Actions sharing an op index fire in their listed order, before that
    operation executes.
    """

    def __init__(self, actions: Sequence[FaultAction]) -> None:
        self.actions: Tuple[FaultAction, ...] = tuple(
            sorted(actions, key=lambda a: a.at_op)
        )
        self._by_op: Dict[int, List[FaultAction]] = {}
        for action in self.actions:
            self._by_op.setdefault(action.at_op, []).append(action)

    def __len__(self) -> int:
        return len(self.actions)

    def actions_at(self, op_index: int) -> List[FaultAction]:
        """The actions scheduled to fire before operation ``op_index``."""
        return list(self._by_op.get(op_index, ()))

    @property
    def last_op(self) -> int:
        """The highest op index any action is pinned to (-1 when empty)."""
        return self.actions[-1].at_op if self.actions else -1

    def to_json_dict(self) -> List[Dict]:
        """The plan as a JSON-safe list (embeds in a campaign report)."""
        return [action.to_dict() for action in self.actions]

    @classmethod
    def from_json_dict(cls, raw: Sequence[Dict]) -> "FaultPlan":
        """Inverse of :meth:`to_json_dict`."""
        return cls([FaultAction.from_dict(entry) for entry in raw])


def standard_plan(duration_ops: int) -> FaultPlan:
    """The composed Figure-1 campaign the acceptance criteria describe.

    Scaled to ``duration_ops``, the timeline walks the stack through index
    corruption, mid-query index loss, a checkpoint, a topology mutation,
    injected latency, snapshot bit-rot, a torn-WAL crash inside a second
    mutation, a crash restart (which must quarantine the flipped
    generation and recover from the previous one plus the WAL), the
    mutation retried, and DPT record loss — with heals between phases so
    the service must *recover*, not merely survive.

    The door mutated is Figure 1's d24 (rooms 21–22): removing it leaves
    the rooms connected through d21/d22, so every object stays reachable
    and the differential oracle keeps a meaningful exact answer.
    """
    if duration_ops < 20:
        raise ValueError(
            f"standard plan needs duration_ops >= 20, got {duration_ops}"
        )

    def at(fraction: float) -> int:
        return max(1, int(duration_ops * fraction))

    door_24 = {
        "id": 24,
        "geometry": {"segment": [[16.0, 1.6, 0], [16.0, 2.4, 0]]},
        "connects": [21, 22],
        "one_way": False,
    }
    return FaultPlan([
        FaultAction(at(0.05), "corrupt_md2d",
                    {"mode": "nan", "count": 3, "seed": 11}, label="md2d"),
        FaultAction(at(0.15), "heal", {"label": "md2d"}),
        FaultAction(at(0.22), "flaky_index", {"fail_after": 40},
                    label="flaky"),
        FaultAction(at(0.30), "heal", {"label": "flaky"}),
        FaultAction(at(0.33), "checkpoint"),
        FaultAction(at(0.40), "remove_door", {"id": 24}),
        FaultAction(at(0.48), "latency", {"per_call_ms": 0.02}, label="lat"),
        FaultAction(at(0.52), "heal", {"label": "lat"}),
        FaultAction(at(0.55), "flip_snapshot", {"count": 3, "seed": 12},
                    label="flip"),
        FaultAction(at(0.62), "arm_crash", {"point": "wal.append.torn"}),
        FaultAction(at(0.63), "add_door", door_24),
        FaultAction(at(0.64), "restart"),
        FaultAction(at(0.72), "add_door", door_24),
        FaultAction(at(0.80), "drop_dpt", {"count": 2, "seed": 13},
                    label="dpt"),
        FaultAction(at(0.88), "heal", {"label": "dpt"}),
    ])


def shard_standard_plan(duration_ops: int, shards: int = 3) -> FaultPlan:
    """The shard-tier counterpart of :func:`standard_plan`.

    Scaled to ``duration_ops``, the timeline kills a warm worker (arena
    reattach rung), hangs another past its liveness deadline (supervisor
    must detect the stall and kill it), bit-rots the last shard's private
    snapshot and then cold-kills that shard — forcing the full restart
    ladder: arena gone, snapshot corrupt → quarantined → rebuild from the
    spec — and finally re-kills shard 0 to prove the restart budget
    survives repeated casualties.  Queries issued while a shard is down
    must surface as ``DEGRADED_CORRECTLY`` partials, never as silent
    wrong answers; the final probe then demands the fleet heals back to
    bit-exact service.
    """
    if duration_ops < 20:
        raise ValueError(
            f"shard plan needs duration_ops >= 20, got {duration_ops}"
        )
    if shards < 2:
        raise ValueError(f"shard plan needs shards >= 2, got {shards}")

    def at(fraction: float) -> int:
        return max(1, int(duration_ops * fraction))

    victim = shards - 1
    return FaultPlan([
        FaultAction(at(0.10), "kill_shard", {"shard": 0, "cold": False}),
        FaultAction(at(0.30), "hang_shard", {"shard": 1, "seconds": 1.5}),
        FaultAction(at(0.50), "corrupt_shard_snapshot",
                    {"shard": victim, "count": 3, "seed": 21}),
        FaultAction(at(0.55), "kill_shard", {"shard": victim, "cold": True}),
        FaultAction(at(0.75), "kill_shard", {"shard": 0, "cold": False}),
    ])


def shard_reconfig_plan(duration_ops: int, shards: int = 3) -> FaultPlan:
    """Live topology reconfiguration under fire: the rolling-update bar.

    Scaled to ``duration_ops``, the timeline drives four epoch-fenced
    rolling rounds through the :class:`~repro.shard.reconfig.
    ReconfigCoordinator` while the query stream keeps flowing:

    1. a clean rolling ``remove_door`` (the zero-downtime baseline);
    2. the door re-added with ``reconfig.commit.torn`` armed — the
       coordinator dies right after the first commit ack, leaving the
       fleet straddling two epochs until ``resume`` heals the round;
    3. the door removed again with ``reconfig.kill_after_prepare``
       armed — a worker is SIGKILLed between its prepare ack and its
       commit, and its respawn must rejoin at the new epoch;
    4. a worker hung past its liveness deadline immediately before the
       final ``add_door`` — the prepare hits a stalled (or
       just-restarted) worker and must fall to the rebuild rung.

    Like :func:`standard_plan`, every mutation toggles Figure 1's d24
    (rooms 21–22 stay connected through d21/d22), so the differential
    oracle keeps a meaningful exact answer at every epoch.  The
    acceptance bar: zero silent wrong answers, zero unrecovered
    incidents, and no merge that mixes epochs — while the topology is
    changing under the running fleet.
    """
    if duration_ops < 20:
        raise ValueError(
            f"reconfig plan needs duration_ops >= 20, got {duration_ops}"
        )
    if shards < 2:
        raise ValueError(f"reconfig plan needs shards >= 2, got {shards}")

    def at(fraction: float) -> int:
        return max(1, int(duration_ops * fraction))

    door_24 = {
        "id": 24,
        "geometry": {"segment": [[16.0, 1.6, 0], [16.0, 2.4, 0]]},
        "connects": [21, 22],
        "one_way": False,
    }
    return FaultPlan([
        FaultAction(at(0.10), "remove_door", {"id": 24}),
        FaultAction(at(0.30), "arm_crash",
                    {"point": "reconfig.commit.torn"}),
        FaultAction(at(0.30), "add_door", door_24),
        FaultAction(at(0.55), "arm_crash",
                    {"point": "reconfig.kill_after_prepare"}),
        FaultAction(at(0.55), "remove_door", {"id": 24}),
        FaultAction(at(0.75), "hang_shard", {"shard": 1, "seconds": 1.0}),
        FaultAction(at(0.78), "add_door", door_24),
    ])


def flash_crowd_plan(duration_ops: int, shards: int = 3) -> FaultPlan:
    """Shard casualties timed into the flash crowd's spike.

    The flash-crowd workload
    (:func:`~repro.synthetic.workload.flash_crowd_workload`) peaks
    between 40% and 60% of the op stream; this plan concentrates every
    casualty inside that window — a worker killed as the ramp climbs, a
    second hung right at the peak (the straggler the hedged
    scatter-gather exists for), and the first re-killed before the ramp
    is fully down.  The overload-control acceptance bar: zero silent
    wrong answers and zero unrecovered incidents *while the fleet is
    losing workers at the worst possible moment*.
    """
    if duration_ops < 20:
        raise ValueError(
            f"flash-crowd plan needs duration_ops >= 20, got {duration_ops}"
        )
    if shards < 2:
        raise ValueError(f"flash-crowd plan needs shards >= 2, got {shards}")

    def at(fraction: float) -> int:
        return max(1, int(duration_ops * fraction))

    return FaultPlan([
        FaultAction(at(0.35), "kill_shard", {"shard": 0, "cold": False}),
        FaultAction(at(0.45), "hang_shard", {"shard": 1, "seconds": 1.0}),
        FaultAction(at(0.55), "kill_shard",
                    {"shard": shards - 1, "cold": True}),
        FaultAction(at(0.65), "kill_shard", {"shard": 0, "cold": False}),
    ])
