"""Built-in checkers.

Importing this package registers every built-in rule with the registry;
:func:`repro.analysis.lint.registry.all_checkers` does that import for
you.  Each rule lives in its own module and is documented in
``docs/analysis.md``.
"""

from repro.analysis.lint.checkers.blocking import BlockingUnderLockChecker
from repro.analysis.lint.checkers.deadlines import DeadlinePropagationChecker
from repro.analysis.lint.checkers.determinism import DeterminismChecker
from repro.analysis.lint.checkers.epochflow import EpochFlowChecker
from repro.analysis.lint.checkers.exceptions import ExceptionHygieneChecker
from repro.analysis.lint.checkers.exports import ExportCoherenceChecker
from repro.analysis.lint.checkers.lockorder import LockOrderChecker
from repro.analysis.lint.checkers.locks import LockDisciplineChecker

__all__ = [
    "BlockingUnderLockChecker",
    "DeadlinePropagationChecker",
    "DeterminismChecker",
    "EpochFlowChecker",
    "ExceptionHygieneChecker",
    "ExportCoherenceChecker",
    "LockDisciplineChecker",
    "LockOrderChecker",
]
