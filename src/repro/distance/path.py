"""Value objects describing indoor shortest paths.

Algorithm 1 keeps a ``prev`` array precisely so that "the concrete shortest
path, in terms of indoor partitions and doors" can be reconstructed
(paper §III-D1); these classes are that reconstruction's result type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.geometry import Point


@dataclass(frozen=True)
class DoorPath:
    """A door-to-door shortest path.

    Attributes:
        distance: total walking distance (``inf`` when unreachable).
        doors: the door sequence, starting at the source door and ending at
            the target door.  A one-element sequence means source == target.
        partitions: the partitions crossed between consecutive doors;
            ``len(partitions) == len(doors) - 1``.
    """

    distance: float
    doors: Tuple[int, ...]
    partitions: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.doors and len(self.partitions) != len(self.doors) - 1:
            raise ValueError(
                f"door/partition sequence mismatch: {len(self.doors)} doors "
                f"but {len(self.partitions)} partitions"
            )

    @property
    def is_reachable(self) -> bool:
        """False when no path exists."""
        return not math.isinf(self.distance)

    @property
    def hops(self) -> int:
        """Number of partitions crossed."""
        return len(self.partitions)

    def describe(self) -> str:
        """``d15 -(v12)-> d12`` style rendering, for logs and examples."""
        if not self.is_reachable:
            return "<unreachable>"
        if len(self.doors) == 1:
            return f"d{self.doors[0]}"
        parts = [f"d{self.doors[0]}"]
        for door, partition in zip(self.doors[1:], self.partitions):
            parts.append(f"-(v{partition})-> d{door}")
        return " ".join(parts)


@dataclass(frozen=True)
class IndoorPath:
    """A position-to-position shortest path.

    Attributes:
        distance: total walking distance (``inf`` when unreachable).
        source: the start position.
        target: the end position.
        doors: the doors crossed, in order (empty when the whole path stays
            inside one partition).
        partitions: the partitions traversed, in order; always one more than
            ``doors`` for reachable paths (host partition, then one partition
            per door crossed).
    """

    distance: float
    source: Point
    target: Point
    doors: Tuple[int, ...]
    partitions: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.is_reachable and len(self.partitions) != len(self.doors) + 1:
            raise ValueError(
                f"door/partition sequence mismatch: {len(self.doors)} doors "
                f"but {len(self.partitions)} partitions"
            )

    @property
    def is_reachable(self) -> bool:
        """False when no path exists."""
        return not math.isinf(self.distance)

    def describe(self) -> str:
        """``p -> d15 -> d12 -> q (3.24 m)`` style rendering."""
        if not self.is_reachable:
            return "<unreachable>"
        steps = [str(self.source)]
        steps.extend(f"d{door}" for door in self.doors)
        steps.append(str(self.target))
        return " -> ".join(steps) + f" ({self.distance:.2f} m)"
