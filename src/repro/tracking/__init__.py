"""Continuous query monitoring over moving indoor objects.

Indoor populations move (the paper's §I services track passengers and
visitors), so one-shot queries are often the wrong shape: the boarding
reminder service wants to *keep watching* which passengers are far from
their gate.  This package maintains standing range and kNN queries under
object insertions, deletions, and moves:

* :class:`RangeMonitor` — a standing Q_r(q, r); emits ENTER/EXIT events;
* :class:`KnnMonitor` — a standing kNN(q, k); emits result-change events;
* :class:`TrackingSession` — routes object mutations to every registered
  monitor while keeping the underlying :class:`~repro.queries.engine.QueryEngine`
  store authoritative.

Monitors are exact: every maintained result equals what re-running the
corresponding one-shot query would return (property-tested).
"""

from repro.tracking.monitors import KnnMonitor, MonitorEvent, RangeMonitor
from repro.tracking.session import TrackingSession
from repro.tracking.trajectory import IndoorTrajectory, drive_session

__all__ = [
    "RangeMonitor",
    "KnnMonitor",
    "MonitorEvent",
    "TrackingSession",
    "IndoorTrajectory",
    "drive_session",
]
