"""The door-count baseline: Li & Lee's lattice-based "distance" [11].

The lattice-based semantic location model defines the *length* of an indoor
path as the number of doors it goes through, not the walking distance.  The
paper's Figure-1 motivating example shows why this falls short: from position
``p`` to position ``q`` the door-count model prefers the single-door route
through d13 even though the two-door route through d15 and d12 is a shorter
walk.

This module implements that baseline so examples, tests, and benchmarks can
reproduce the comparison.  Paths are ranked lexicographically by
``(doors crossed, walking distance)``: the walking distance is the tie-break,
and it is also reported so callers can measure how much extra walking the
door-count criterion costs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.geometry import Point
from repro.model.builder import IndoorSpace


@dataclass(frozen=True)
class DoorCountResult:
    """Outcome of a door-count shortest path computation.

    Attributes:
        doors_crossed: the path "length" in the Li & Lee sense.
        walking_distance: the actual walking distance of the chosen path —
            *not* necessarily the minimum walking distance between the two
            positions; comparing it against :func:`repro.distance.pt2pt_distance`
            quantifies the baseline's detour.
    """

    doors_crossed: int
    walking_distance: float

    @property
    def is_reachable(self) -> bool:
        return not math.isinf(self.walking_distance)


_UNREACHABLE = DoorCountResult(-1, math.inf)


def door_count_distance(
    space: IndoorSpace, source_door: int, target_door: int
) -> DoorCountResult:
    """Fewest-doors path between two doors (both doors included in the count),
    walking distance as tie-break."""
    graph = space.distance_graph
    topology = space.topology
    best: Dict[int, Tuple[int, float]] = {source_door: (1, 0.0)}
    heap: list = [(1, 0.0, source_door)]
    settled = set()
    while heap:
        count, walk, current = heapq.heappop(heap)
        if current in settled:
            continue
        settled.add(current)
        if current == target_door:
            return DoorCountResult(count, walk)
        for partition_id in topology.enterable_partitions(current):
            for next_door in topology.leaveable_doors(partition_id):
                if next_door in settled:
                    continue
                weight = graph.fd2d(partition_id, current, next_door)
                if math.isinf(weight):
                    continue
                label = (count + 1, walk + weight)
                if label < best.get(next_door, (1 << 30, math.inf)):
                    best[next_door] = label
                    heapq.heappush(heap, (label[0], label[1], next_door))
    return _UNREACHABLE


def door_count_pt2pt(
    space: IndoorSpace, source: Point, target: Point
) -> DoorCountResult:
    """Fewest-doors path between two indoor positions.

    A same-partition pair resolves to zero doors when directly connected
    (count 0 beats any door route lexicographically, as in the lattice
    model).
    """
    vs = space.require_host_partition(source)
    vt = space.require_host_partition(target)
    graph = space.distance_graph
    topology = space.topology

    best_key: Tuple[int, float] = (1 << 30, math.inf)
    best_result = _UNREACHABLE
    if vs.partition_id == vt.partition_id:
        direct = vs.intra_distance(source, target)
        if not math.isinf(direct):
            best_key = (0, direct)
            best_result = DoorCountResult(0, direct)

    best: Dict[int, Tuple[int, float]] = {}
    heap: list = []
    for ds in sorted(topology.leaveable_doors(vs.partition_id)):
        leg = space.dist_v(source, ds, vs)
        if math.isinf(leg):
            continue
        label = (1, leg)
        if label < best.get(ds, (1 << 30, math.inf)):
            best[ds] = label
            heapq.heappush(heap, (1, leg, ds))

    target_doors = {
        dt: space.dist_v(target, dt, vt)
        for dt in topology.enterable_doors(vt.partition_id)
    }
    settled = set()
    while heap:
        count, walk, current = heapq.heappop(heap)
        if current in settled:
            continue
        settled.add(current)
        final_leg = target_doors.get(current, math.inf)
        if not math.isinf(final_leg):
            key = (count, walk + final_leg)
            if key < best_key:
                best_key = key
                best_result = DoorCountResult(count, walk + final_leg)
        for partition_id in topology.enterable_partitions(current):
            for next_door in topology.leaveable_doors(partition_id):
                if next_door in settled:
                    continue
                weight = graph.fd2d(partition_id, current, next_door)
                if math.isinf(weight):
                    continue
                label = (count + 1, walk + weight)
                if label < best.get(next_door, (1 << 30, math.inf)):
                    best[next_door] = label
                    heapq.heappush(heap, (label[0], label[1], next_door))
    return best_result
