"""The distance-backend protocol behind :class:`IndexFramework`.

§IV of the paper fixes one concrete structure — the dense M_d2d / M_idx
matrix pair — but Algorithms 2-6, the serve/shard tiers, and the
scatter-gather pruning bounds only ever consume a narrow behavioural
surface: door-to-door distances, nearest-first door scans, and set-to-set
lower bounds.  :class:`DistanceBackend` names that surface so the
framework can swap the dense matrix for the 2-hop labeling of
:mod:`repro.labels` (IS-LABEL / TopCom style) without any query-layer
change.

Backends are selected by name at build time::

    IndexFramework.build(space, backend="labels")

Both shipped backends answer **bit-identically**: the labeled backend
carries a sparse correction table recorded against the canonical
per-source Dijkstra rows at construction time, so every ``distance()``
value, every ``doors_by_distance`` scan order, and every
``min_distance_between`` bound equals the dense matrix's answer exactly.
"""

from __future__ import annotations

from typing import (
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

#: Names accepted by ``IndexFramework.build(backend=...)``.
BACKEND_KINDS = ("matrix", "labels")


def validate_backend(name: str) -> str:
    """Return ``name`` if it is a known backend kind, else raise."""
    if name not in BACKEND_KINDS:
        raise ValueError(
            f"unknown distance backend {name!r}; "
            f"choose one of {', '.join(BACKEND_KINDS)}"
        )
    return name


@runtime_checkable
class DistanceBackend(Protocol):
    """What the query algorithms require of a door-distance structure.

    Implementations: :class:`repro.index.DistanceIndexMatrix` (dense,
    ``kind == "matrix"``) and :class:`repro.labels.LabeledDistanceIndex`
    (2-hop labels, ``kind == "labels"``).
    """

    @property
    def kind(self) -> str:
        """Backend name: ``"matrix"`` or ``"labels"``."""

    @property
    def door_ids(self) -> Tuple[int, ...]:
        """Ascending door ids the backend indexes."""

    @property
    def size(self) -> int:
        """Number of doors N."""

    def distance(self, from_door: int, to_door: int) -> float:
        """Minimum walking distance between two doors by id (may be inf)."""

    def doors_by_distance(
        self, from_door: int, max_distance: Optional[float] = None
    ) -> Iterator[Tuple[int, float]]:
        """Yield ``(door_id, distance)`` nearest-first, stopping past
        ``max_distance`` and never yielding unreachable doors."""

    def doors_unsorted(self, from_door: int) -> Iterator[Tuple[int, float]]:
        """Yield reachable ``(door_id, distance)`` in door-id order (the
        "without M_idx" baseline of §VI-B)."""

    def nearest_doors(
        self, from_door: int, k: int
    ) -> Tuple[Tuple[int, float], ...]:
        """The k nearest doors, nearest first."""

    def min_distance_between(
        self, from_doors: Sequence[int], to_doors: Sequence[int]
    ) -> float:
        """``min`` over door pairs of ``distance(f, t)`` — the shard-pruning
        lower bound; inf when either set is empty or nothing is reachable."""

    def memory_bytes(self) -> int:
        """Approximate resident bytes of the structure."""

    def memory_report(self) -> dict:
        """Per-component byte accounting, keyed by component name."""
