"""Shard specs: everything a worker process needs to rebuild its world.

A :class:`ShardSpec` is the sole message a freshly spawned worker receives.
It must therefore be (a) picklable across a ``spawn`` boundary and (b)
self-sufficient: with nothing but the spec, a worker can materialise a
fully indexed :class:`~repro.index.framework.IndexFramework` for its slice
of the building — even if the shared-memory arena is gone and its snapshot
rotted on disk.

:func:`materialize` is the restart ladder, fastest rung first:

1. **arena** — reattach the shared M_d2d / M_idx segments and reassemble
   the framework from the spec's embedded space/DPT/object rows
   (milliseconds; no disk, no argsort).
2. **snapshot** — load the shard's checksummed RPROSNAP file; corruption
   quarantines the file (``.corrupt`` rename) and falls through, exactly
   like the :mod:`repro.persist` recovery ladder.
3. **rebuild** — recompute every index from the space model (the cold
   rung; always succeeds if the model is sound).

Each rung restores the *same* topology and built epochs the supervisor
recorded, so a restarted shard provably rejoins the epoch it crashed with.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SnapshotCorruptError
from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.index.objects import IndoorObject, ObjectStore
from repro.index.rtree import PartitionRTree
from repro.io.json_io import space_from_dict, space_to_dict
from repro.persist.snapshot import (
    _dpt_from_rows,
    _dpt_to_rows,
    _objects_to_rows,
    load_snapshot,
)
from repro.shard.placement import FloorPlacement
from repro.shard.shm import SharedIndexArena


@dataclass(frozen=True)
class ShardSpec:
    """The complete recipe for one shard worker.

    Attributes:
        shard_id: this worker's slot in the placement.
        partition_ids: partitions whose objects this shard owns (every
            shard still indexes the *whole* topology — distances cross
            floors — but answers only for its own objects).
        floors: base floors covered (informational; readiness payloads).
        space: the full indoor space as a JSON dict
            (:func:`~repro.io.json_io.space_to_dict`).
        topology_epoch: epoch the space must be restored to.
        built_epoch: epoch the rebuilt indexes must report.
        cell_size: grid cell edge for the object buckets.
        dpt_rows: Door-to-Partition Table rows (snapshot codec).
        object_rows: owned objects with host partitions (snapshot codec).
        arena: shared-memory arena descriptor, or ``None`` to force the
            snapshot/rebuild rungs (chaos "cold restart").
        snapshot_path: this shard's private snapshot file, or ``None``.
        cache_capacity: entries in the worker's own exact-answer cache
            (0 disables).  Every worker gets the same per-process budget
            as the router, so the *fleet's* aggregate cache grows with
            the shard count — the capacity dimension sharding scales.
        backend: distance backend the worker must build
            (``"matrix"`` or ``"labels"``).  The shared-memory arena is
            matrix-shaped, so labels-backed fleets restart through the
            snapshot/rebuild rungs.
    """

    shard_id: int
    partition_ids: Tuple[int, ...]
    floors: Tuple[int, ...]
    space: Dict = field(repr=False)
    topology_epoch: int = 0
    built_epoch: int = 0
    cell_size: float = 5.0
    dpt_rows: List = field(default_factory=list, repr=False)
    object_rows: List = field(default_factory=list, repr=False)
    arena: Optional[Dict] = field(default=None, repr=False)
    snapshot_path: Optional[str] = None
    cache_capacity: int = 0
    backend: str = "matrix"

    def summary(self) -> Dict:
        """JSON-safe readiness payload fragment."""
        return {
            "shard": self.shard_id,
            "partitions": list(self.partition_ids),
            "floors": list(self.floors),
            "objects": len(self.object_rows),
            "topology_epoch": self.topology_epoch,
            "built_epoch": self.built_epoch,
        }


def owned_store(
    framework: IndexFramework, placement: FloorPlacement, shard_id: int
) -> ObjectStore:
    """A new object store holding only ``shard_id``'s objects.

    Ownership follows the object's *host partition* through the placement,
    so the per-shard stores partition the population exactly (disjoint,
    covering) — the property the scatter-gather merge proofs rest on.
    """
    full = framework.objects
    store = ObjectStore(framework.space, full.cell_size)
    for obj in full:
        partition_id = full.host_partition_id(obj.object_id)
        if placement.shard_for_partition(partition_id) == shard_id:
            store.add(obj, partition_id=partition_id)
    return store


def shard_framework(
    framework: IndexFramework, placement: FloorPlacement, shard_id: int
) -> IndexFramework:
    """``framework`` narrowed to ``shard_id``'s objects (static indexes
    shared, so this is cheap — used to write per-shard snapshots)."""
    return framework.with_objects(owned_store(framework, placement, shard_id))


def shard_specs(
    framework: IndexFramework,
    placement: FloorPlacement,
    *,
    arena: Optional[SharedIndexArena] = None,
    snapshot_dir: Optional[Path] = None,
    cache_capacity: int = 0,
) -> List[ShardSpec]:
    """One spec per shard, partitioning ``framework``'s objects."""
    space_dict = space_to_dict(framework.space)
    dpt_rows = _dpt_to_rows(framework.dpt)
    specs: List[ShardSpec] = []
    for shard_id in placement.shard_ids:
        store = owned_store(framework, placement, shard_id)
        snapshot_path = (
            str(Path(snapshot_dir) / f"shard-{shard_id}.snap")
            if snapshot_dir is not None
            else None
        )
        specs.append(
            ShardSpec(
                shard_id=shard_id,
                partition_ids=placement.partitions_of(shard_id),
                floors=placement.floors_of(shard_id),
                space=space_dict,
                topology_epoch=framework.space.topology_epoch,
                built_epoch=framework.built_epoch,
                cell_size=framework.objects.cell_size,
                dpt_rows=dpt_rows,
                object_rows=_objects_to_rows(store),
                arena=arena.descriptor if arena is not None else None,
                snapshot_path=snapshot_path,
                cache_capacity=cache_capacity,
                backend=str(framework.build_config.get("backend", "matrix")),
            )
        )
    return specs


def respec_for_epoch(
    spec: ShardSpec, framework: IndexFramework
) -> ShardSpec:
    """``spec`` retargeted to ``framework``'s (newer) topology epoch.

    Built during a reconfig round from the supervisor-side framework that
    already absorbed the WAL delta.  The new spec carries the mutated
    space and DPT; object ownership rows are kept verbatim (topology
    mutations never move objects between shards — partition geometry is
    immutable, doors only rewire the graph).  The shared-memory arena is
    dropped: it still holds the old epoch's dense matrices, so any
    restart from this spec takes the snapshot/rebuild rungs until a new
    arena is published.
    """
    return dataclasses.replace(
        spec,
        space=space_to_dict(framework.space),
        topology_epoch=framework.space.topology_epoch,
        built_epoch=framework.built_epoch,
        dpt_rows=_dpt_to_rows(framework.dpt),
        arena=None,
    )


class _StaleShardSnapshot(Exception):
    """Snapshot is healthy but from another epoch — skip, don't quarantine."""


def _store_from_rows(
    space, cell_size: float, rows: List[dict]
) -> ObjectStore:
    store = ObjectStore(space, cell_size)
    for row in rows:
        x, y, floor = row["position"]
        store.add(
            IndoorObject(
                int(row["id"]),
                Point(float(x), float(y), int(floor)),
                row.get("payload", ""),
            ),
            partition_id=int(row["partition"]),
        )
    return store


def _materialize_from_arena(
    spec: ShardSpec,
) -> Tuple[IndexFramework, SharedIndexArena]:
    arena = SharedIndexArena.attach(spec.arena)
    try:
        space = space_from_dict(spec.space)
        space.restore_topology_epoch(spec.topology_epoch)
        distance_index = arena.distance_index()
        if set(distance_index.door_ids) != set(space.door_ids):
            raise ValueError(
                "arena door ids disagree with the shard's space model"
            )
        dpt = _dpt_from_rows(spec.dpt_rows)
        rtree = PartitionRTree(space).install()
        store = _store_from_rows(space, spec.cell_size, spec.object_rows)
        framework = IndexFramework(space, distance_index, dpt, rtree, store)
        framework.built_epoch = spec.built_epoch
    except BaseException:
        arena.close()
        raise
    return framework, arena


def _materialize_from_snapshot(spec: ShardSpec) -> IndexFramework:
    framework, manifest = load_snapshot(spec.snapshot_path)
    if int(manifest["topology_epoch"]) != spec.topology_epoch:
        # Not rot: a healthy snapshot from before (or after) a reconfig
        # round.  The worker must rejoin at the spec's epoch, so this
        # rung loses — but quarantining a good file would throw away the
        # warm restart for every *other* epoch too.
        raise _StaleShardSnapshot(
            f"shard {spec.shard_id} snapshot is from topology epoch "
            f"{manifest['topology_epoch']}, expected {spec.topology_epoch}",
        )
    return framework


def _materialize_by_rebuild(spec: ShardSpec) -> IndexFramework:
    space = space_from_dict(spec.space)
    space.restore_topology_epoch(spec.topology_epoch)
    framework = IndexFramework.build(
        space, cell_size=spec.cell_size, backend=spec.backend
    )
    for row in spec.object_rows:
        x, y, floor = row["position"]
        framework.objects.add(
            IndoorObject(
                int(row["id"]),
                Point(float(x), float(y), int(floor)),
                row.get("payload", ""),
            ),
            partition_id=int(row["partition"]),
        )
    framework.built_epoch = spec.built_epoch
    return framework


def materialize(
    spec: ShardSpec,
) -> Tuple[IndexFramework, str, Optional[SharedIndexArena]]:
    """Run the restart ladder for ``spec``.

    Returns ``(framework, source, arena)`` where ``source`` names the rung
    that succeeded (``"arena"``, ``"snapshot"``, or ``"rebuild"``) and
    ``arena`` is the live attachment when the first rung won (the caller
    must :meth:`~repro.shard.shm.SharedIndexArena.close` it on exit).
    """
    if spec.arena is not None and spec.backend == "matrix":
        try:
            framework, arena = _materialize_from_arena(spec)
            return framework, "arena", arena
        except (FileNotFoundError, ValueError, KeyError):
            pass  # arena gone or inconsistent; drop to disk
    if spec.snapshot_path is not None and Path(spec.snapshot_path).exists():
        try:
            return _materialize_from_snapshot(spec), "snapshot", None
        except _StaleShardSnapshot:
            pass  # wrong epoch, healthy file: rebuild, leave it in place
        except SnapshotCorruptError:
            quarantine_snapshot(spec.snapshot_path)
    return _materialize_by_rebuild(spec), "rebuild", None


def quarantine_snapshot(path: str) -> Optional[Path]:
    """Move a damaged shard snapshot aside (``<name>.corrupt``) so the
    next restart does not trip over it; returns the new path."""
    source = Path(path)
    if not source.exists():
        return None
    target = source.with_name(source.name + ".corrupt")
    source.replace(target)
    return target
