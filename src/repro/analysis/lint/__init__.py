"""AST-based project linter enforcing repro's cross-cutting contracts.

``repro lint`` runs five project-specific rules over the tree:

=======  ==========================================================
REP001   writes to ``self._*`` state of lock-owning classes must
         hold the lock (``repro.serve``, ``repro.persist``)
REP002   no wall-clock or unseeded randomness in replay-critical
         modules (``repro.chaos``, ``repro.persist``,
         ``repro.synthetic``, ``repro.runtime.faults``)
REP003   functions accepting ``deadline``/``budget`` must forward
         it to every deadline-aware callee
REP004   broad ``except`` handlers must re-raise, classify, or
         leave an observable trace
REP005   ``__all__`` coherent, public defs exported, versions agree
=======  ==========================================================

See ``docs/analysis.md`` for the rule catalogue, the
``# repro: noqa REP00x`` suppression syntax, the committed-baseline
workflow, and a walkthrough of adding a new checker.
"""

from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.engine import (
    DEFAULT_BASELINE_NAME,
    LintConfig,
    LintReport,
    build_project,
    discover_files,
    run_lint,
)
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import (
    Checker,
    all_checkers,
    get_checker,
    register,
)
from repro.analysis.lint.suppressions import SuppressionTable

__all__ = [
    "Baseline",
    "Checker",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleContext",
    "ProjectContext",
    "Severity",
    "SuppressionTable",
    "all_checkers",
    "build_project",
    "discover_files",
    "get_checker",
    "register",
    "run_lint",
]
