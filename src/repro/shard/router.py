"""Scatter-gather query routing with explicit partial-result semantics.

:class:`ScatterGatherRouter` turns per-shard exact answers into one
building-wide answer.  Its merges are *proofs*, not heuristics, because
the placement partitions the object population exactly:

* **range** — each healthy shard returns the sorted ids of *its* objects
  inside the radius; the slices are disjoint, so their sorted union is
  bit-identical to the single-process engine's answer.
* **kNN** — each healthy shard returns its local exact top-k as
  ``(id, distance)`` pairs; the global top-k is contained in the union of
  local top-ks, and re-sorting the union by ``(distance, id)`` reproduces
  the engine's tie-breaking exactly.
* **pt2pt** — every shard indexes the whole topology, so any one shard's
  answer is *the* answer; the router hedges sequentially from the shard
  owning the query floor to the rest.

The scatter itself is *distance-aware*: before fanning out, the router
bounds each shard's best possible contribution from below via the
framework's distance backend (``min_distance_between`` — a dense
submatrix minimum for M_d2d, a label join for :mod:`repro.labels`; both
produce bit-identical bounds).
Any indoor path from the query's host partition to an object hosted
elsewhere must leave through one of the partition's leaveable doors and
enter the object's partition through an enterable door, so

    dist(p, o)  >=  min over (d, d') of  M_d2d[d, d']

with ``d`` ranging over P2D⊢(π(p)) and ``d'`` over the enterable doors
of the shard's object-hosting partitions.  A range query therefore skips
every shard whose bound exceeds the radius, and kNN probes the
lowest-bound shard first, then visits only the shards whose bound does
not exceed the k-th local distance.  The bound is a true lower bound on
the indoor walking distance, so pruning never changes the answer — the
merges stay bit-identical to the single-process engine — it only removes
provably irrelevant work from the fan-out.

When a shard is down, hung past its timeout, or circuit-broken, the
router never fails the query and never silently omits the shard's slice:
it fills the gap from the Euclidean rung of the
:class:`~repro.runtime.ladder.QualityLevel` ladder using its local object
table, marks the response ``quality=EUCLIDEAN`` with the culprit shards
in ``missing_shards``, and lets the per-shard
:class:`~repro.serve.breaker.CircuitBreaker` stop hammering the corpse.
The rung guarantees still hold for the merged answer: a range fill is a
superset of the missing slice (Euclidean lower bound ≤ true distance) and
kNN / pt2pt report only lower-bound distances — exactly what the chaos
:class:`~repro.chaos.oracles.DifferentialOracle` checks.

**Epoch fencing.**  Under live reconfiguration
(:mod:`repro.shard.reconfig`) different workers may momentarily serve
different topology epochs.  Every worker reply carries the epoch it was
computed at (:class:`~repro.shard.supervisor.ShardAnswer`), and the
router enforces one invariant: *a merge never mixes epochs*.  The fence
for a request is the maximum of the supervisor's fence epoch (raised the
instant a round retargets the fleet) and every gathered reply's epoch; a
reply below the fence is retried once against its (possibly just
flipped) worker and otherwise discarded into the Euclidean gap fill —
degraded, never mixed.  The router's served epoch is therefore a
per-request property, monotonically non-decreasing, and the epoch-keyed
caches invalidate naturally the moment the fence rises.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures import wait as wait_futures
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.exceptions import ReproError, ShardUnavailableError
from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.overload.budget import RetryBudget
from repro.overload.hedge import HedgePolicy
from repro.runtime.ladder import QualityLevel, euclidean_lower_bound
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import EpochLRUCache
from repro.serve.metrics import MetricsRegistry
from repro.serve.requests import QueryKind, QueryRequest, QueryResponse
from repro.shard.placement import FloorPlacement
from repro.shard.supervisor import ShardAnswer, ShardSupervisor

#: Matches the engine's range-predicate slack (see runtime.ladder).
_RANGE_EPS = 1e-9

#: Everything a gather can fail with.  ``FutureTimeout`` is distinct
#: from the builtin ``TimeoutError`` before Python 3.11, and
#: ``Future.result`` raises the former.
_GATHER_FAULTS = (FutureTimeout, TimeoutError, ReproError, OSError)


class ScatterGatherRouter:
    """Cross-shard range / kNN / pt2pt with degraded partial results.

    Args:
        supervisor: the worker fleet to scatter over.
        placement: the partition→shard map (must match the supervisor's
            specs).
        framework: the supervisor-side framework the shards were carved
            from; the router keeps per-shard ``(id, position)`` tables
            from it for Euclidean gap filling.
        metrics: shared registry (router metrics under ``serve.*``,
            per-shard ones under ``shard.<id>.serve.*``).
        shard_timeout_s: per-shard answer budget; it is also forwarded to
            the worker as its query deadline, so a slow query degrades at
            both ends.
        failure_threshold / cooldown_ops: per-shard breaker tuning.
        cache_capacity: entries in the exact-answer cache (0 disables).
        hedge_policy: an :class:`~repro.overload.HedgePolicy`.  With one
            installed, a probe still pending after the policy's delay
            (p95-derived from observed probe latency) is re-issued to the
            same shard's worker and the first answer wins — because both
            probes ask the same worker population the same question, the
            merge stays bit-identical to the unhedged path.  ``None``
            (default) keeps plain single-probe gathers.
        retry_budget: a :class:`~repro.overload.RetryBudget` that hedges
            and pt2pt re-scatters draw from, so a struggling fleet is not
            pelted with duplicates; shard successes refill it.
    """

    def __init__(
        self,
        supervisor: ShardSupervisor,
        placement: FloorPlacement,
        framework: IndexFramework,
        *,
        metrics: Optional[MetricsRegistry] = None,
        shard_timeout_s: float = 2.0,
        failure_threshold: int = 3,
        cooldown_ops: int = 8,
        cache_capacity: int = 1024,
        hedge_policy: Optional[HedgePolicy] = None,
        retry_budget: Optional[RetryBudget] = None,
    ) -> None:
        self.supervisor = supervisor
        self.placement = placement
        self.metrics = metrics or MetricsRegistry()
        self.shard_timeout_s = shard_timeout_s
        self.hedge_policy = hedge_policy
        self.retry_budget = retry_budget
        self._probe_ms = self.metrics.histogram("serve.probe_ms")
        # The served epoch is a *per-request* property: the monotone floor
        # below rises with every fence a merge observes, and the
        # supervisor's fence epoch rises the moment a reconfig round
        # retargets the fleet.  (It was pinned at construction before the
        # tier could reconfigure live.)
        self._epoch_lock = threading.Lock()
        self._floor = framework.space.topology_epoch
        self._reconfiguring = False
        self._cache = EpochLRUCache(cache_capacity)
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._shard_metrics: Dict[int, Any] = {}
        self._objects: Dict[int, List[Tuple[int, Point]]] = {}
        store = framework.objects
        for shard_id in placement.shard_ids:
            scoped = self.metrics.scoped(f"shard.{shard_id}")
            self._shard_metrics[shard_id] = scoped
            self._breakers[shard_id] = CircuitBreaker(
                failure_threshold=failure_threshold,
                cooldown_ops=cooldown_ops,
                fallback=QualityLevel.EUCLIDEAN,
                metrics=scoped,
            )
            self._objects[shard_id] = []
        for obj in store:
            partition_id = store.host_partition_id(obj.object_id)
            shard_id = placement.shard_for_partition(partition_id)
            self._objects[shard_id].append((obj.object_id, obj.position))
        for table in self._objects.values():
            table.sort()
        self._bounds: Dict[int, Dict[int, float]] = {}
        self._bounds_lock = threading.Lock()
        self._install_pruning_state(framework)

    def _install_pruning_state(self, framework: IndexFramework) -> None:
        """(Re)build the distance-aware pruning state from ``framework``:
        the distance backend plus, per shard, the enterable doors of its
        object-hosting partitions.  Works for any DistanceBackend via
        ``min_distance_between`` (dense submatrix min for the matrix,
        vectorised label join for labels).  Per-partition bounds are
        memoised lazily in ``_bounds``; called again by
        :meth:`finish_reconfig` because the bounds are epoch-sensitive."""
        store = framework.objects
        shard_partitions: Dict[int, Set[int]] = {
            shard_id: set() for shard_id in self.placement.shard_ids
        }
        for obj in store:
            partition_id = store.host_partition_id(obj.object_id)
            shard_partitions[
                self.placement.shard_for_partition(partition_id)
            ].add(partition_id)
        topology = framework.space.topology
        known_doors = set(framework.distance_index.door_ids)
        shard_doors = {}
        for shard_id, partitions in shard_partitions.items():
            doors: Set[int] = set()
            for partition_id in partitions:
                doors |= topology.enterable_doors(partition_id)
            shard_doors[shard_id] = sorted(doors & known_doors)
        with self._bounds_lock:
            self._topology = topology
            self._rtree = framework.rtree
            self._distance_index = framework.distance_index
            self._known_doors = known_doors
            self._shard_doors = shard_doors
            self._bounds.clear()

    # ------------------------------------------------------------------
    # Reconfiguration hooks (driven by ReconfigCoordinator)
    # ------------------------------------------------------------------
    def begin_reconfig(self) -> None:
        """Pause distance-aware pruning for the duration of a round.

        The pruning bounds are computed from one epoch's distance index
        and door graph; while the fleet straddles two epochs a bound from
        either side could wrongly prune a shard for the other.  Unpruned
        scatters stay correct at any epoch — the merge proofs never
        depended on pruning."""
        with self._epoch_lock:
            self._reconfiguring = True
        with self._bounds_lock:
            self._bounds.clear()

    def abort_reconfig(self) -> None:
        """Re-enable pruning after a round that mutated nothing."""
        with self._epoch_lock:
            self._reconfiguring = False

    def finish_reconfig(self, framework: IndexFramework) -> None:
        """Swap in the new epoch's pruning state and resume pruning."""
        self._install_pruning_state(framework)
        with self._epoch_lock:
            self._reconfiguring = False

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def execute(self, request: QueryRequest) -> QueryResponse:
        """Serve one request; never raises for shard failures.

        Healthy fleet → ``EXACT_INDEXED``, bit-identical to the
        single-process engine.  Any missing shard → ``EUCLIDEAN`` with
        ``missing_shards`` naming the gap — degraded, never silently
        wrong.
        """
        start = time.perf_counter()
        self.metrics.increment("serve.requests")
        epoch = self.served_epoch
        cached = self._cache.get(request.cache_key(), epoch, None)
        if cached is not None:
            self.metrics.increment("serve.cache_hits")
            return self._respond(
                request, cached, QualityLevel.EXACT_INDEXED, (),
                start, epoch, (epoch,), from_cache=True,
            )
        self.metrics.increment("serve.cache_misses")
        if request.kind is QueryKind.RANGE:
            value, quality, missing, fence, epochs = self._range(request)
        elif request.kind is QueryKind.KNN:
            value, quality, missing, fence, epochs = self._knn(request)
        else:
            value, quality, missing, fence, epochs = self._pt2pt(request)
        if quality is QualityLevel.EXACT_INDEXED:
            self._cache.put(request.cache_key(), fence, value)
        else:
            self.metrics.increment("serve.degraded")
        return self._respond(
            request, value, quality, missing, start, fence, epochs
        )

    def shed_execute(self, request: QueryRequest) -> QueryResponse:
        """Answer at the Euclidean rung from the router's local object
        tables without touching the fleet (the admission limiter's shed
        path).

        The rung guarantee matches the gap fill: range answers are
        supersets (Euclidean bound ≤ true walk), kNN / pt2pt report
        lower-bound distances — degraded, never silently wrong.
        """
        start = time.perf_counter()
        self.metrics.increment("serve.requests")
        self.metrics.increment("serve.shed")
        if request.kind is QueryKind.RANGE:
            limit = request.radius + _RANGE_EPS
            value: Any = sorted(
                oid
                for table in self._objects.values()
                for oid, position in table
                if euclidean_lower_bound(request.position, position) <= limit
            )
        elif request.kind is QueryKind.KNN:
            ranked = sorted(
                (euclidean_lower_bound(request.position, position), oid)
                for table in self._objects.values()
                for oid, position in table
            )
            value = [(oid, dist) for dist, oid in ranked[: request.k]]
        else:
            value = euclidean_lower_bound(request.position, request.target)
        self.metrics.increment("serve.degraded")
        return self._respond(
            request, value, QualityLevel.EUCLIDEAN, (), start,
            self.served_epoch, (), shed=True,
        )

    def breaker_snapshot(self) -> Dict[int, Dict[str, Any]]:
        """Per-shard breaker state."""
        return {
            shard: breaker.snapshot()
            for shard, breaker in sorted(self._breakers.items())
        }

    def reset_breakers(self) -> None:
        """Force every shard breaker CLOSED (heal / campaign probe)."""
        for breaker in self._breakers.values():
            breaker.reset()

    @property
    def served_epoch(self) -> int:
        """The epoch a request admitted *now* would be fenced at: the
        monotone floor of observed merges, lifted by the supervisor's
        fence epoch the instant a reconfig round begins."""
        with self._epoch_lock:
            floor = self._floor
        return max(floor, self.supervisor.fence_epoch)

    def _raise_floor(self, epoch: int) -> None:
        with self._epoch_lock:
            if epoch > self._floor:
                self._floor = epoch

    def _reconfig_in_flight(self) -> bool:
        with self._epoch_lock:
            return self._reconfiguring

    # ------------------------------------------------------------------
    # Scatter-gather internals
    # ------------------------------------------------------------------
    def _respond(
        self,
        request: QueryRequest,
        value: Any,
        quality: QualityLevel,
        missing: Tuple[int, ...],
        start: float,
        epoch: int,
        reply_epochs: Tuple[int, ...],
        from_cache: bool = False,
        shed: bool = False,
    ) -> QueryResponse:
        latency_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.increment("serve.responses")
        self.metrics.observe("serve.latency_ms", latency_ms)
        self.metrics.observe(
            f"serve.latency_ms.{request.kind.value}", latency_ms
        )
        return QueryResponse(
            request=request,
            value=value,
            quality=quality,
            served_epoch=epoch,
            cached=from_cache,
            shed=shed,
            breaker=bool(missing),
            latency_ms=latency_ms,
            missing_shards=missing,
            reply_epochs=reply_epochs,
        )

    def _apply_fence(
        self,
        raw: Dict[int, ShardAnswer],
        request: QueryRequest,
    ) -> Tuple[Dict[int, Any], List[int], int, Tuple[int, ...]]:
        """Enforce the single-epoch merge invariant over gathered replies.

        The fence is the max of the supervisor's fence epoch and every
        reply's epoch.  A reply below it is retried once against its
        worker (which has usually just committed the flip) and otherwise
        dropped into the gap fill.  Returns ``(values by shard, fenced
        shard ids, fence epoch, distinct merged epochs)`` — the last is
        the evidence the chaos EpochOracle audits.
        """
        fence = self.served_epoch
        for answer in raw.values():
            fence = max(fence, answer.epoch)
        fenced: List[int] = []
        retried: Set[int] = set()
        in_flight = self._reconfig_in_flight()
        for _ in range(3):  # re-fence when a retry lands above the fence
            stale = [s for s, a in raw.items() if a.epoch < fence]
            if not stale:
                break
            for shard_id in stale:
                answer = None
                if shard_id not in retried and not in_flight:
                    retried.add(shard_id)
                    answer = self._retry_fenced(shard_id, request)
                if answer is not None and answer.epoch >= fence:
                    raw[shard_id] = answer
                    fence = max(fence, answer.epoch)
                else:
                    raw.pop(shard_id)
                    fenced.append(shard_id)
                    self.metrics.increment("reconfig.fenced_replies")
                    self._shard_metrics[shard_id].increment("serve.fenced")
        self._raise_floor(fence)
        epochs = tuple(sorted({a.epoch for a in raw.values()}))
        return (
            {s: a.value for s, a in raw.items()},
            sorted(fenced),
            fence,
            epochs,
        )

    def _retry_fenced(self, shard_id: int, request: QueryRequest):
        """One immediate re-probe of a shard whose reply was fenced —
        its worker has usually just committed the new epoch, so the
        retry recovers an exact merge instead of degrading."""
        self.metrics.increment("reconfig.retried_replies")
        try:
            future = self.supervisor.submit(
                shard_id, request, budget_s=self.shard_timeout_s
            )
            return future.result(timeout=self.shard_timeout_s)
        except _GATHER_FAULTS:
            return None

    def _scatter(
        self, shard_ids: List[int], request: QueryRequest
    ) -> Tuple[Dict[int, ShardAnswer], List[int]]:
        """Fan ``request`` out to ``shard_ids`` and gather within the
        timeout. Returns (epoch-stamped answers by shard, missing shard
        ids); the caller runs the gathered replies through
        :meth:`_apply_fence` before merging."""
        futures: Dict[int, Future] = {}
        missing: List[int] = []
        for shard_id in shard_ids:
            breaker = self._breakers[shard_id]
            if not breaker.allow_exact():
                missing.append(shard_id)
                continue
            shard_metrics = self._shard_metrics[shard_id]
            try:
                futures[shard_id] = self.supervisor.submit(
                    shard_id, request, budget_s=self.shard_timeout_s
                )
                shard_metrics.increment("serve.requests")
            except ShardUnavailableError:
                shard_metrics.increment("serve.unavailable")
                breaker.record_failure()
                missing.append(shard_id)
        answers: Dict[int, ShardAnswer] = {}
        scattered_at = time.monotonic()
        deadline = scattered_at + self.shard_timeout_s
        for shard_id, future in futures.items():
            breaker = self._breakers[shard_id]
            shard_metrics = self._shard_metrics[shard_id]
            try:
                answers[shard_id] = self._gather_one(
                    shard_id, request, future, deadline
                )
            except _GATHER_FAULTS:
                shard_metrics.increment("serve.failures")
                breaker.record_failure()
                missing.append(shard_id)
            else:
                self._probe_ms.observe(
                    (time.monotonic() - scattered_at) * 1000.0
                )
                shard_metrics.increment("serve.responses")
                breaker.record_success()
                if self.retry_budget is not None:
                    self.retry_budget.record_success()
        return answers, sorted(missing)

    def _gather_one(
        self,
        shard_id: int,
        request: QueryRequest,
        future: Future,
        deadline: float,
    ) -> Any:
        """One shard's answer, hedged when a policy is installed.

        Waits out the hedge delay on the primary probe; if it is still
        pending, pays one retry-budget token to re-issue the probe to the
        same shard (its restarted worker, after a casualty) and returns
        whichever answer lands first.  Raises a :data:`_GATHER_FAULTS`
        member when no probe answers inside the deadline — the caller
        turns that into the Euclidean gap fill, exactly as unhedged.
        """
        remaining = deadline - time.monotonic()
        if self.hedge_policy is None:
            return future.result(timeout=max(0.0, remaining))
        delay = self.hedge_policy.delay_s(self._probe_ms, self.shard_timeout_s)
        if delay >= remaining:
            return future.result(timeout=max(0.0, remaining))
        try:
            return future.result(timeout=max(0.0, delay))
        except (FutureTimeout, TimeoutError):
            pass
        hedge = self._launch_hedge(shard_id, request, deadline)
        if hedge is None:
            return future.result(timeout=max(0.0, deadline - time.monotonic()))
        return self._first_answer(future, hedge, deadline)

    def _launch_hedge(
        self, shard_id: int, request: QueryRequest, deadline: float
    ) -> Optional[Future]:
        """Re-issue a straggler's probe; None when denied or impossible."""
        if self.retry_budget is not None and not self.retry_budget.try_spend():
            return None
        try:
            hedge = self.supervisor.submit(
                shard_id,
                request,
                budget_s=max(0.0, deadline - time.monotonic()),
            )
        except ShardUnavailableError:
            # Worker mid-restart: nothing to hedge to.  The Euclidean
            # gap fill covers the shard if the primary stays silent.
            self._shard_metrics[shard_id].increment("serve.unavailable")
            return None
        self.metrics.increment("overload.hedged")
        self._shard_metrics[shard_id].increment("serve.hedges")
        return hedge

    def _first_answer(
        self, primary: Future, hedge: Future, deadline: float
    ) -> Any:
        """First successful result of the two probes (first-answer-wins).

        The loser is cancelled best-effort; if one probe errors the
        other is still waited out.  Raises the last probe error, or the
        timeout, when neither answers.
        """
        pending = [primary, hedge]
        last_error: Optional[BaseException] = None
        while pending:
            remaining = deadline - time.monotonic()
            done, _ = wait_futures(
                pending,
                timeout=max(0.0, remaining),
                return_when=FIRST_COMPLETED,
            )
            if not done:
                break  # deadline: neither probe answered in time
            for future in list(pending):
                if future not in done:
                    continue
                pending.remove(future)
                try:
                    value = future.result(timeout=0)
                except _GATHER_FAULTS as exc:
                    last_error = exc
                    continue
                for loser in pending:
                    loser.cancel()
                    self.metrics.increment("overload.hedge_cancelled")
                if future is hedge:
                    self.metrics.increment("overload.hedge_wins")
                return value
        if last_error is not None:
            raise last_error
        raise FutureTimeout(
            "neither primary nor hedge probe answered within the deadline"
        )

    def _populated(self) -> List[int]:
        """Shards that own at least one object (empty shards cannot
        contribute to range/kNN answers and are never scattered to)."""
        return [
            shard_id
            for shard_id in self.placement.shard_ids
            if self._objects[shard_id]
        ]

    def _shard_bounds(
        self, position: Point
    ) -> Optional[Dict[int, float]]:
        """Lower bounds on the indoor distance from ``position`` to any
        object of each shard (0.0 for the position's own shard; ``inf``
        when no door path can reach the shard's partitions).  ``None``
        when the position cannot be located, which disables pruning."""
        partition_id = self._rtree.locate(position)
        if partition_id is None:
            return None
        with self._bounds_lock:
            bounds = self._bounds.get(partition_id)
        if bounds is not None:
            return bounds
        leave_doors = sorted(
            self._topology.leaveable_doors(partition_id) & self._known_doors
        )
        try:
            home = self.placement.shard_for_partition(partition_id)
        except KeyError:
            # A partition added by a reconfig round the placement has not
            # absorbed yet: no sound bound exists, so don't prune.
            return None
        bounds = {}
        for shard_id in self.placement.shard_ids:
            doors = self._shard_doors[shard_id]
            if shard_id == home:
                bounds[shard_id] = 0.0
            else:
                bounds[shard_id] = self._distance_index.min_distance_between(
                    leave_doors, doors
                )
        with self._bounds_lock:
            self._bounds[partition_id] = bounds
        return bounds

    def _range(
        self, request: QueryRequest
    ) -> Tuple[List[int], QualityLevel, Tuple[int, ...], int, Tuple[int, ...]]:
        populated = self._populated()
        fence_at_plan = self.served_epoch
        bounds = (
            None
            if self._reconfig_in_flight()
            else self._shard_bounds(request.position)
        )
        if bounds is None:
            targets = populated
        else:
            # Sound: every object of a pruned shard sits at a walking
            # distance >= its bound > radius + slack, so the engine's
            # range predicate excludes it too.
            limit = request.radius + _RANGE_EPS
            targets = [s for s in populated if bounds[s] <= limit]
        pruned = len(targets) < len(populated)
        if pruned:
            self.metrics.increment(
                "serve.shards_pruned", len(populated) - len(targets)
            )
        raw, missing = self._scatter(targets, request)
        values, fenced, fence, epochs = self._apply_fence(raw, request)
        if pruned and fence > fence_at_plan:
            # The pruning decision used bounds from the epoch this query
            # was planned at, but the fence moved mid-flight — a pruned
            # shard might matter at the new epoch.  One unpruned redo is
            # sound at any epoch (the merge proofs never needed pruning).
            self.metrics.increment("reconfig.replans")
            raw, missing = self._scatter(populated, request)
            values, fenced, fence, epochs = self._apply_fence(raw, request)
        merged: List[int] = []
        for ids in values.values():
            merged.extend(ids)
        gap = sorted(set(missing) | set(fenced))
        for shard_id in gap:
            merged.extend(
                oid
                for oid, position in self._objects[shard_id]
                if euclidean_lower_bound(request.position, position)
                <= request.radius + _RANGE_EPS
            )
        quality = (
            QualityLevel.EXACT_INDEXED if not gap else QualityLevel.EUCLIDEAN
        )
        return sorted(merged), quality, tuple(gap), fence, epochs

    def _knn(
        self, request: QueryRequest
    ) -> Tuple[
        List[Tuple[int, float]], QualityLevel, Tuple[int, ...], int,
        Tuple[int, ...],
    ]:
        populated = self._populated()
        fence_at_plan = self.served_epoch
        bounds = (
            None
            if self._reconfig_in_flight()
            else self._shard_bounds(request.position)
        )
        pruned = False
        if bounds is None or len(populated) <= 1:
            raw, missing = self._scatter(populated, request)
        else:
            # Two-phase scatter: probe the lowest-bound shard, then visit
            # only shards whose bound can still improve its k-th local
            # distance.  A pruned shard's objects all sit strictly beyond
            # that distance, so they cannot enter the global top-k even
            # under (distance, id) tie-breaking.
            order = sorted(populated, key=lambda s: (bounds[s], s))
            first = order[0]
            raw, missing = self._scatter([first], request)
            answer = raw.get(first)
            if answer is not None and len(answer.value) >= request.k:
                kth = answer.value[-1][1]
                rest = [s for s in order[1:] if bounds[s] <= kth]
            else:
                rest = order[1:]
            if len(rest) < len(order) - 1:
                pruned = True
                self.metrics.increment(
                    "serve.shards_pruned", len(order) - 1 - len(rest)
                )
            if rest:
                more, missing_rest = self._scatter(rest, request)
                raw.update(more)
                missing = sorted(missing + missing_rest)
        values, fenced, fence, epochs = self._apply_fence(raw, request)
        if pruned and fence > fence_at_plan:
            # Pruning (both the bound table and the k-th-distance cut)
            # was decided at the plan epoch; the fence moved, so redo
            # once with the full fan-out — sound at any epoch.
            self.metrics.increment("reconfig.replans")
            raw, missing = self._scatter(populated, request)
            values, fenced, fence, epochs = self._apply_fence(raw, request)
        ranked: List[Tuple[float, int]] = []
        for pairs in values.values():
            ranked.extend((dist, oid) for oid, dist in pairs)
        gap = sorted(set(missing) | set(fenced))
        for shard_id in gap:
            # Every object of the missing shard enters at its Euclidean
            # lower bound: reported distances stay <= the true walk, the
            # rung guarantee the differential oracle checks.
            ranked.extend(
                (euclidean_lower_bound(request.position, position), oid)
                for oid, position in self._objects[shard_id]
            )
        ranked.sort()
        quality = (
            QualityLevel.EXACT_INDEXED if not gap else QualityLevel.EUCLIDEAN
        )
        return (
            [(oid, dist) for dist, oid in ranked[: request.k]],
            quality,
            tuple(gap),
            fence,
            epochs,
        )

    def _pt2pt(
        self, request: QueryRequest
    ) -> Tuple[float, QualityLevel, Tuple[int, ...], int, Tuple[int, ...]]:
        preferred = self.placement.preferred_shard_for_floor(
            request.position.floor
        )
        order = [preferred] + [
            shard_id
            for shard_id in self.placement.shard_ids
            if shard_id != preferred
        ]
        failed: List[int] = []
        fence = self.served_epoch
        for index, shard_id in enumerate(order):
            if (
                index > 0
                and self.retry_budget is not None
                and not self.retry_budget.try_spend()
            ):
                # Every shard after the preferred one is a re-scatter;
                # when the budget is broke, stop hammering the fleet and
                # answer at the Euclidean bound.
                break
            raw, missing = self._scatter([shard_id], request)
            values, fenced, fence, epochs = self._apply_fence(raw, request)
            if shard_id in values:
                # Any shard's pt2pt answer is exact over the full
                # topology at the fence epoch; earlier casualties don't
                # degrade it.
                return (
                    float(values[shard_id]),
                    QualityLevel.EXACT_INDEXED,
                    (),
                    fence,
                    epochs,
                )
            failed.extend(missing)
            failed.extend(fenced)
        value = euclidean_lower_bound(request.position, request.target)
        return (
            value,
            QualityLevel.EUCLIDEAN,
            tuple(sorted(set(failed))),
            fence,
            (),
        )
