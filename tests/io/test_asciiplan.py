"""Tests for the ASCII floor-plan parser."""

import math

import pytest

from repro.distance import pt2pt_distance
from repro.exceptions import SerializationError
from repro.io import parse_ascii_plan
from repro.model.validation import validate_space

TWO_ROOMS = """
#########
#AAA#BBB#
#AAA1BBB#
#AAA#BBB#
#########
"""

THREE_WITH_HALLWAY = """
#########
#AAA#BBB#
#AAA#BBB#
##1###2##
#CCCCCCC#
#########
"""

ONE_WAY_PLAN = """
#########
#AAA>BBB#
#########
"""


class TestParsing:
    def test_two_rooms_one_door(self):
        plan = parse_ascii_plan(TWO_ROOMS, cell_size=2.0)
        assert set(plan.partitions) == {"A", "B"}
        assert plan.space.num_partitions == 2
        assert plan.space.num_doors == 1
        # Three 2 m cells per room plus half-cell expansion into the
        # surrounding walls on both sides.
        a = plan.space.partition(plan.partitions["A"])
        assert a.polygon.bounding_box.width == pytest.approx(8.0)
        assert a.polygon.bounding_box.height == pytest.approx(8.0)

    def test_walls_collapse_so_rooms_touch(self):
        plan = parse_ascii_plan(TWO_ROOMS, cell_size=2.0)
        a = plan.space.partition(plan.partitions["A"])
        b = plan.space.partition(plan.partitions["B"])
        assert a.polygon.bounding_box.max_x == pytest.approx(
            b.polygon.bounding_box.min_x
        )

    def test_door_lies_on_the_shared_wall(self):
        plan = parse_ascii_plan(TWO_ROOMS, cell_size=2.0)
        door = plan.space.door(1)
        a = plan.space.partition(plan.partitions["A"])
        assert door.midpoint.x == pytest.approx(a.polygon.bounding_box.max_x)
        assert door.width == pytest.approx(2.0)

    def test_parsed_plan_is_lint_clean(self):
        plan = parse_ascii_plan(THREE_WITH_HALLWAY)
        assert validate_space(plan.space) == []

    def test_distances_work_on_parsed_plan(self):
        plan = parse_ascii_plan(THREE_WITH_HALLWAY, cell_size=2.0)
        space = plan.space
        a = space.partition(plan.partitions["A"]).polygon.centroid
        b = space.partition(plan.partitions["B"]).polygon.centroid
        # A and B connect only through hallway C.
        distance = pt2pt_distance(space, a, b)
        assert not math.isinf(distance)
        assert distance > a.distance_to(b)

    def test_door_name_records_the_letters(self):
        plan = parse_ascii_plan(TWO_ROOMS)
        assert plan.space.door(1).name == "A1B"

    def test_doors_mapping(self):
        plan = parse_ascii_plan(THREE_WITH_HALLWAY)
        assert len(plan.doors) == 2
        assert set(plan.doors.values()) == {1, 2}


class TestOneWayDoors:
    def test_east_arrow(self):
        plan = parse_ascii_plan(ONE_WAY_PLAN)
        space = plan.space
        topo = space.topology
        a, b = plan.partitions["A"], plan.partitions["B"]
        assert topo.is_unidirectional(1)
        assert topo.d2p(1) == frozenset({(a, b)})

    def test_west_arrow(self):
        plan = parse_ascii_plan(ONE_WAY_PLAN.replace(">", "<"))
        a, b = plan.partitions["A"], plan.partitions["B"]
        assert plan.space.topology.d2p(1) == frozenset({(b, a)})

    def test_vertical_arrows(self):
        text = """
#####
#AAA#
##^##
#BBB#
#####
"""
        plan = parse_ascii_plan(text)
        a, b = plan.partitions["A"], plan.partitions["B"]
        # '^' permits movement toward the top line: B (below) -> A (above).
        assert plan.space.topology.d2p(1) == frozenset({(b, a)})

    def test_wrong_arrow_orientation_rejected(self):
        with pytest.raises(SerializationError):
            parse_ascii_plan(
                """
#####
#AAA#
##>##
#BBB#
#####
"""
            )


class TestRejections:
    def test_empty_plan(self):
        with pytest.raises(SerializationError):
            parse_ascii_plan("   \n  ")

    def test_unknown_character(self):
        with pytest.raises(SerializationError):
            parse_ascii_plan("#A?B#")

    def test_non_rectangular_partition(self):
        with pytest.raises(SerializationError):
            parse_ascii_plan(
                """
######
#AA###
#AAAA#
######
"""
            )

    def test_touching_partitions_without_wall_rejected(self):
        with pytest.raises(SerializationError):
            parse_ascii_plan(
                """
######
#AABB#
######
"""
            )

    def test_door_in_the_open_rejected(self):
        with pytest.raises(SerializationError):
            parse_ascii_plan(
                """
#######
#A1A###
#######
"""
            )

    def test_door_facing_wall_rejected(self):
        with pytest.raises(SerializationError):
            parse_ascii_plan(
                """
#########
#AAA#1###
#########
"""
            )

    def test_invalid_cell_size(self):
        with pytest.raises(SerializationError):
            parse_ascii_plan(TWO_ROOMS, cell_size=0)

    def test_plan_without_partitions(self):
        with pytest.raises(SerializationError):
            parse_ascii_plan("#####\n#####")
