"""Tests for Algorithm 5 (range query), verified against the brute-force
pt2pt oracle."""

import random

import pytest

from repro.exceptions import ModelError, QueryError
from repro.geometry import Point, Segment, rectangle
from repro.index import IndexFramework, IndoorObject
from repro.model import IndoorSpaceBuilder
from repro.queries import brute_force_range, range_query
from tests.queries.conftest import random_point_in


class TestBasics:
    def test_negative_radius_raises(self, populated_figure1):
        with pytest.raises(QueryError):
            range_query(populated_figure1, Point(5, 5), -1.0)

    def test_query_outside_any_partition_raises(self, populated_figure1):
        with pytest.raises(ModelError):
            range_query(populated_figure1, Point(100, 100), 10.0)

    def test_zero_radius(self, populated_figure1):
        space = populated_figure1.space
        obj = next(iter(populated_figure1.objects))
        result = range_query(populated_figure1, obj.position, 0.0)
        assert obj.object_id in result

    def test_radius_covering_everything(self, populated_figure1):
        result = range_query(populated_figure1, Point(5, 5), 1000.0)
        assert len(result) == len(populated_figure1.objects)

    def test_results_are_sorted_and_unique(self, populated_figure1):
        result = range_query(populated_figure1, Point(5, 5), 15.0)
        assert result == sorted(set(result))


class TestAgainstBruteForce:
    @pytest.mark.parametrize("radius", [2.0, 5.0, 8.0, 12.0, 20.0])
    def test_matches_oracle_at_fixed_radii(self, populated_figure1, radius):
        framework = populated_figure1
        rng = random.Random(7)
        for _ in range(8):
            q = random_point_in(framework.space, rng)
            expected = brute_force_range(
                framework.space, framework.objects, q, radius
            )
            assert range_query(framework, q, radius) == expected, (q, radius)

    def test_no_index_baseline_matches_indexed(self, populated_figure1):
        framework = populated_figure1
        rng = random.Random(13)
        for _ in range(10):
            q = random_point_in(framework.space, rng)
            radius = rng.uniform(1.0, 25.0)
            indexed = range_query(framework, q, radius, use_index=True)
            unindexed = range_query(framework, q, radius, use_index=False)
            assert indexed == unindexed, (q, radius)


class TestStructuralBehaviour:
    def test_whole_partition_inclusion(self):
        """When f_dv of a partition fits the remaining budget, the whole
        bucket must be returned — including objects placed anywhere in it."""
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        builder.add_door(1, Segment(Point(10, 1), Point(10, 3)), connects=(1, 2))
        space = builder.build()
        objects = [
            IndoorObject(1, Point(13.9, 3.9)),  # far corner of room 2
            IndoorObject(2, Point(11, 1)),
        ]
        framework = IndexFramework.build(space, objects)
        q = Point(9, 2)
        # f_dv(d1, room2) = distance from (10,2) to corner (14,4) ~ 4.47;
        # budget after reaching d1 (1.0) with r=6 is 5, so room 2 is fully in.
        result = range_query(framework, q, 6.0)
        assert result == [1, 2]

    def test_one_way_door_blocks_range(self):
        """Objects behind a door that cannot be entered are not in range."""
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 14, 4))
        # One-way: 2 -> 1 only; from room 1 nothing in room 2 is reachable.
        builder.add_door(
            1, Segment(Point(10, 1), Point(10, 3)), connects=(2, 1), one_way=True
        )
        space = builder.build()
        framework = IndexFramework.build(space, [IndoorObject(1, Point(12, 2))])
        assert range_query(framework, Point(5, 5), 100.0) == []
        # From inside room 2 the object is adjacent.
        assert range_query(framework, Point(11, 2), 2.0) == [1]

    def test_reentrant_host_partition(self):
        """The Figure-5 situation: an object in the host partition that is
        only within range via an out-and-back route must be found."""
        from repro.geometry import Polygon

        builder = IndoorSpaceBuilder()
        builder.add_partition(
            1,
            Polygon(
                [
                    Point(0, 0),
                    Point(14, 0),
                    Point(14, 10),
                    Point(10, 10),
                    Point(10, 2),
                    Point(4, 2),
                    Point(4, 10),
                    Point(0, 10),
                ]
            ),
        )
        builder.add_partition(2, rectangle(4, 2, 10, 10))
        builder.add_door(1, Segment(Point(4, 8.5), Point(4, 9.5)), connects=(1, 2))
        builder.add_door(2, Segment(Point(10, 8.5), Point(10, 9.5)), connects=(1, 2))
        space = builder.build()
        framework = IndexFramework.build(
            space, [IndoorObject(1, Point(12, 9))]
        )
        q = Point(2, 9)
        # Walking around the U base is ~20.6 m; through room 2 it is 10 m.
        assert range_query(framework, q, 12.0) == [1]
        assert range_query(framework, q, 9.0) == []

    def test_object_appears_once_despite_multiple_routes(self):
        """Two doors into the same partition must not duplicate results."""
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        builder.add_partition(2, rectangle(10, 0, 20, 10))
        builder.add_door(1, Segment(Point(10, 1), Point(10, 3)), connects=(1, 2))
        builder.add_door(2, Segment(Point(10, 7), Point(10, 9)), connects=(1, 2))
        space = builder.build()
        framework = IndexFramework.build(space, [IndoorObject(1, Point(15, 5))])
        result = range_query(framework, Point(5, 5), 30.0)
        assert result == [1]

    def test_empty_store(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 10, 10))
        framework = IndexFramework.build(builder.build())
        assert range_query(framework, Point(5, 5), 10.0) == []
