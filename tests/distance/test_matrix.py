"""Tests for the all-pairs door distance matrix builders."""

import math

import numpy as np
import pytest

from repro.distance import build_distance_matrix, build_distance_matrix_reference
from repro.distance.door_to_door import d2d_distance
from repro.model.figure1 import (
    D1,
    D11,
    D15,
    build_figure1,
    build_figure1_subplan,
)


@pytest.fixture(scope="module")
def space():
    return build_figure1()


@pytest.fixture(scope="module")
def bulk(space):
    return build_distance_matrix(space.distance_graph)


class TestBulkBuilder:
    def test_matches_reference_on_figure1(self, space, bulk):
        reference = build_distance_matrix_reference(space.distance_graph)
        assert bulk.door_ids == reference.door_ids
        np.testing.assert_allclose(bulk.matrix, reference.matrix)

    def test_matches_reference_on_subplan(self):
        space = build_figure1_subplan()
        bulk = build_distance_matrix(space.distance_graph)
        reference = build_distance_matrix_reference(space.distance_graph)
        np.testing.assert_allclose(bulk.matrix, reference.matrix)

    def test_matches_single_pair_algorithm1(self, space, bulk):
        for source in space.door_ids:
            for target in space.door_ids:
                assert bulk.distance(source, target) == pytest.approx(
                    d2d_distance(space.distance_graph, source, target)
                )


class TestMatrixProperties:
    def test_shape_and_ordering(self, space, bulk):
        assert bulk.size == space.num_doors
        assert bulk.door_ids == space.door_ids
        assert list(bulk.door_ids) == sorted(bulk.door_ids)

    def test_diagonal_is_zero(self, bulk):
        assert np.all(np.diag(bulk.matrix) == 0.0)

    def test_all_pairs_finite_in_strongly_connected_plan(self, bulk):
        assert np.all(np.isfinite(bulk.matrix))

    def test_asymmetry_from_directed_doors(self, bulk):
        # The paper's §IV-A observation on Figure 3: the matrix is not
        # symmetric because of directional doors.
        assert bulk.distance(D11, D15) != pytest.approx(bulk.distance(D15, D11))

    def test_triangle_inequality(self, bulk):
        m = bulk.matrix
        n = bulk.size
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert m[i, j] <= m[i, k] + m[k, j] + 1e-9

    def test_nonnegative(self, bulk):
        assert np.all(bulk.matrix >= 0.0)

    def test_index_of_mapping(self, bulk):
        index = bulk.index_of
        for i, door_id in enumerate(bulk.door_ids):
            assert index[door_id] == i

    def test_empty_space(self):
        from repro.geometry import rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        matrix = build_distance_matrix(builder.build().distance_graph)
        assert matrix.size == 0

    def test_unreachable_pairs_are_inf(self):
        from repro.geometry import Point, Segment, rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_partition(3, rectangle(8, 0, 12, 4))
        builder.add_door(1, Segment(Point(4, 1), Point(4, 3)), connects=(1, 2))
        builder.add_door(
            2, Segment(Point(8, 1), Point(8, 3)), connects=(2, 3), one_way=True
        )
        space = builder.build()
        bulk = build_distance_matrix(space.distance_graph)
        reference = build_distance_matrix_reference(space.distance_graph)
        np.testing.assert_allclose(bulk.matrix, reference.matrix)
        assert math.isinf(bulk.distance(2, 1))
        assert bulk.distance(1, 2) == pytest.approx(4.0)
