"""Door opening schedules.

Times are plain floats in any consistent unit (seconds since midnight,
minutes, simulation ticks); intervals are half-open ``[start, end)`` so
adjacent intervals compose without double-counting the boundary instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.exceptions import ModelError


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A half-open time interval ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ModelError(
                f"interval end must exceed start: [{self.start}, {self.end})"
            )

    def contains(self, t: float) -> bool:
        """True when ``t`` falls inside the interval."""
        return self.start <= t < self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        """True when the two intervals share any instant."""
        return self.start < other.end and other.start < self.end


class DoorSchedule:
    """Open intervals per door; doors without an entry are always open.

    Example::

        schedule = DoorSchedule()
        schedule.set_open(D13, [TimeInterval(8 * 60, 18 * 60)])  # office hours
        schedule.set_closed(D1)                                  # sealed
    """

    def __init__(self) -> None:
        self._intervals: Dict[int, Tuple[TimeInterval, ...]] = {}

    def set_open(
        self, door_id: int, intervals: Iterable[TimeInterval]
    ) -> None:
        """Restrict a door to the given open intervals (sorted, may not
        overlap — overlapping intervals indicate a modelling slip)."""
        ordered: List[TimeInterval] = sorted(intervals)
        for first, second in zip(ordered, ordered[1:]):
            if first.overlaps(second):
                raise ModelError(
                    f"overlapping open intervals for door {door_id}: "
                    f"{first} / {second}"
                )
        self._intervals[door_id] = tuple(ordered)

    def set_closed(self, door_id: int) -> None:
        """Seal a door at all times."""
        self._intervals[door_id] = ()

    def set_always_open(self, door_id: int) -> None:
        """Remove any restriction from a door (the default state)."""
        self._intervals.pop(door_id, None)

    def is_open(self, door_id: int, t: float) -> bool:
        """True when the door is passable at time ``t``."""
        intervals = self._intervals.get(door_id)
        if intervals is None:
            return True
        return any(interval.contains(t) for interval in intervals)

    def restricted_doors(self) -> Tuple[int, ...]:
        """Doors that carry any schedule entry, ascending."""
        return tuple(sorted(self._intervals))

    def intervals_of(self, door_id: int) -> Tuple[TimeInterval, ...]:
        """The open intervals of a restricted door (empty = sealed)."""
        if door_id not in self._intervals:
            raise ModelError(f"door {door_id} is not restricted")
        return self._intervals[door_id]
