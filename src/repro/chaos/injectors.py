"""Chaos-only injectors, complementing :mod:`repro.runtime.faults`.

The runtime harness covers *state* faults (corrupt cells, dropped records,
index loss, bit rot); campaigns also need *behavioural* faults:

* :func:`install_latency` — every distance-index call (and every scan
  yield) stalls a fixed number of milliseconds, the "index on cold
  storage" scenario that exercises deadline budgets and the breaker's
  `DeadlineExceededError` path without touching correctness;
* :func:`apply_topology_action` — scripted ``add_door`` /
  ``remove_door`` mutations through a
  :class:`~repro.persist.wal.WalRecorder`, so mid-campaign topology
  changes are durable exactly like production mutations (and can be
  crashed mid-append by an armed crash point).

Latency injection deliberately perturbs only *timing*: campaign incident
digests exclude latency, so a plan with and without the injector produces
the same incident sequence.
"""

from __future__ import annotations

import time

from repro.geometry import Point, Segment
from repro.index.framework import IndexFramework
from repro.persist.wal import WalRecorder
from repro.runtime.faults import FaultHandle


class LatencyDistanceIndex:
    """A distance-index proxy stalling every lookup by a fixed delay.

    Mirrors :class:`~repro.runtime.faults.FlakyDistanceIndex`'s proxy
    shape: lookup methods (and per-door scan yields) sleep
    ``per_call_ms``; everything else delegates to the real index, so
    integrity checks and rebuild paths behave normally.
    """

    def __init__(self, inner, per_call_ms: float) -> None:
        if per_call_ms < 0:
            raise ValueError(f"per_call_ms must be >= 0, got {per_call_ms}")
        self._inner = inner
        self._per_call_s = per_call_ms / 1000.0

    def _stall(self) -> None:
        if self._per_call_s > 0:
            time.sleep(self._per_call_s)

    def distance(self, from_door: int, to_door: int) -> float:
        """M_d2d lookup, stalled."""
        self._stall()
        return self._inner.distance(from_door, to_door)

    def doors_by_distance(self, from_door: int, max_distance=None):
        """Sorted scan; every yield stalls."""
        for pair in self._inner.doors_by_distance(from_door, max_distance):
            self._stall()
            yield pair

    def doors_unsorted(self, from_door: int):
        """Unsorted scan; every yield stalls."""
        for pair in self._inner.doors_unsorted(from_door):
            self._stall()
            yield pair

    def __getattr__(self, name):
        # Same non-delegation rules as FlakyDistanceIndex: never recurse on
        # a half-built instance, never invent dunders for protocol probes.
        try:
            inner = object.__getattribute__(self, "_inner")
        except AttributeError:
            raise AttributeError(name) from None
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        return getattr(inner, name)


def install_latency(
    framework: IndexFramework, per_call_ms: float
) -> FaultHandle:
    """Stall every distance-index call by ``per_call_ms`` milliseconds."""
    original = framework.distance_index
    framework.distance_index = LatencyDistanceIndex(original, per_call_ms)

    def restore() -> None:
        framework.distance_index = original

    return FaultHandle(
        f"install_latency(per_call_ms={per_call_ms})", _undo=restore
    )


def _decode_geometry(payload: dict):
    """Door geometry from its JSON form (same shape the WAL uses)."""
    if "point" in payload:
        x, y, floor = payload["point"]
        return Point(float(x), float(y), int(floor))
    start, end = payload["segment"]
    return Segment(
        Point(float(start[0]), float(start[1]), int(start[2])),
        Point(float(end[0]), float(end[1]), int(end[2])),
    )


def apply_topology_action(
    recorder: WalRecorder, action: str, params: dict
) -> None:
    """Run one scripted topology mutation through the WAL recorder.

    Raises whatever the recorder raises — including
    :class:`~repro.exceptions.InjectedCrashError` when a crash point is
    armed inside the WAL append, which is exactly the scenario campaign
    restarts recover from.
    """
    if action == "remove_door":
        recorder.remove_door(int(params["id"]))
    elif action == "add_door":
        recorder.add_door(
            int(params["id"]),
            _decode_geometry(params["geometry"]),
            connects=(int(params["connects"][0]), int(params["connects"][1])),
            one_way=bool(params.get("one_way", False)),
            name=params.get("name", ""),
        )
    else:
        raise ValueError(f"unknown topology action {action!r}")
