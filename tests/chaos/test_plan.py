"""FaultPlan DSL: validation, ordering, serialisation, the standard plan."""

import pytest

from repro.chaos import ACTIONS, FaultAction, FaultPlan, standard_plan


class TestFaultAction:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown action"):
            FaultAction(0, "set_on_fire")

    def test_rejects_negative_op(self):
        with pytest.raises(ValueError, match="at_op"):
            FaultAction(-1, "heal")

    def test_dict_roundtrip(self):
        action = FaultAction(
            7, "corrupt_md2d", {"mode": "nan", "count": 2, "seed": 5},
            label="md2d",
        )
        assert FaultAction.from_dict(action.to_dict()) == action


class TestFaultPlan:
    def test_actions_sorted_and_grouped_by_op(self):
        plan = FaultPlan([
            FaultAction(9, "heal"),
            FaultAction(2, "checkpoint"),
            FaultAction(2, "restart"),
        ])
        assert [a.at_op for a in plan.actions] == [2, 2, 9]
        assert [a.action for a in plan.actions_at(2)] == [
            "checkpoint", "restart",
        ]
        assert plan.actions_at(5) == []
        assert plan.last_op == 9
        assert len(plan) == 3

    def test_same_op_actions_keep_listed_order(self):
        # heal-before-inject vs inject-before-heal differ; order must be
        # the author's, not alphabetical.
        plan = FaultPlan([
            FaultAction(3, "heal", {"label": "x"}),
            FaultAction(3, "flaky_index", {"fail_after": 1}, label="x"),
        ])
        assert [a.action for a in plan.actions_at(3)] == [
            "heal", "flaky_index",
        ]

    def test_json_roundtrip(self):
        plan = standard_plan(100)
        restored = FaultPlan.from_json_dict(plan.to_json_dict())
        assert restored.actions == plan.actions

    def test_empty_plan(self):
        plan = FaultPlan([])
        assert plan.last_op == -1
        assert plan.actions_at(0) == []


class TestStandardPlan:
    def test_needs_a_minimum_duration(self):
        with pytest.raises(ValueError, match="duration_ops"):
            standard_plan(10)

    def test_composes_the_acceptance_scenario(self):
        plan = standard_plan(200)
        names = [a.action for a in plan.actions]
        # Index corruption, snapshot bit-rot, and a mid-stream topology
        # mutation all present — the composed campaign of the acceptance
        # criteria — plus the crash/restart pair that exercises recovery.
        for required in (
            "corrupt_md2d", "flip_snapshot", "remove_door", "add_door",
            "arm_crash", "restart", "checkpoint", "heal", "drop_dpt",
            "flaky_index", "latency",
        ):
            assert required in names, required
        # The crash is armed before the mutation that trips it, and the
        # restart follows; the mutation is retried after recovery.
        assert names.index("arm_crash") < names.index("add_door")
        assert (
            [a.action for a in plan.actions].count("add_door") == 2
        )
        for action in plan.actions:
            assert action.action in ACTIONS
            assert action.at_op < 200

    def test_scales_with_duration(self):
        short = standard_plan(25)
        long = standard_plan(1000)
        assert short.last_op < 25
        assert long.last_op < 1000
        assert len(short) == len(long)
