"""Deadline semantics: budgets, expiry, and threading through hot loops."""

import math

import pytest

from repro.exceptions import DeadlineExceededError, QueryError
from repro.model.figure1 import P, Q, build_figure1
from repro.distance.point_to_point import (
    pt2pt_distance,
    pt2pt_distance_basic,
    pt2pt_distance_refined,
)
from repro.queries import knn_query, range_query
from repro.runtime import Deadline, as_deadline


class TestDeadlineObject:
    def test_zero_budget_expires_immediately(self):
        deadline = Deadline(0)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError):
            deadline.check()

    def test_unbounded_never_expires(self):
        deadline = Deadline.unbounded()
        assert not deadline.expired
        assert math.isinf(deadline.remaining())
        deadline.check()  # no raise

    def test_negative_budget_rejected(self):
        with pytest.raises(QueryError):
            Deadline(-1.0)

    def test_nan_budget_rejected(self):
        with pytest.raises(QueryError):
            Deadline(float("nan"))

    def test_fake_clock_expiry(self, fake_clock):
        deadline = Deadline(5.0, clock=fake_clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(5.0)
        fake_clock.advance(4.9)
        deadline.check()  # still inside budget
        fake_clock.advance(0.2)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("range query")
        assert excinfo.value.budget == 5.0
        assert "range query" in str(excinfo.value)

    def test_as_deadline_coercions(self):
        assert as_deadline(None) is None
        existing = Deadline(1.0)
        assert as_deadline(existing) is existing
        coerced = as_deadline(2.5)
        assert isinstance(coerced, Deadline)
        assert coerced.budget == 2.5


class TestDeadlineInQueries:
    """A deadline of 0 must abort promptly instead of completing the scan."""

    def test_range_query_zero_deadline_raises(self, figure1_framework):
        with pytest.raises(DeadlineExceededError):
            range_query(figure1_framework, P, 10.0, deadline=Deadline(0))

    def test_knn_query_zero_deadline_raises(self, figure1_framework):
        with pytest.raises(DeadlineExceededError):
            knn_query(figure1_framework, P, 3, deadline=Deadline(0))

    @pytest.mark.parametrize(
        "algorithm",
        [pt2pt_distance, pt2pt_distance_basic, pt2pt_distance_refined],
    )
    def test_pt2pt_zero_deadline_raises(self, algorithm):
        space = build_figure1()
        with pytest.raises(DeadlineExceededError):
            algorithm(space, P, Q, deadline=Deadline(0))

    def test_generous_deadline_changes_nothing(self, figure1_framework):
        bare = range_query(figure1_framework, P, 10.0)
        budgeted = range_query(
            figure1_framework, P, 10.0, deadline=Deadline(60.0)
        )
        assert bare == budgeted

    def test_mid_query_expiry_with_ticking_clock(self, figure1_framework):
        # Every clock read advances time, so the budget survives the entry
        # check but runs out a few loop iterations in — the per-door checks
        # inside the scan must catch it.
        class TickingClock:
            def __init__(self, tick):
                self.now = 0.0
                self.tick = tick
                self.reads = 0

            def __call__(self):
                self.now += self.tick
                self.reads += 1
                return self.now

        clock = TickingClock(tick=0.1)
        deadline = Deadline(0.5, clock=clock)
        with pytest.raises(DeadlineExceededError):
            range_query(figure1_framework, P, 50.0, deadline=deadline)
        assert clock.reads > 2  # made it past the entry check into the loops
