"""repro.persist — crash-safe index persistence and recovery.

The paper's precomputed structures (§IV) are durable artifacts in any real
deployment: built once, loaded many times, and never recomputed just
because a process restarted (IS-LABEL and TopCom treat their distance
indexes the same way).  This package is that durability contract:

* :mod:`~repro.persist.snapshot` — the versioned snapshot format: CRC32
  per section, SHA-256 over the whole file, a manifest recording the
  topology epoch / builder parameters / component hashes, and atomic
  write-temp-then-rename publication;
* :mod:`~repro.persist.wal` — :class:`TopologyWAL` +
  :class:`WalRecorder`: door/partition mutations are durably logged
  *before* they apply, so recovery is always snapshot + replay;
* :mod:`~repro.persist.recovery` — :class:`SnapshotStore` (numbered
  generations, quarantine, pruning) and :class:`RecoveryManager` (the
  verify → replay → quarantine → rebuild ladder).

See ``docs/persistence.md`` for the format specification and the recovery
ladder, and ``python -m repro persist --help`` for the CLI.
"""

from repro.persist.recovery import (
    RecoveryManager,
    RecoveryReport,
    RecoverySource,
    SnapshotStore,
)
from repro.persist.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    load_snapshot,
    read_manifest,
    save_snapshot,
    snapshot_bytes,
)
from repro.persist.wal import (
    ReplayReport,
    TopologyWAL,
    WalRecord,
    WalRecorder,
    apply_record,
    replay_records,
)

__all__ = [
    "RecoveryManager",
    "RecoveryReport",
    "RecoverySource",
    "ReplayReport",
    "SNAPSHOT_FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "SnapshotStore",
    "TopologyWAL",
    "WalRecord",
    "WalRecorder",
    "apply_record",
    "load_snapshot",
    "read_manifest",
    "replay_records",
    "save_snapshot",
    "snapshot_bytes",
]
