"""Tests for visibility graphs and obstructed distances."""

import math

import pytest

from repro.exceptions import GeometryError
from repro.geometry import Point, Polygon, VisibilityGraph, obstructed_distance, rectangle


@pytest.fixture
def empty_room():
    return VisibilityGraph(rectangle(0, 0, 10, 10))


@pytest.fixture
def room_with_pillar():
    """A 10x10 room with a 2x2 pillar dead centre."""
    return VisibilityGraph(rectangle(0, 0, 10, 10), [rectangle(4, 4, 6, 6)])


class TestVisibility:
    def test_clear_line_of_sight(self, empty_room):
        assert empty_room.is_visible(Point(1, 1), Point(9, 9))

    def test_sight_blocked_by_pillar(self, room_with_pillar):
        assert not room_with_pillar.is_visible(Point(1, 5), Point(9, 5))

    def test_sight_past_pillar(self, room_with_pillar):
        assert room_with_pillar.is_visible(Point(1, 1), Point(9, 1))

    def test_sight_cannot_leave_boundary(self, empty_room):
        assert not empty_room.is_visible(Point(1, 1), Point(15, 1))

    def test_grazing_obstacle_edge_is_visible(self, room_with_pillar):
        # Sliding exactly along the pillar's bottom edge is allowed.
        assert room_with_pillar.is_visible(Point(0, 4), Point(10, 4))

    def test_degenerate_same_point(self, empty_room):
        assert empty_room.is_visible(Point(3, 3), Point(3, 3))


class TestShortestPath:
    def test_unobstructed_distance_is_euclidean(self, empty_room):
        assert empty_room.distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_path_detours_around_pillar(self, room_with_pillar):
        dist, path = room_with_pillar.shortest_path(Point(1, 5), Point(9, 5))
        # Must be longer than straight line but shorter than hugging the walls.
        assert dist > 8.0
        assert dist < 12.0
        assert path[0] == Point(1, 5)
        assert path[-1] == Point(9, 5)
        assert len(path) >= 3  # at least one pillar corner as waypoint

    def test_detour_distance_exact(self):
        # 10x10 room, pillar from (4,1) to (6,9): the symmetric detours under
        # the pillar (via its bottom corners) and over it both measure 12.
        graph = VisibilityGraph(rectangle(0, 0, 10, 10), [rectangle(4, 1, 6, 9)])
        dist = graph.distance(Point(1, 5), Point(9, 5))
        expected = (
            Point(1, 5).distance_to(Point(4, 1))
            + Point(4, 1).distance_to(Point(6, 1))
            + Point(6, 1).distance_to(Point(9, 5))
        )
        assert dist == pytest.approx(expected, rel=1e-9)

    def test_obstacle_flush_with_wall_still_allows_edge_walk(self):
        # Obstacles are open sets (Zhang et al. semantics): the path may hug
        # the obstacle edge even when the obstacle touches the room wall.
        graph = VisibilityGraph(rectangle(0, 0, 10, 10), [rectangle(4, 0, 6, 8)])
        dist = graph.distance(Point(2, 1), Point(8, 1))
        expected = (
            Point(2, 1).distance_to(Point(4, 0))
            + 2.0
            + Point(6, 0).distance_to(Point(8, 1))
        )
        assert dist == pytest.approx(expected, rel=1e-9)

    def test_point_inside_obstacle_is_unreachable(self):
        graph = VisibilityGraph(rectangle(0, 0, 10, 10), [rectangle(4, 4, 6, 6)])
        dist, path = graph.shortest_path(Point(1, 5), Point(5, 5))
        assert math.isinf(dist)
        assert path == []

    def test_nonconvex_boundary_path(self):
        # L-shaped room: path must round the inner corner at (2, 2).
        shape = Polygon(
            [
                Point(0, 0),
                Point(4, 0),
                Point(4, 2),
                Point(2, 2),
                Point(2, 4),
                Point(0, 4),
            ]
        )
        graph = VisibilityGraph(shape)
        dist, path = graph.shortest_path(Point(1, 3.5), Point(3.5, 1))
        expected = Point(1, 3.5).distance_to(Point(2, 2)) + Point(2, 2).distance_to(
            Point(3.5, 1)
        )
        assert dist == pytest.approx(expected, rel=1e-9)
        assert any(p.approx_equals(Point(2, 2)) for p in path)

    def test_query_point_on_wrong_floor_raises(self, empty_room):
        with pytest.raises(GeometryError):
            empty_room.shortest_path(Point(1, 1, floor=2), Point(2, 2, floor=2))

    def test_distance_symmetry_with_obstacles(self, room_with_pillar):
        a, b = Point(1, 5), Point(9, 5)
        assert room_with_pillar.distance(a, b) == pytest.approx(
            room_with_pillar.distance(b, a)
        )

    def test_obstructed_distance_helper(self):
        d = obstructed_distance(
            rectangle(0, 0, 10, 10), [rectangle(4, 4, 6, 6)], Point(1, 5), Point(9, 5)
        )
        assert d > 8.0

    def test_obstacle_floor_mismatch_raises(self):
        with pytest.raises(GeometryError):
            VisibilityGraph(rectangle(0, 0, 5, 5, floor=0), [rectangle(1, 1, 2, 2, floor=1)])
