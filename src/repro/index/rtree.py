"""A from-scratch R-tree over partitions, backing ``getHostPartition``.

The paper implements ``getHostPartition(p)`` "as a point query using a
spatial access method (e.g., an R-tree) that indexes all partitions"
(§III-D2).  Floor plans are static, so the tree is bulk-loaded with the
Sort-Tile-Recursive (STR) packing algorithm; no dynamic insertion is needed
(objects are indexed separately, per partition, by the grid index of §V-B).

Floors are handled by giving every entry the set of floors its partition
spans; a point query filters on the query point's floor before testing
bounding boxes, and finishes with the exact polygon containment test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry import BoundingBox, Point
from repro.model.builder import IndoorSpace

#: Maximum number of entries per R-tree node.
DEFAULT_NODE_CAPACITY = 8


@dataclass(frozen=True)
class _LeafEntry:
    box: BoundingBox
    partition_id: int
    floors: Tuple[int, ...]


class _Node:
    """An R-tree node: either a leaf (entries) or internal (children)."""

    __slots__ = ("box", "entries", "children")

    def __init__(
        self,
        box: BoundingBox,
        entries: Optional[List[_LeafEntry]] = None,
        children: Optional[List["_Node"]] = None,
    ) -> None:
        self.box = box
        self.entries = entries
        self.children = children

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


def _enclosing_box(boxes: Sequence[BoundingBox]) -> BoundingBox:
    box = boxes[0]
    for other in boxes[1:]:
        box = box.union(other)
    return box


class PartitionRTree:
    """STR bulk-loaded R-tree answering partition point queries.

    Args:
        space: the indoor space whose partitions to index.
        node_capacity: maximum entries/children per node.
    """

    def __init__(
        self, space: IndoorSpace, node_capacity: int = DEFAULT_NODE_CAPACITY
    ) -> None:
        if node_capacity < 2:
            raise ValueError(f"node capacity must be >= 2, got {node_capacity}")
        self._space = space
        self._capacity = node_capacity
        entries = [
            _LeafEntry(p.polygon.bounding_box, p.partition_id, p.floors)
            for p in space.partitions()
        ]
        self._root = self._bulk_load(entries)
        self._height = self._measure_height()

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------
    def _bulk_load(self, entries: List[_LeafEntry]) -> Optional[_Node]:
        if not entries:
            return None
        leaves = self._pack_leaves(entries)
        level: List[_Node] = leaves
        while len(level) > 1:
            level = self._pack_internal(level)
        return level[0]

    def _str_tiles(self, items: list, key_x, key_y) -> List[list]:
        """Sort-Tile-Recursive packing: sort by x, slice into vertical tiles,
        sort each tile by y, and chunk into node-sized groups."""
        capacity = self._capacity
        count = len(items)
        node_count = math.ceil(count / capacity)
        slice_count = max(1, math.ceil(math.sqrt(node_count)))
        slice_size = math.ceil(count / slice_count)
        items = sorted(items, key=key_x)
        groups: List[list] = []
        for start in range(0, count, slice_size):
            tile = sorted(items[start : start + slice_size], key=key_y)
            for offset in range(0, len(tile), capacity):
                groups.append(tile[offset : offset + capacity])
        return groups

    def _pack_leaves(self, entries: List[_LeafEntry]) -> List[_Node]:
        groups = self._str_tiles(
            entries,
            key_x=lambda e: e.box.center[0],
            key_y=lambda e: e.box.center[1],
        )
        return [
            _Node(_enclosing_box([e.box for e in group]), entries=group)
            for group in groups
        ]

    def _pack_internal(self, nodes: List[_Node]) -> List[_Node]:
        groups = self._str_tiles(
            nodes,
            key_x=lambda n: n.box.center[0],
            key_y=lambda n: n.box.center[1],
        )
        return [
            _Node(_enclosing_box([n.box for n in group]), children=group)
            for group in groups
        ]

    def _measure_height(self) -> int:
        height = 0
        node = self._root
        while node is not None:
            height += 1
            node = None if node.is_leaf else node.children[0]
        return height

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Tree height (0 for an empty tree)."""
        return self._height

    def candidate_partitions(self, point: Point) -> List[int]:
        """Partition ids whose bounding box contains ``point`` on its floor,
        ascending.  A superset of the true answer; callers refine with the
        exact polygon test."""
        results: List[int] = []
        if self._root is None:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.contains_point(point):
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if point.floor in entry.floors and entry.box.contains_point(
                        point
                    ):
                        results.append(entry.partition_id)
            else:
                stack.extend(node.children)
        results.sort()
        return results

    def locate(self, point: Point) -> Optional[int]:
        """The id of the partition containing ``point`` (lowest id wins on
        shared walls), or ``None`` — the ``getHostPartition`` point query."""
        for partition_id in self.candidate_partitions(point):
            if self._space.partition(partition_id).contains(point):
                return partition_id
        return None

    def install(self) -> "PartitionRTree":
        """Register this tree as the space's partition locator and return
        itself, so ``space.get_host_partition`` uses the index."""
        self._space.set_partition_locator(self.locate)
        return self
