"""Fixtures for the interprocedural rules (REP006/REP007/REP008) and the
call-graph substrate they share — plus the REP003 import-aware
resolution and the baseline/suppression interactions the interprocedural
findings must respect."""

import textwrap

from repro.analysis.lint import Baseline, LintConfig, run_lint


def lint_project(tmp_path, files, select=None, baseline=None):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    config = LintConfig(
        root=tmp_path,
        paths=[tmp_path / "src"],
        select=set(select) if select else None,
        baseline_path=baseline,
        jobs=1,
    )
    return run_lint(config)


def rules_of(report):
    return [f.rule for f in report.new]


# ---------------------------------------------------------------------------
# REP006 — lock-order cycles
# ---------------------------------------------------------------------------

CYCLIC_PAIR = """\
    import threading


    class Alpha:
        def __init__(self, peer: "Beta") -> None:
            self._lock = threading.Lock()
            self._peer = peer

        def forward(self) -> None:
            with self._lock:
                self._peer.poke()

        def poke(self) -> None:
            with self._lock:
                pass


    class Beta:
        def __init__(self, peer: "Alpha") -> None:
            self._lock = threading.Lock()
            self._peer = peer

        def backward(self) -> None:
            with self._lock:
                self._peer.poke()

        def poke(self) -> None:
            with self._lock:
                pass
    """

ORDERED_PAIR = """\
    import threading


    class Alpha:
        def __init__(self, peer: "Beta") -> None:
            self._lock = threading.Lock()
            self._peer = peer

        def forward(self) -> None:
            with self._lock:
                self._peer.poke()

        def poke(self) -> None:
            pass


    class Beta:
        def __init__(self, peer: "Alpha") -> None:
            self._lock = threading.Lock()
            self._peer = peer

        def backward(self) -> None:
            self._peer.poke()

        def poke(self) -> None:
            with self._lock:
                pass
    """


class TestLockOrder:
    def test_interprocedural_cycle_fires(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/serve/pair.py": CYCLIC_PAIR},
            select={"REP006"},
        )
        assert "REP006" in rules_of(report)
        message = report.new[0].message
        assert "Alpha._lock" in message
        assert "Beta._lock" in message

    def test_consistent_order_is_clean(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/serve/pair.py": ORDERED_PAIR},
            select={"REP006"},
        )
        assert report.new == []

    def test_reentrant_rlock_self_reacquire_is_clean(self, tmp_path):
        source = """\
            import threading


            class Tree:
                def __init__(self) -> None:
                    self._lock = threading.RLock()

                def outer(self) -> None:
                    with self._lock:
                        self.inner()

                def inner(self) -> None:
                    with self._lock:
                        pass
            """
        report = lint_project(
            tmp_path,
            {"src/repro/serve/tree.py": source},
            select={"REP006"},
        )
        assert report.new == []


# ---------------------------------------------------------------------------
# REP007 — blocking under a held lock
# ---------------------------------------------------------------------------

SLEEP_UNDER_LOCK = """\
    import threading
    import time


    class Worker:
        def __init__(self) -> None:
            self._lock = threading.Lock()

        def direct(self) -> None:
            with self._lock:
                time.sleep(0.1)
    """

TRANSITIVE_SLEEP = """\
    import threading
    import time


    class Worker:
        def __init__(self) -> None:
            self._lock = threading.Lock()

        def outer(self) -> None:
            with self._lock:
                self._nap()

        def _nap(self) -> None:
            time.sleep(0.1)
    """


class TestBlockingUnderLock:
    def test_direct_sleep_fires(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/serve/worker.py": SLEEP_UNDER_LOCK},
            select={"REP007"},
        )
        assert rules_of(report) == ["REP007"]
        assert "sleep" in report.new[0].message

    def test_transitive_sleep_fires_at_call_site(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/serve/worker.py": TRANSITIVE_SLEEP},
            select={"REP007"},
        )
        assert rules_of(report) == ["REP007"]
        finding = report.new[0]
        assert "_nap" in finding.message  # the chain names the callee
        # The finding anchors at the call made under the lock, not at
        # the primitive buried in the helper.
        assert finding.line == 11

    def test_sleep_outside_lock_is_clean(self, tmp_path):
        source = """\
            import threading
            import time


            class Worker:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                def tidy(self) -> None:
                    with self._lock:
                        pass
                    time.sleep(0.1)
            """
        report = lint_project(
            tmp_path,
            {"src/repro/serve/worker.py": source},
            select={"REP007"},
        )
        assert report.new == []

    def test_condition_wait_on_held_cv_is_exempt(self, tmp_path):
        source = """\
            import threading


            class Box:
                def __init__(self) -> None:
                    self._cv = threading.Condition()
                    self._full = False

                def take(self) -> None:
                    with self._cv:
                        while not self._full:
                            self._cv.wait()
            """
        report = lint_project(
            tmp_path,
            {"src/repro/serve/box.py": source},
            select={"REP007"},
        )
        assert report.new == []

    def test_noqa_suppresses_interprocedural_finding(self, tmp_path):
        source = TRANSITIVE_SLEEP.replace(
            "self._nap()", "self._nap()  # repro: noqa REP007"
        )
        report = lint_project(
            tmp_path,
            {"src/repro/serve/worker.py": source},
            select={"REP007"},
        )
        assert report.new == []
        assert report.suppressed == 1


# ---------------------------------------------------------------------------
# REP008 — epoch-fence dataflow
# ---------------------------------------------------------------------------

UNFENCED_MERGE = """\
    from typing import Dict


    class ShardAnswer:
        epoch = 0


    def gather() -> "Dict[int, ShardAnswer]":
        return {}


    def merge():
        replies = gather()
        return replies
    """

FENCED_MERGE = """\
    from typing import Dict


    class ShardAnswer:
        epoch = 0


    def gather() -> "Dict[int, ShardAnswer]":
        return {}


    def drop_stale(replies, floor: int) -> None:
        for reply in list(replies.values()):
            if reply.epoch < floor:
                del replies[0]


    def merge():
        replies = gather()
        drop_stale(replies, 1)
        return replies
    """


class TestEpochFlow:
    def test_unfenced_merge_fires(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/shard/merge.py": UNFENCED_MERGE},
            select={"REP008"},
        )
        assert rules_of(report) == ["REP008"]
        assert "epoch fence" in report.new[0].message

    def test_fenced_merge_is_clean(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/shard/merge.py": FENCED_MERGE},
            select={"REP008"},
        )
        assert report.new == []

    def test_rule_scoped_to_shard_package(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/serve/merge.py": UNFENCED_MERGE},
            select={"REP008"},
        )
        assert report.new == []

    def test_unstamped_query_response_fires(self, tmp_path):
        source = """\
            def respond(value):
                return QueryResponse(value=value)
            """
        report = lint_project(
            tmp_path,
            {"src/repro/shard/reply.py": source},
            select={"REP008"},
        )
        assert rules_of(report) == ["REP008"]
        assert "reply_epochs" in report.new[0].message

    def test_stamped_query_response_is_clean(self, tmp_path):
        source = """\
            def respond(value, epochs):
                return QueryResponse(value=value, reply_epochs=epochs)
            """
        report = lint_project(
            tmp_path,
            {"src/repro/shard/reply.py": source},
            select={"REP008"},
        )
        assert report.new == []


# ---------------------------------------------------------------------------
# Resolver extensions the witness traces forced (call-result bindings,
# callback slots) — each closed a real call-graph hole.
# ---------------------------------------------------------------------------

CALL_RESULT_SLEEP = """\
    import threading
    import time


    class Helper:
        def nap(self) -> None:
            time.sleep(0.1)


    class Owner:
        def __init__(self) -> None:
            self._lock = threading.Lock()

        def _get(self) -> "Helper":
            return Helper()

        def outer(self) -> None:
            helper = self._get()
            with self._lock:
                helper.nap()
    """

CALLBACK_SLEEP = """\
    import threading
    import time
    from typing import Callable, Optional


    class Coordinator:
        def __init__(
            self, on_adopt: Optional[Callable[[int], None]] = None
        ) -> None:
            self._lock = threading.Lock()
            self._on_adopt = on_adopt

        def run(self) -> None:
            with self._lock:
                if self._on_adopt is not None:
                    self._on_adopt(1)


    class Service:
        def __init__(self) -> None:
            self._coord = Coordinator(on_adopt=self._adopt)

        def _adopt(self, epoch: int) -> None:
            time.sleep(0.1)
    """


class TestResolverExtensions:
    def test_call_result_binding_resolves(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/serve/binding.py": CALL_RESULT_SLEEP},
            select={"REP007"},
        )
        assert rules_of(report) == ["REP007"]
        assert "nap" in report.new[0].message

    def test_callback_slot_dispatches(self, tmp_path):
        report = lint_project(
            tmp_path,
            {"src/repro/shard/hook.py": CALLBACK_SLEEP},
            select={"REP007"},
        )
        assert rules_of(report) == ["REP007"]
        assert "_adopt" in report.new[0].message

    def test_unregistered_callback_slot_stays_silent(self, tmp_path):
        # No call site ever passes on_adopt: the slot resolves to
        # nothing and the run-under-lock call contributes no finding.
        coordinator_only = CALLBACK_SLEEP.split("class Service")[0]
        report = lint_project(
            tmp_path,
            {"src/repro/shard/hook.py": coordinator_only},
            select={"REP007"},
        )
        assert report.new == []


# ---------------------------------------------------------------------------
# REP003 — import-aware callee resolution (satellite: same-named helpers)
# ---------------------------------------------------------------------------

AWARE_HELPER = """\
    def helper(x, deadline=None):
        return x
    """


class TestDeadlineResolution:
    def test_same_named_local_helper_no_longer_false_positives(
        self, tmp_path
    ):
        local = """\
            def helper(x):
                return x


            def caller(x, deadline=None):
                return helper(x)
            """
        report = lint_project(
            tmp_path,
            {
                "src/repro/labels/util.py": AWARE_HELPER,
                "src/repro/serve/use.py": local,
            },
            select={"REP003"},
        )
        # ``helper`` resolves to the local, deadline-free function; the
        # same-named aware helper in another module is irrelevant.
        assert report.new == []

    def test_imported_aware_helper_still_fires(self, tmp_path):
        use = """\
            from repro.labels.util import helper


            def caller(x, deadline=None):
                return helper(x)
            """
        report = lint_project(
            tmp_path,
            {
                "src/repro/labels/util.py": AWARE_HELPER,
                "src/repro/serve/use.py": use,
            },
            select={"REP003"},
        )
        assert rules_of(report) == ["REP003"]
        assert "helper" in report.new[0].message

    def test_unresolved_callee_falls_back_to_name_match(self, tmp_path):
        use = """\
            def caller(engine, x, deadline=None):
                return engine.helper(x)
            """
        report = lint_project(
            tmp_path,
            {
                "src/repro/labels/util.py": AWARE_HELPER,
                "src/repro/serve/use.py": use,
            },
            select={"REP003"},
        )
        # ``engine`` has no inferable type: coarse matching still errs
        # toward catching the dropped deadline.
        assert rules_of(report) == ["REP003"]


# ---------------------------------------------------------------------------
# Baseline / fingerprint interactions
# ---------------------------------------------------------------------------


class TestInterprocBaseline:
    def test_fingerprints_stable_under_unrelated_additions(self, tmp_path):
        before = lint_project(
            tmp_path,
            {"src/repro/serve/worker.py": TRANSITIVE_SLEEP},
            select={"REP007"},
        )
        grown = (
            TRANSITIVE_SLEEP
            + "\n\n    def unrelated() -> int:\n        return 1\n"
        )
        after = lint_project(
            tmp_path,
            {"src/repro/serve/worker.py": grown},
            select={"REP007"},
        )
        assert {f.fingerprint for f in before.new} == {
            f.fingerprint for f in after.new
        }

    def test_baselined_interproc_finding_does_not_gate(self, tmp_path):
        first = lint_project(
            tmp_path,
            {"src/repro/serve/worker.py": TRANSITIVE_SLEEP},
            select={"REP007"},
        )
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)
        second = lint_project(
            tmp_path,
            {"src/repro/serve/worker.py": TRANSITIVE_SLEEP},
            select={"REP007"},
            baseline=baseline_path,
        )
        assert second.new == []
        assert len(second.baselined) == 1
        assert second.exit_code(strict=True) == 0

    def test_expired_baseline_entry_fails_only_under_strict(self, tmp_path):
        first = lint_project(
            tmp_path,
            {"src/repro/serve/worker.py": TRANSITIVE_SLEEP},
            select={"REP007"},
        )
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)
        fixed = TRANSITIVE_SLEEP.replace("time.sleep(0.1)", "pass")
        second = lint_project(
            tmp_path,
            {"src/repro/serve/worker.py": fixed},
            select={"REP007"},
            baseline=baseline_path,
        )
        assert second.new == []
        assert len(second.expired) == 1
        assert second.exit_code(strict=False) == 0
        assert second.exit_code(strict=True) == 1
