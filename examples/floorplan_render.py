#!/usr/bin/env python3
"""Render floor plans, queries, and routes to SVG.

Draws the paper's Figure-1 floor plan with the motivating shortest path and
a range-query disc overlaid, plus the ground floor of a synthetic office
building — a visual sanity check of the model and the generator.

Run:  python examples/floorplan_render.py [output_dir]
Writes figure1.svg and office_floor0.svg into the output directory
(default: the current directory).
"""

import sys
from pathlib import Path

from repro import IndoorObject, Point, pt2pt_path
from repro.model.figure1 import P, Q, build_figure1
from repro.synthetic import BuildingConfig, generate_building
from repro.viz import render_svg, save_svg


def render_figure1(out_dir: Path) -> Path:
    space = build_figure1()
    objects = [
        IndoorObject(1, Point(6.5, 9.0), payload="defibrillator"),
        IndoorObject(2, Point(1.0, 5.0), payload="extinguisher"),
        IndoorObject(3, Point(18.0, 8.0), payload="coffee machine"),
    ]
    path = pt2pt_path(space, P, Q)
    svg = render_svg(
        space,
        objects=objects,
        paths=[path],
        query=(P, 8.0),
        width=900,
    )
    target = out_dir / "figure1.svg"
    save_svg(svg, target)
    return target


def render_office_floor(out_dir: Path) -> Path:
    building = generate_building(BuildingConfig(floors=2, rooms_per_floor=10))
    svg = render_svg(building.space, floor=0, width=1100, labels=False)
    target = out_dir / "office_floor0.svg"
    save_svg(svg, target)
    return target


def main():
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    for produced in (render_figure1(out_dir), render_office_floor(out_dir)):
        print(f"wrote {produced}")


if __name__ == "__main__":
    main()
