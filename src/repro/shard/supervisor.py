"""Process supervision for the sharded serving tier.

:class:`ShardSupervisor` owns the worker fleet: it spawns one process per
:class:`~repro.shard.spec.ShardSpec`, watches each with heartbeat pings
and a liveness deadline, and restarts casualties with exponential backoff
under a per-shard restart budget.  It deliberately mirrors the
single-process :class:`~repro.serve.lifecycle.SupervisedQueryService`
semantics one level up: a shard is STARTING until its worker reports
``ready`` (having run the arena → snapshot → rebuild ladder), READY while
it answers, RESTARTING between incarnations, and FAILED once its budget is
spent — at which point the router simply treats it as permanently missing
and keeps degrading that slice of every answer.

Failure detection is two-pronged, matching the two ways a process dies:

* **crash** — the worker's end of the pipe closes; the receiver thread
  sees EOF and fails every pending future *immediately* (no query waits a
  full timeout on a dead process).
* **hang** — the process is alive but stopped answering pings; the monitor
  thread kills it once ``liveness_timeout`` elapses without a pong.

Workers default to the ``spawn`` start method: the supervisor runs inside
a threaded service, and forking a multi-threaded process can deadlock the
child in a held allocator or pipe lock — precisely at restart time, when
it matters most.  Tests on Linux may pass ``start_method="fork"`` to skip
interpreter boot.
"""

from __future__ import annotations

import dataclasses
import enum
import multiprocessing
import random
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

import repro.exceptions as _exceptions
from repro.exceptions import ReproError, ShardUnavailableError
from repro.serve.metrics import MetricsRegistry
from repro.serve.requests import QueryRequest
from repro.shard.spec import ShardSpec
from repro.shard.worker import shard_worker_main


class ShardAnswer(NamedTuple):
    """One worker's exact answer plus the topology epoch it was computed
    at — the unit the router's epoch fence filters on."""

    value: Any
    epoch: int


class ShardState(enum.Enum):
    """Lifecycle of one shard slot (not one process — slots survive their
    incarnations)."""

    STARTING = "starting"
    READY = "ready"
    RESTARTING = "restarting"
    FAILED = "failed"
    STOPPED = "stopped"


def _rebuild_exception(name: str, message: str) -> Exception:
    """Reconstruct a worker-side :class:`ReproError` by class name (falls
    back to the base class for anything unknown)."""
    cls = getattr(_exceptions, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(message)
        except TypeError:  # multi-arg constructor
            return ReproError(f"{name}: {message}")
    return ReproError(f"{name}: {message}")


#: Cap on queries combined into one ``batch`` pipe message, so a backlog
#: can never wedge a worker behind an unbounded batch (liveness pings
#: queue on the same pipe).
_MAX_BATCH = 32


class _Incarnation:
    """One worker process plus its pipe and receiver thread.

    All mutable state is guarded by ``self._lock``; the receiver thread is
    the only writer of results, the monitor and router threads the only
    senders.  A fresh incarnation is built for every (re)start — futures
    never migrate between processes.

    Query submission uses *send combining*: the first submitter becomes
    the flusher and drains the outbox in combined ``batch`` messages;
    submitters arriving while a send is in flight just append and return.
    Under concurrent load the per-message pipe overhead (pickle header,
    syscall, reader wake-up) amortises across the batch, and an idle
    tier still sends every query immediately — no Nagle timer, no added
    latency.  Actual pipe writes serialise on ``self._send_lock`` so a
    combined send can never interleave with a ping or a control message.
    """

    def __init__(self, spec: ShardSpec, ctx) -> None:
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=shard_worker_main,
            args=(spec, child_conn),
            name=f"repro-shard-{spec.shard_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # parent keeps one end only, so EOF propagates
        self.conn = parent_conn
        self.ready_event = threading.Event()
        self.spec = spec
        with self._lock:
            self._pending: Dict[int, Future] = {}
            self._control: Dict[Tuple[str, int], Future] = {}
            self._outbox: List[Any] = []
            self._flushing = False
            self._seq = 0
            self._last_pong = time.monotonic()
            self._ready_info: Optional[Dict[str, Any]] = None
            self._start_error: Optional[str] = None
            self._dead = False
        self.receiver = threading.Thread(
            target=self._receive_loop,
            name=f"repro-shard-recv-{spec.shard_id}",
            daemon=True,
        )
        self.receiver.start()

    # -- receiver thread ------------------------------------------------
    def _receive_loop(self) -> None:
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                self._mark_dead("worker pipe closed")
                return
            kind = message[0]
            if kind == "result" or kind == "error":
                self._dispatch_reply(message)
            elif kind == "batch_result":
                for reply in message[1]:
                    self._dispatch_reply(reply)
            elif kind == "pong":
                with self._lock:
                    self._last_pong = time.monotonic()
            elif kind in ("prepare_ack", "commit_ack", "abort_ack"):
                # Reconfig control-plane acks double as liveness proof:
                # a worker deep in a staging rebuild answers no pings,
                # but its eventual ack resets the hang clock.
                epoch = int(message[1])
                result = tuple(message[2:])
                with self._lock:
                    self._last_pong = time.monotonic()
                    future = self._control.pop(
                        (kind.split("_")[0], epoch), None
                    )
                if future is not None:
                    try:
                        future.set_result(result)
                    except InvalidStateError:  # pragma: no cover - late ack
                        pass
            elif kind == "ready":
                with self._lock:
                    self._ready_info = message[1]
                    self._last_pong = time.monotonic()
                self.ready_event.set()
            elif kind == "start_failed":
                with self._lock:
                    self._start_error = message[1]
                self.ready_event.set()
            elif kind == "stopped":
                self._mark_dead("worker stopped cleanly")
                return

    def _dispatch_reply(self, reply: Any) -> None:
        """Resolve one ``result`` / ``error`` reply tuple's future.

        A hedged gather cancels the losing probe's future; its reply
        still arrives here later, and resolving a cancelled future would
        raise and kill the receive loop — wedging every request the
        shard has in flight.  Late replies to cancelled futures are
        simply dropped.
        """
        if reply[0] == "result":
            _, seq, value, epoch = reply
            future = self._pop_pending(seq)
            if future is not None:
                try:
                    future.set_result(ShardAnswer(value, int(epoch)))
                except InvalidStateError:
                    pass  # cancelled mid-dispatch: drop the late reply
        else:
            _, seq, exc_name, detail, _epoch = reply
            future = self._pop_pending(seq)
            if future is not None:
                try:
                    future.set_exception(_rebuild_exception(exc_name, detail))
                except InvalidStateError:
                    pass  # cancelled mid-dispatch: drop the late reply

    def _pop_pending(self, seq: int) -> Optional[Future]:
        with self._lock:
            return self._pending.pop(seq, None)

    def _mark_dead(self, why: str) -> None:
        with self._lock:
            if self._dead:
                return
            self._dead = True
            pending = list(self._pending.values())
            pending.extend(self._control.values())
            self._pending.clear()
            self._control.clear()
            self._outbox.clear()
        self.ready_event.set()
        exc = ShardUnavailableError(
            f"shard {self.spec.shard_id} became unavailable: {why}",
            shard=self.spec.shard_id,
            state=ShardState.RESTARTING.value,
        )
        for future in pending:
            try:
                if not future.done():
                    future.set_exception(exc)
            except InvalidStateError:
                pass  # a hedge cancellation won the race; nothing waits

    # -- senders (router / monitor threads) -----------------------------
    def submit(self, request: QueryRequest, budget_s: Optional[float]) -> Future:
        future: Future = Future()
        with self._lock:
            if self._dead:
                raise ShardUnavailableError(
                    f"shard {self.spec.shard_id} worker is gone",
                    shard=self.spec.shard_id,
                    state=ShardState.RESTARTING.value,
                )
            self._seq += 1
            seq = self._seq
            self._pending[seq] = future
            self._outbox.append((seq, request, budget_s))
            if self._flushing:
                # The active flusher will pick this item up in its next
                # combined send; returning now is what makes submits
                # under load coalesce instead of queueing on the pipe.
                return future
            self._flushing = True
        self._flush_outbox()
        return future

    def _flush_outbox(self) -> None:
        """Drain the outbox in ``batch`` messages of at most
        ``_MAX_BATCH`` queries.  Exactly one thread runs this at a time
        (``self._flushing``); the pipe write happens outside
        ``self._lock`` so concurrent submitters keep appending."""
        while True:
            with self._lock:
                if self._dead:
                    self._outbox.clear()
                    self._flushing = False
                    return
                batch = self._outbox[:_MAX_BATCH]
                del self._outbox[:_MAX_BATCH]
                if not batch:
                    self._flushing = False
                    return
            try:
                # ``_send_lock`` exists solely to serialise pipe writes;
                # it guards no shared state, ``self._lock`` is never held
                # here (the batch was copied out above), and every other
                # contender is itself a sender — so a slow drain delays
                # only other traffic to the same worker, never the
                # supervisor.  The monitor's ping() uses a non-blocking
                # acquire, so it can't wedge behind this send either.
                with self._send_lock:
                    if len(batch) == 1:
                        seq, request, budget_s = batch[0]
                        self.conn.send(  # repro: noqa REP007
                            ("query", seq, request, budget_s)
                        )
                    else:
                        self.conn.send(("batch", batch))  # repro: noqa REP007
            except (BrokenPipeError, OSError):
                # _mark_dead fails the batch's futures (still pending)
                # along with everything else in flight.
                self._mark_dead("worker pipe broke mid-send")
                with self._lock:
                    self._flushing = False
                return

    def request_control(self, kind: str, epoch: int, message: Tuple) -> Future:
        """Send one reconfig control message and return the future its
        ``<kind>_ack`` will resolve (fails with
        :class:`ShardUnavailableError` if the worker dies first)."""
        future: Future = Future()
        with self._lock:
            if self._dead:
                raise ShardUnavailableError(
                    f"shard {self.spec.shard_id} worker is gone",
                    shard=self.spec.shard_id,
                    state=ShardState.RESTARTING.value,
                )
            self._control[(kind, epoch)] = future
        try:
            # Dedicated pipe-write serialiser, no state guarded, no other
            # lock held (see _flush_outbox) — only senders contend.
            with self._send_lock:
                self.conn.send(message)  # repro: noqa REP007
        except (BrokenPipeError, OSError):
            self._mark_dead("worker pipe broke mid-send")
        return future

    def send(self, *message: Any) -> bool:
        """Best-effort control-plane send; False when the pipe is gone."""
        with self._lock:
            if self._dead:
                return False
        try:
            # Dedicated pipe-write serialiser, no state guarded, no other
            # lock held (see _flush_outbox) — only senders contend.
            with self._send_lock:
                self.conn.send(tuple(message))  # repro: noqa REP007
        except (BrokenPipeError, OSError):
            return False
        return True

    def ping(self) -> None:
        with self._lock:
            if self._dead:
                return
            self._seq += 1
            seq = self._seq
        # Never *wait* for the send lock: if a data-plane send is stuck
        # on a full pipe (hung worker), blocking here would wedge the
        # monitor's liveness sweep for every other shard.  Skipping the
        # ping is safe — the pong clock keeps ageing, so hang detection
        # still fires on schedule.
        if not self._send_lock.acquire(blocking=False):
            return
        try:
            self.conn.send(("ping", seq))
        except (BrokenPipeError, OSError):
            pass
        finally:
            self._send_lock.release()

    # -- state ----------------------------------------------------------
    @property
    def dead(self) -> bool:
        with self._lock:
            return self._dead

    @property
    def last_pong(self) -> float:
        with self._lock:
            return self._last_pong

    @property
    def ready_info(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._ready_info

    @property
    def start_error(self) -> Optional[str]:
        with self._lock:
            return self._start_error

    def close(self) -> None:
        self._mark_dead("incarnation closed")
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class _Slot:
    """Supervisor-side bookkeeping for one shard id (lock: supervisor's)."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.state = ShardState.STARTING
        self.incarnation: Optional[_Incarnation] = None
        self.restarts = 0
        self.next_restart_at = 0.0
        self.cold_next = False  # strip the arena from the next respawn
        self.source: Optional[str] = None
        self.epoch: Optional[int] = None
        # When the worker's served epoch started trailing its spec's —
        # the monitor restarts it once the lag outlives the grace period
        # (the self-healing path for a torn commit).
        self.lag_since: Optional[float] = None
        # Per-slot seeded RNG for decorrelated restart jitter: shards
        # draw different delays from each other, yet every supervisor
        # run over the same casualty sequence replays identically.
        self.backoff_rng = random.Random(0xBACC0FF ^ spec.shard_id)
        self.prev_backoff = 0.0


class ShardSupervisor:
    """Spawn, watch, and restart the shard worker fleet.

    Args:
        specs: one spec per shard (shard ids must be dense from 0).
        metrics: registry for supervision counters (shared with the
            router so one snapshot shows the whole tier).
        heartbeat_interval: seconds between liveness pings.
        liveness_timeout: seconds without a pong before a worker is
            declared hung and killed.
        start_timeout: seconds a (re)started worker gets to report ready.
        restart_backoff: base restart delay.  Consecutive restarts back
            off with decorrelated jitter — each delay drawn uniformly
            from ``[restart_backoff, 3 × previous]``, capped at
            ``max_backoff`` — so simultaneous casualties don't restart
            in lockstep and stampede.  Each slot's jitter RNG is seeded
            from its shard id (deterministic replay).
        restart_budget: restarts allowed per shard before it is FAILED.
        start_method: ``multiprocessing`` start method (default
            ``"spawn"``; see module docstring).
        epoch_lag_grace: seconds a READY worker may serve an epoch older
            than its spec's before the monitor restarts it onto the new
            spec (the self-healing path when a reconfig round was torn
            mid-commit).  Defaults to twice the liveness timeout so a
            healthy in-flight round never trips it.
    """

    def __init__(
        self,
        specs: List[ShardSpec],
        *,
        metrics: Optional[MetricsRegistry] = None,
        heartbeat_interval: float = 0.2,
        liveness_timeout: float = 3.0,
        start_timeout: float = 60.0,
        restart_backoff: float = 0.05,
        max_backoff: float = 2.0,
        restart_budget: int = 5,
        start_method: str = "spawn",
        epoch_lag_grace: Optional[float] = None,
    ) -> None:
        if not specs:
            raise ValueError("supervisor needs at least one shard spec")
        if sorted(s.shard_id for s in specs) != list(range(len(specs))):
            raise ValueError("shard ids must be dense starting from 0")
        self.metrics = metrics or MetricsRegistry()
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.start_timeout = start_timeout
        self.restart_backoff = restart_backoff
        self.max_backoff = max_backoff
        self.restart_budget = restart_budget
        self.epoch_lag_grace = (
            epoch_lag_grace
            if epoch_lag_grace is not None
            else 2.0 * liveness_timeout
        )
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        with self._lock:
            self._slots: Dict[int, _Slot] = {
                spec.shard_id: _Slot(spec) for spec in specs
            }
            self._events: List[Dict[str, Any]] = []
            self._stopping = False
            self._monitor: Optional[threading.Thread] = None
            # The fence epoch rises the moment a reconfig round retargets
            # the fleet (no exact answer below it may leave the router);
            # the committed epoch follows once the round completes.
            base_epoch = max(spec.topology_epoch for spec in specs)
            self._fence_epoch = base_epoch
            self._committed_epoch = base_epoch

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardSupervisor":
        """Spawn every worker and the monitor thread (idempotent)."""
        with self._lock:
            if self._monitor is not None:
                return self
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="repro-shard-monitor",
                daemon=True,
            )
            slots = list(self._slots.values())
        for slot in slots:
            self._spawn(slot)
        self._monitor.start()
        return self

    def _spawn(self, slot: _Slot) -> None:
        """(Re)start ``slot``'s worker.  Call *without* ``self._lock``:
        spawning pickles the spec and forks an interpreter — far too slow
        to run under the lock every submitter needs.  The slot is claimed
        under the lock, the process started lock-free, and the
        incarnation installed under the lock again (discarded if the
        supervisor began stopping or the slot was retired meanwhile)."""
        with self._lock:
            if self._stopping:
                return
            spec = slot.spec
            if slot.cold_next:
                spec = dataclasses.replace(spec, arena=None)
                slot.cold_next = False
            slot.incarnation = None
            slot.state = ShardState.STARTING
            slot.source = None
        incarnation = _Incarnation(spec, self._ctx)
        with self._lock:
            installed = (
                not self._stopping
                and slot.state is ShardState.STARTING
                and slot.incarnation is None
            )
            if installed:
                slot.incarnation = incarnation
        if not installed:
            incarnation.close()
            return
        self.metrics.increment("shard.supervisor.spawns")

    def await_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until every non-FAILED shard is READY (True on success)."""
        deadline = time.monotonic() + (timeout if timeout is not None else 3600.0)
        while time.monotonic() < deadline:
            states = self.states()
            if any(
                s in (ShardState.STARTING, ShardState.RESTARTING)
                for s in states.values()
            ):
                time.sleep(0.01)
                continue
            return all(s is ShardState.READY for s in states.values())
        return False

    def stop(self) -> None:
        """Drain and stop every worker, then the monitor."""
        with self._lock:
            self._stopping = True
            monitor = self._monitor
            slots = list(self._slots.values())
        if monitor is not None:
            monitor.join(timeout=5.0)
        for slot in slots:
            with self._lock:
                incarnation = slot.incarnation
                slot.state = ShardState.STOPPED
            if incarnation is None:
                continue
            incarnation.send("stop")
            if incarnation.process.is_alive():
                incarnation.process.join(timeout=5.0)
            if incarnation.process.is_alive():  # pragma: no cover - stuck
                incarnation.process.kill()
                incarnation.process.join(timeout=5.0)
            incarnation.close()

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    return
                slots = list(self._slots.values())
            for slot in slots:
                self._check_slot(slot)
            time.sleep(self.heartbeat_interval)

    def _check_slot(self, slot: _Slot) -> None:
        now = time.monotonic()
        ping, respawn = self._check_slot_locked(slot, now)
        # Both the respawn (pickle + fork) and the heartbeat (pipe write)
        # run after self._lock is released: a restarting or slow shard
        # must never stall submitters queued on the supervisor lock.
        if respawn:
            self._spawn(slot)
        elif ping is not None:
            ping.ping()

    def _check_slot_locked(
        self, slot: _Slot, now: float
    ) -> Tuple[Optional[_Incarnation], bool]:
        """One monitor pass over ``slot`` under ``self._lock``.

        Returns ``(incarnation to ping, respawn due)`` — the blocking
        halves of both actions happen in :meth:`_check_slot` after the
        lock is dropped.
        """
        with self._lock:
            if self._stopping:
                return None, False
            incarnation = slot.incarnation
            state = slot.state

            if state is ShardState.FAILED or state is ShardState.STOPPED:
                return None, False

            if state is ShardState.RESTARTING:
                return None, now >= slot.next_restart_at

            assert incarnation is not None
            if state is ShardState.STARTING:
                info = incarnation.ready_info
                if info is not None:
                    if int(info.get("topology_epoch", -1)) != slot.spec.topology_epoch:
                        # A planned transition, not a fault: the worker
                        # rejoined from stale state (old arena, old
                        # private snapshot) while the fleet moved on.
                        # Restarting it from the current spec forces the
                        # rebuild rung at the spec's epoch without
                        # burning the fault budget.
                        self._record_event_locked(
                            slot.spec.shard_id,
                            "epoch_mismatch",
                            f"worker rejoined at epoch {info.get('topology_epoch')}, "
                            f"expected {slot.spec.topology_epoch}",
                        )
                        self.metrics.increment("reconfig.planned_restarts")
                        slot.cold_next = True
                        self._bury_locked(
                            slot, incarnation, kill=True, planned=True
                        )
                        return None, False
                    slot.state = ShardState.READY
                    slot.source = info.get("source")
                    slot.epoch = int(info.get("topology_epoch", -1))
                    slot.lag_since = None
                    self._record_event_locked(
                        slot.spec.shard_id, "ready", f"source={slot.source}"
                    )
                    return None, False
                if incarnation.start_error is not None:
                    self._record_event_locked(
                        slot.spec.shard_id,
                        "start_failed",
                        incarnation.start_error,
                    )
                    self._bury_locked(slot, incarnation, kill=True)
                    return None, False
                if incarnation.dead or not incarnation.process.is_alive():
                    self._record_event_locked(
                        slot.spec.shard_id, "died_starting", ""
                    )
                    self._bury_locked(slot, incarnation, kill=False)
                    return None, False
                if now - incarnation.last_pong > self.start_timeout:
                    self._record_event_locked(
                        slot.spec.shard_id, "start_timeout", ""
                    )
                    self._bury_locked(slot, incarnation, kill=True)
                return None, False

            # READY: crash detection, then hang detection, then epoch-lag
            # convergence, then heartbeat.
            if incarnation.dead or not incarnation.process.is_alive():
                self._record_event_locked(slot.spec.shard_id, "died", "")
                self._bury_locked(slot, incarnation, kill=False)
                return None, False
            if now - incarnation.last_pong > self.liveness_timeout:
                self._record_event_locked(
                    slot.spec.shard_id,
                    "hung",
                    f"no pong for {now - incarnation.last_pong:.2f}s",
                )
                self._bury_locked(slot, incarnation, kill=True)
                return None, False
            # A worker serving an epoch older than its spec's is lagging a
            # reconfig round.  Normally the coordinator commits it within
            # milliseconds; if the coordinator died between prepare and
            # commit (a torn round), the lag persists and this planned
            # restart re-materialises the worker from the already
            # retargeted spec — it rejoins at the new epoch with no
            # operator involvement.
            if (
                slot.epoch is not None
                and slot.epoch < slot.spec.topology_epoch
            ):
                if slot.lag_since is None:
                    slot.lag_since = now
                elif now - slot.lag_since > self.epoch_lag_grace:
                    self._record_event_locked(
                        slot.spec.shard_id,
                        "epoch_lag_restart",
                        f"serving epoch {slot.epoch}, spec demands "
                        f"{slot.spec.topology_epoch}",
                    )
                    self.metrics.increment("reconfig.planned_restarts")
                    slot.lag_since = None
                    self._bury_locked(slot, incarnation, kill=True)
                    return None, False
            else:
                slot.lag_since = None
            return incarnation, False

    def _bury_locked(
        self,
        slot: _Slot,
        incarnation: _Incarnation,
        kill: bool,
        planned: bool = False,
    ) -> None:
        """Retire a dead/hung incarnation and schedule (or refuse) the
        restart. Caller holds ``self._lock``.

        ``planned=True`` marks a reconfig-driven transition (epoch
        mismatch, epoch lag, a worker that nacked a prepare): it restarts
        promptly at the base backoff and does not burn the fault budget —
        rolling the fleet forward is not a crash.
        """
        if kill and incarnation.process.is_alive():
            incarnation.process.kill()
        incarnation.close()
        slot.incarnation = None
        if planned:
            slot.next_restart_at = time.monotonic() + self.restart_backoff
            slot.state = ShardState.RESTARTING
            self._record_event_locked(
                slot.spec.shard_id,
                "planned_restart_scheduled",
                f"rejoin at epoch {slot.spec.topology_epoch}",
            )
            return
        self.metrics.increment("shard.supervisor.deaths")
        if slot.restarts >= self.restart_budget:
            slot.state = ShardState.FAILED
            self._record_event_locked(
                slot.spec.shard_id,
                "failed",
                f"restart budget of {self.restart_budget} exhausted",
            )
            return
        slot.restarts += 1
        # Decorrelated jitter, not deterministic doubling: simultaneous
        # casualties restarting in lockstep re-stampede the same startup
        # path on every retry.  Each delay is drawn from
        # [base, 3 × previous], so consecutive restarts still back off
        # exponentially in expectation while the fleet spreads out.
        prev = max(slot.prev_backoff, self.restart_backoff)
        backoff = min(
            self.max_backoff,
            slot.backoff_rng.uniform(self.restart_backoff, prev * 3.0),
        )
        slot.prev_backoff = backoff
        slot.next_restart_at = time.monotonic() + backoff
        slot.state = ShardState.RESTARTING
        self.metrics.increment("shard.supervisor.restarts")
        self._record_event_locked(
            slot.spec.shard_id,
            "restart_scheduled",
            f"attempt {slot.restarts}, backoff {backoff:.3f}s",
        )

    def _record_event_locked(self, shard: int, event: str, detail: str) -> None:
        self._events.append(
            {
                "shard": shard,
                "event": event,
                "detail": detail,
                "at": time.monotonic(),
            }
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(
        self,
        shard_id: int,
        request: QueryRequest,
        budget_s: Optional[float] = None,
    ) -> Future:
        """Dispatch one request to one shard; the future resolves with the
        worker's exact answer or fails with the worker's error.

        Raises:
            ShardUnavailableError: when the shard is not READY right now.
        """
        with self._lock:
            slot = self._slots.get(shard_id)
            if slot is None:
                raise ShardUnavailableError(
                    f"no such shard {shard_id}", shard=shard_id
                )
            if slot.state is not ShardState.READY or slot.incarnation is None:
                raise ShardUnavailableError(
                    f"shard {shard_id} is {slot.state.value}",
                    shard=shard_id,
                    state=slot.state.value,
                )
            incarnation = slot.incarnation
        return incarnation.submit(request, budget_s)

    # ------------------------------------------------------------------
    # Reconfiguration control plane (driven by ReconfigCoordinator)
    # ------------------------------------------------------------------
    @property
    def fence_epoch(self) -> int:
        """Minimum topology epoch an exact reply must carry to be merged.
        Rises the instant a round retargets the fleet."""
        with self._lock:
            return self._fence_epoch

    @property
    def committed_epoch(self) -> int:
        """Epoch of the last reconfig round that ran to completion."""
        with self._lock:
            return self._committed_epoch

    def retarget(self, specs: Dict[int, ShardSpec], fence_epoch: int) -> None:
        """Swap every slot's spec to the next epoch and raise the fence.

        From this call on, **any** restart — planned or crash — rejoins
        at the new epoch, and the router discards exact replies below
        ``fence_epoch``.  This is the round's point of no return: even if
        the coordinator dies immediately after, the fleet converges to
        the new epoch via the monitor's epoch-lag restarts.
        """
        with self._lock:
            for shard_id, spec in specs.items():
                slot = self._require_slot_locked(shard_id)
                slot.spec = spec
            self._fence_epoch = max(self._fence_epoch, fence_epoch)

    def mark_committed(self, epoch: int) -> None:
        """Record that the round for ``epoch`` completed fleet-wide."""
        with self._lock:
            self._committed_epoch = max(self._committed_epoch, epoch)

    def prepare_shard(
        self,
        shard_id: int,
        target_epoch: int,
        records: List[Dict[str, Any]],
        timeout: float,
    ) -> Tuple[bool, str]:
        """Two-phase step 1 for one shard: ship the WAL delta, await the
        staging ack.  ``(ok, detail)``; never raises for per-shard
        trouble — an unavailable/dead/timing-out worker is ``(False, …)``
        and the caller decides between retry and planned restart."""
        try:
            incarnation = self._ready_incarnation(shard_id)
            future = incarnation.request_control(
                "prepare", target_epoch,
                ("prepare", target_epoch, records),
            )
            ok, detail = future.result(timeout)
        except ShardUnavailableError as exc:
            return False, str(exc)
        except FutureTimeoutError:
            return False, f"no prepare ack within {timeout:.2f}s"
        return bool(ok), str(detail)

    def commit_shard(
        self, shard_id: int, target_epoch: int, timeout: float
    ) -> Tuple[bool, str]:
        """Two-phase step 2 for one shard: flip its served epoch."""
        try:
            incarnation = self._ready_incarnation(shard_id)
            future = incarnation.request_control(
                "commit", target_epoch, ("commit", target_epoch)
            )
            ok, detail = future.result(timeout)
        except ShardUnavailableError as exc:
            return False, str(exc)
        except FutureTimeoutError:
            return False, f"no commit ack within {timeout:.2f}s"
        if ok:
            with self._lock:
                slot = self._slots.get(shard_id)
                if slot is not None:
                    slot.epoch = target_epoch
                    slot.lag_since = None
        return bool(ok), str(detail)

    def abort_shard(self, shard_id: int, target_epoch: int) -> None:
        """Tell one shard to drop anything staged for ``target_epoch``
        (best-effort; a dead worker has nothing staged anyway)."""
        with self._lock:
            slot = self._slots.get(shard_id)
            incarnation = slot.incarnation if slot is not None else None
        if incarnation is not None:
            incarnation.send("abort", target_epoch)

    def planned_restart(self, shard_id: int) -> None:
        """Restart one worker as a planned epoch transition: it rejoins
        by re-materialising from its (already retargeted) slot spec
        without burning the fault budget."""
        with self._lock:
            slot = self._require_slot_locked(shard_id)
            incarnation = slot.incarnation
            if incarnation is None:
                return  # already between incarnations; respawn is queued
            self._record_event_locked(
                shard_id,
                "planned_restart",
                f"rejoin at epoch {slot.spec.topology_epoch}",
            )
            self.metrics.increment("reconfig.planned_restarts")
            self._bury_locked(slot, incarnation, kill=True, planned=True)

    def _ready_incarnation(self, shard_id: int) -> _Incarnation:
        with self._lock:
            slot = self._require_slot_locked(shard_id)
            if slot.state is not ShardState.READY or slot.incarnation is None:
                raise ShardUnavailableError(
                    f"shard {shard_id} is {slot.state.value}",
                    shard=shard_id,
                    state=slot.state.value,
                )
            return slot.incarnation

    # ------------------------------------------------------------------
    # Chaos hooks
    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: int, cold: bool = False) -> None:
        """SIGKILL a worker (chaos). ``cold=True`` also strips the arena
        descriptor from the next respawn, forcing the snapshot/rebuild
        rungs — the warm restart is restored on later incarnations."""
        with self._lock:
            slot = self._require_slot_locked(shard_id)
            slot.cold_next = slot.cold_next or cold
            incarnation = slot.incarnation
            self._record_event_locked(shard_id, "chaos_kill", f"cold={cold}")
        if incarnation is not None and incarnation.process.is_alive():
            incarnation.process.kill()

    def hang_shard(self, shard_id: int, seconds: float) -> None:
        """Wedge a worker (chaos): it stops answering for ``seconds`` and
        the liveness deadline decides whether it lives."""
        with self._lock:
            slot = self._require_slot_locked(shard_id)
            incarnation = slot.incarnation
            self._record_event_locked(shard_id, "chaos_hang", f"{seconds}s")
        if incarnation is not None:
            incarnation.send("hang", float(seconds))

    def _require_slot_locked(self, shard_id: int) -> _Slot:
        slot = self._slots.get(shard_id)
        if slot is None:
            raise ShardUnavailableError(
                f"no such shard {shard_id}", shard=shard_id
            )
        return slot

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def states(self) -> Dict[int, ShardState]:
        """Current state per shard id."""
        with self._lock:
            return {sid: slot.state for sid, slot in self._slots.items()}

    @property
    def shard_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._slots)

    def spec_of(self, shard_id: int) -> ShardSpec:
        """The spec shard ``shard_id`` was (re)spawned from."""
        with self._lock:
            return self._require_slot_locked(shard_id).spec

    def readiness(self) -> Dict[str, Any]:
        """Health-endpoint payload: per-shard state, provenance, restart
        accounting, epoch skew against the committed epoch, and the
        supervision event log."""
        with self._lock:
            committed = self._committed_epoch
            fence = self._fence_epoch
            shards = {}
            for sid, slot in sorted(self._slots.items()):
                shards[str(sid)] = {
                    "state": slot.state.value,
                    "source": slot.source,
                    "restarts": slot.restarts,
                    "topology_epoch": slot.epoch,
                    "epoch_skew": (
                        committed - slot.epoch
                        if slot.epoch is not None
                        else None
                    ),
                    "pid": (
                        slot.incarnation.process.pid
                        if slot.incarnation is not None
                        else None
                    ),
                }
            events = list(self._events)
        states = {s["state"] for s in shards.values()}
        return {
            "ready": states == {ShardState.READY.value},
            "committed_epoch": committed,
            "fence_epoch": fence,
            "shards": shards,
            "events": events,
        }
