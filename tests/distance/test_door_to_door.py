"""Tests for Algorithm 1 (door-to-door search) and path reconstruction."""

import math

import pytest

from repro.distance import d2d_distance, d2d_path, door_to_door_search
from repro.exceptions import UnknownEntityError
from repro.geometry import Point
from repro.model.figure1 import (
    D1,
    D11,
    D12,
    D13,
    D14,
    D15,
    D21,
    D24,
    HALLWAY,
    ROOM_12,
    ROOM_13,
    build_figure1,
)


@pytest.fixture(scope="module")
def space():
    return build_figure1()


@pytest.fixture(scope="module")
def gdist(space):
    return space.distance_graph


class TestD2dDistance:
    def test_same_door_is_zero(self, gdist):
        assert d2d_distance(gdist, D13, D13) == 0.0

    def test_one_hop_through_room_12(self, gdist):
        # d15 (6,8) -> d12 (5,6) within room 12.
        expected = Point(6, 8).distance_to(Point(5, 6))
        assert d2d_distance(gdist, D15, D12) == pytest.approx(expected)

    def test_reverse_direction_takes_long_way(self, gdist):
        # d12 -> d15 cannot cross room 12 (both doors one-way); the path runs
        # d12 -(hallway)-> d13 -(room 13)-> d15.
        expected = Point(5, 6).distance_to(Point(8, 6)) + Point(8, 6).distance_to(
            Point(6, 8)
        )
        assert d2d_distance(gdist, D12, D15) == pytest.approx(expected)

    def test_asymmetry_from_directed_doors(self, gdist):
        assert d2d_distance(gdist, D15, D12) != pytest.approx(
            d2d_distance(gdist, D12, D15)
        )

    def test_symmetric_for_bidirectional_route(self, gdist):
        assert d2d_distance(gdist, D1, D11) == pytest.approx(
            d2d_distance(gdist, D11, D1)
        )

    def test_multi_partition_route(self, gdist):
        # d11 -> d21 goes hallway -> room 20 -> door d21.
        expected = (
            Point(2, 6).distance_to(Point(12, 5))
            + Point(12, 5).distance_to(Point(14, 4))
        )
        assert d2d_distance(gdist, D11, D21) == pytest.approx(expected)

    def test_obstructed_leg_is_used(self, space, gdist):
        # d21 -> d24 via room 21 is a straight 2-2.236... walk; via room 22
        # the obstacle would make it longer.  The search must pick room 21.
        expected = Point(14, 4).distance_to(Point(16, 2))
        assert d2d_distance(gdist, D21, D24) == pytest.approx(expected)

    def test_unknown_door_raises(self, gdist):
        with pytest.raises(UnknownEntityError):
            d2d_distance(gdist, 999, D12)
        with pytest.raises(UnknownEntityError):
            d2d_distance(gdist, D12, 999)

    def test_unreachable_is_inf(self):
        from repro.geometry import Segment, rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_partition(3, rectangle(8, 0, 12, 4))
        builder.add_door(1, Segment(Point(4, 1), Point(4, 3)), connects=(1, 2))
        # Door 2 only allows movement 2 -> 3, so door 1 is unreachable from 2's
        # far side once we are in partition 3.
        builder.add_door(
            2, Segment(Point(8, 1), Point(8, 3)), connects=(2, 3), one_way=True
        )
        gdist = builder.build().distance_graph
        assert math.isinf(d2d_distance(gdist, 2, 1))
        assert d2d_distance(gdist, 1, 2) == pytest.approx(4.0)


class TestSearch:
    def test_full_search_settles_all_reachable_doors(self, gdist, space):
        result = door_to_door_search(gdist, D1)
        assert result.settled == set(space.door_ids)

    def test_early_termination_at_target(self, gdist):
        result = door_to_door_search(gdist, D1, target_door=D11)
        # d11 is among the closest doors to d1; far doors stay unsettled.
        assert D11 in result.settled
        assert D24 not in result.settled

    def test_multi_target_termination(self, gdist):
        result = door_to_door_search(gdist, D1, targets={D11, D13})
        assert {D11, D13} <= result.settled

    def test_early_terminated_distances_match_full_search(self, gdist, space):
        full = door_to_door_search(gdist, D14)
        for target in space.door_ids:
            early = door_to_door_search(gdist, D14, target_door=target)
            assert early.distance_to(target) == pytest.approx(
                full.distance_to(target)
            )

    def test_distance_to_unsettled_door_is_inf(self, gdist):
        result = door_to_door_search(gdist, D1, target_door=D11)
        assert math.isinf(result.distance_to(D24))

    def test_prev_of_source_is_none(self, gdist):
        result = door_to_door_search(gdist, D1)
        assert result.prev[D1] is None


class TestPathReconstruction:
    def test_single_hop_path(self, gdist):
        path = d2d_path(gdist, D15, D12)
        assert path.doors == (D15, D12)
        assert path.partitions == (ROOM_12,)
        assert path.hops == 1
        assert path.describe() == "d15 -(v12)-> d12"

    def test_two_hop_path(self, gdist):
        path = d2d_path(gdist, D12, D15)
        assert path.doors == (D12, D13, D15)
        assert path.partitions == (HALLWAY, ROOM_13)

    def test_same_door_path(self, gdist):
        path = d2d_path(gdist, D13, D13)
        assert path.distance == 0.0
        assert path.doors == (D13,)
        assert path.partitions == ()

    def test_unreachable_path(self):
        from repro.geometry import Segment, rectangle
        from repro.model import IndoorSpaceBuilder

        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_partition(3, rectangle(8, 0, 12, 4))
        builder.add_door(1, Segment(Point(4, 1), Point(4, 3)), connects=(1, 2))
        builder.add_door(
            2, Segment(Point(8, 1), Point(8, 3)), connects=(2, 3), one_way=True
        )
        path = d2d_path(builder.build().distance_graph, 2, 1)
        assert not path.is_reachable
        assert path.describe() == "<unreachable>"

    def test_path_distance_matches_d2d_distance(self, gdist, space):
        for source in space.door_ids:
            for target in space.door_ids:
                path = d2d_path(gdist, source, target)
                assert path.distance == pytest.approx(
                    d2d_distance(gdist, source, target)
                )

    def test_path_segments_are_consistent(self, gdist, space):
        # Each consecutive (door, partition, door) triple must have a finite
        # f_d2d and the sum of legs must equal the total distance.
        path = d2d_path(gdist, D1, D24)
        total = 0.0
        for i, partition in enumerate(path.partitions):
            leg = gdist.fd2d(partition, path.doors[i], path.doors[i + 1])
            assert not math.isinf(leg)
            total += leg
        assert total == pytest.approx(path.distance)
