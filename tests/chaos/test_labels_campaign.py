"""Chaos campaigns served from the labels backend.

The differential oracle's pristine engine always stays on the dense
matrix, so a passing ``backend="labels"`` campaign is the end-to-end
proof that the 2-hop label index answers bit-identically to M_idx —
including while faults are live and after every recovery rung.
"""

import pytest

from repro.chaos import CampaignConfig, CampaignRunner


def _run(**overrides):
    config = CampaignConfig(**overrides)
    return CampaignRunner(config).run()


@pytest.fixture(scope="module")
def labels_report():
    return _run(seed=7, duration_ops=120, backend="labels")


class TestLabelsCampaign:
    def test_standard_campaign_passes(self, labels_report):
        counts = labels_report.counts()
        assert labels_report.verdict == "PASS"
        assert counts["silent_wrong_answer"] == 0
        assert counts["unrecovered"] == 0

    def test_corruption_was_actually_injected(self, labels_report):
        """The pass is not vacuous: the plan's matrix corruption mapped
        onto the label arrays and the detection layer caught it."""
        assert labels_report.counts()["degraded_correctly"] > 0
        assert "breaker_degraded" in {
            i.kind for i in labels_report.incidents
        }

    def test_backend_survives_the_config_roundtrip(self):
        config = CampaignConfig(seed=7, duration_ops=120, backend="labels")
        clone = CampaignConfig.from_dict(config.to_dict())
        assert clone.backend == "labels"
        assert clone.to_dict() == config.to_dict()

    def test_replay_reproduces_the_digest(self, labels_report):
        again = _run(seed=7, duration_ops=120, backend="labels")
        assert again.digest == labels_report.digest

    def test_dense_and_labels_disagree_only_in_backend(self, labels_report):
        """Same seed, other backend: both campaigns must pass — the
        serving tier's correctness story is backend-independent."""
        dense = _run(seed=7, duration_ops=120, backend="matrix")
        assert dense.verdict == "PASS"
        assert dense.config["backend"] == "matrix"
        assert labels_report.config["backend"] == "labels"
