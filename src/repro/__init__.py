"""repro — a distance-aware data management infrastructure for indoor spaces.

A faithful, from-scratch Python implementation of

    Hua Lu, Xin Cao, Christian S. Jensen.
    "A Foundation for Efficient Indoor Distance-Aware Query Processing."
    ICDE 2012.

The public API mirrors the paper's architecture:

* **Model** (§III): :class:`IndoorSpaceBuilder` / :class:`IndoorSpace` with
  the topology mappings, the accessibility graph G_accs, and the
  distance-aware graph G_dist (f_dv, f_d2d).
* **Distances** (§III-D): :func:`d2d_distance` (Algorithm 1) and the three
  position-to-position algorithms (:func:`pt2pt_distance_basic` /
  ``_refined`` / ``_memoized``; Algorithms 2-4), plus path reconstruction.
* **Indexes** (§IV): :class:`IndexFramework` bundling M_d2d + M_idx, the
  Door-to-Partition Table, an R-tree partition locator, and grid-indexed
  object buckets.
* **Queries** (§V): :class:`QueryEngine` with range and kNN queries.
* **Experiments** (§VI): :mod:`repro.synthetic` generates the paper's
  multi-floor office buildings, objects, and workloads; ``benchmarks/``
  regenerates every figure.
* **Serving** (:mod:`repro.serve`, beyond the paper): :class:`QueryService`
  answers concurrent workloads over one engine — shared-work batching,
  an epoch-keyed LRU distance cache, degradation-ladder load shedding,
  and a built-in metrics registry.
* **Persistence** (:mod:`repro.persist`, beyond the paper): checksummed
  snapshot generations (:func:`save_snapshot` / :func:`load_snapshot`,
  :class:`SnapshotStore`), a topology write-ahead log
  (:class:`TopologyWAL` / :class:`WalRecorder`), and the
  :class:`RecoveryManager` quarantine ladder behind
  :class:`SupervisedQueryService`'s warm start and graceful shutdown.
* **Chaos** (:mod:`repro.chaos`, beyond the paper): deterministic
  fault-injection campaigns (:class:`CampaignRunner`) driving the full
  stack through scripted fault schedules (:class:`FaultPlan`) while
  differential, metamorphic, and epoch oracles verify every served
  answer; a serve-layer :class:`CircuitBreaker` routes exact-path
  failures onto the degradation ladder.
* **Labels** (:mod:`repro.labels`, beyond the paper): a hierarchical
  2-hop distance-labeling backend (:class:`LabeledDistanceIndex`) behind
  the :class:`DistanceBackend` protocol —
  ``IndexFramework.build(space, backend="labels")`` answers
  bit-identically to M_d2d / M_idx while replacing the O(N²) matrices
  with campus-scale label sets; :func:`repro.synthetic.generate_campus`
  builds the multi-building spaces that need it.
* **Sharding** (:mod:`repro.shard`, beyond the paper): a shared-nothing
  multi-process serving tier — :class:`ShardSupervisor` keeps worker
  processes alive over a zero-copy :class:`SharedIndexArena`,
  :class:`ScatterGatherRouter` fans queries out with distance-aware
  shard pruning and merges bit-identical answers, and
  :class:`ShardedQueryService` wraps the fleet in the same
  request/response surface as :class:`QueryService`.
  :class:`ReconfigCoordinator` rolls topology mutations through the
  live fleet as epoch-fenced prepare/commit rounds — zero downtime, no
  answer ever merged across two epochs.
* **Overload control** (:mod:`repro.overload`, beyond the paper): an
  AIMD :class:`AdaptiveConcurrencyLimiter` tracking measured p99
  against a latency SLO, a token-bucket :class:`RetryBudget` that keeps
  retry storms from amplifying outages, and a :class:`HedgePolicy` for
  deadline-aware hedged scatter-gather probes — threaded through both
  serving tiers and exercised by the flash-crowd chaos campaign and
  ``repro overload-bench``.

Quickstart::

    from repro import IndoorObject, Point, QueryEngine
    from repro.model.figure1 import build_figure1, P, Q

    engine = QueryEngine.for_space(build_figure1())
    engine.add_object(IndoorObject(1, Point(1.0, 5.0), payload="exit sign"))
    print(engine.distance(P, Q))
    print(engine.shortest_path(P, Q).describe())
    print(engine.knn(P, k=1))
"""

from repro.chaos import (
    CampaignConfig,
    CampaignReport,
    CampaignRunner,
    FaultAction,
    FaultPlan,
    Incident,
    IncidentClass,
    OracleViolation,
    standard_plan,
)
from repro.exceptions import (
    CorruptIndexError,
    DeadlineExceededError,
    GeometryError,
    IndexError_,
    InjectedCrashError,
    ModelError,
    QueryError,
    RecoveryError,
    ReproError,
    SerializationError,
    ServiceUnavailableError,
    SnapshotCorruptError,
    StaleIndexError,
    TopologyError,
    UnknownEntityError,
    UnreachableError,
    WalCorruptError,
)
from repro.geometry import BoundingBox, Point, Polygon, Segment, rectangle
from repro.model import (
    AccessibilityGraph,
    DistanceAwareGraph,
    Door,
    IndoorSpace,
    IndoorSpaceBuilder,
    Partition,
    PartitionKind,
    Topology,
)
from repro.distance import (
    DoorPath,
    IndoorPath,
    build_distance_matrix,
    d2d_distance,
    d2d_path,
    door_count_distance,
    door_count_pt2pt,
    pt2pt_distance,
    pt2pt_distance_basic,
    pt2pt_distance_memoized,
    pt2pt_distance_refined,
    pt2pt_path,
)
from repro.index import (
    DistanceBackend,
    DistanceIndexMatrix,
    DoorPartitionTable,
    IndexFramework,
    IndoorObject,
    ObjectStore,
    PartitionGrid,
    PartitionRTree,
)
from repro.labels import LabeledDistanceIndex
from repro.persist import (
    RecoveryManager,
    RecoveryReport,
    SnapshotStore,
    TopologyWAL,
    WalRecorder,
    load_snapshot,
    save_snapshot,
)
from repro.queries import (
    QueryEngine,
    brute_force_knn,
    brute_force_range,
    knn_query,
    nn_query,
    range_query,
)
from repro.runtime import (
    Deadline,
    QualityLevel,
    ResilientQueryEngine,
    ResilientResult,
    RetryPolicy,
    check_index_integrity,
)
from repro.overload import (
    AdaptiveConcurrencyLimiter,
    HedgePolicy,
    RetryBudget,
)
from repro.serve import (
    BreakerState,
    CircuitBreaker,
    EpochLRUCache,
    MetricsRegistry,
    QueryKind,
    QueryRequest,
    QueryResponse,
    QueryService,
    ServiceState,
    ShedPolicy,
    SupervisedQueryService,
)
from repro.shard import (
    FloorPlacement,
    ReconfigCoordinator,
    ReconfigRecorder,
    ScatterGatherRouter,
    ShardSpec,
    ShardState,
    ShardSupervisor,
    ShardedQueryService,
    SharedIndexArena,
)

__version__ = "1.10.0"

__all__ = [
    "AccessibilityGraph",
    "AdaptiveConcurrencyLimiter",
    "BoundingBox",
    "BreakerState",
    "CampaignConfig",
    "CampaignReport",
    "CampaignRunner",
    "CircuitBreaker",
    "CorruptIndexError",
    "Deadline",
    "DeadlineExceededError",
    "DistanceAwareGraph",
    "DistanceBackend",
    "DistanceIndexMatrix",
    "Door",
    "DoorPartitionTable",
    "DoorPath",
    "EpochLRUCache",
    "FaultAction",
    "FaultPlan",
    "FloorPlacement",
    "GeometryError",
    "HedgePolicy",
    "Incident",
    "IncidentClass",
    "IndexError_",
    "IndexFramework",
    "IndoorObject",
    "IndoorPath",
    "IndoorSpace",
    "IndoorSpaceBuilder",
    "InjectedCrashError",
    "LabeledDistanceIndex",
    "MetricsRegistry",
    "ModelError",
    "ObjectStore",
    "OracleViolation",
    "Partition",
    "PartitionGrid",
    "PartitionKind",
    "PartitionRTree",
    "Point",
    "Polygon",
    "QualityLevel",
    "QueryEngine",
    "QueryError",
    "QueryKind",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ReconfigCoordinator",
    "ReconfigRecorder",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "ReproError",
    "ResilientQueryEngine",
    "ResilientResult",
    "RetryBudget",
    "RetryPolicy",
    "ScatterGatherRouter",
    "Segment",
    "SerializationError",
    "ServiceState",
    "ServiceUnavailableError",
    "ShardSpec",
    "ShardState",
    "ShardSupervisor",
    "ShardedQueryService",
    "SharedIndexArena",
    "ShedPolicy",
    "SnapshotCorruptError",
    "SnapshotStore",
    "StaleIndexError",
    "SupervisedQueryService",
    "Topology",
    "TopologyError",
    "TopologyWAL",
    "UnknownEntityError",
    "UnreachableError",
    "WalCorruptError",
    "WalRecorder",
    "brute_force_knn",
    "brute_force_range",
    "build_distance_matrix",
    "check_index_integrity",
    "d2d_distance",
    "d2d_path",
    "door_count_distance",
    "door_count_pt2pt",
    "knn_query",
    "load_snapshot",
    "nn_query",
    "pt2pt_distance",
    "pt2pt_distance_basic",
    "pt2pt_distance_memoized",
    "pt2pt_distance_refined",
    "pt2pt_path",
    "range_query",
    "save_snapshot",
    "standard_plan",
]
