"""The paper's synthetic office building generator (§VI-A).

"For each floor of a building, we generate 30 rooms and 2 staircases, and
all of them are connected by doors to a hallway in a star-like manner. ...
we treat each staircase as a special room with two doors, each of which
connects to its corresponding floor.  Inside such a virtual room, the
door-to-door distance is the actual walking distance when using the
corresponding staircase.  This way, the entire multi-floor building is
'transformed' into a flat one."

Layout produced here (per floor, all units metres):

* a horizontal hallway spanning the floor,
* ``rooms_per_floor`` rooms split between the north and south sides of the
  hallway, each with a single bidirectional door onto the hallway (the
  star-like connection),
* staircases flanking the hallway's west and east ends; each staircase
  between floors f and f+1 is one partition with a lower door on floor f and
  an upper door on floor f+1, and an intra-partition cross-floor distance of
  ``stair_length`` — the §VI-A flattening.

Door-count accounting: ``rooms_per_floor`` room doors per floor plus
2 doors per staircase; with the paper's parameters and 40 floors this gives
1 200 + 156 = 1 356 doors, matching the paper's "about 1 300 doors" scale
(its own 32x40 = 1 280 figure counts staircases as one virtual door each).

Everything is deterministic: same configuration, same building.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ModelError
from repro.geometry import Point, Segment, rectangle
from repro.model.builder import IndoorSpace, IndoorSpaceBuilder
from repro.model.entities import PartitionKind


@dataclass(frozen=True)
class BuildingConfig:
    """Parameters of the synthetic building (paper defaults)."""

    floors: int = 10
    rooms_per_floor: int = 30
    staircases_per_gap: int = 2
    room_width: float = 5.0
    room_depth: float = 4.0
    hallway_width: float = 4.0
    staircase_size: float = 4.0
    stair_length: float = 6.0

    def __post_init__(self) -> None:
        if self.floors < 1:
            raise ModelError(f"a building needs >= 1 floor, got {self.floors}")
        if self.rooms_per_floor < 2 or self.rooms_per_floor % 2 != 0:
            raise ModelError(
                "rooms_per_floor must be a positive even number, got "
                f"{self.rooms_per_floor}"
            )
        if self.staircases_per_gap not in (1, 2):
            raise ModelError(
                f"staircases_per_gap must be 1 or 2, got {self.staircases_per_gap}"
            )
        for name in ("room_width", "room_depth", "hallway_width",
                     "staircase_size", "stair_length"):
            if getattr(self, name) <= 0:
                raise ModelError(f"{name} must be positive")

    @property
    def rooms_per_side(self) -> int:
        return self.rooms_per_floor // 2

    @property
    def hallway_length(self) -> float:
        return self.rooms_per_side * self.room_width

    @property
    def doors_total(self) -> int:
        """Total door count of the generated building."""
        room_doors = self.rooms_per_floor * self.floors
        stair_doors = 2 * self.staircases_per_gap * max(0, self.floors - 1)
        return room_doors + stair_doors


@dataclass
class SyntheticBuilding:
    """A generated building plus the id bookkeeping the benchmarks use."""

    space: IndoorSpace
    config: BuildingConfig
    hallway_ids: Dict[int, int] = field(default_factory=dict)
    room_ids: Dict[int, List[int]] = field(default_factory=dict)
    staircase_ids: List[int] = field(default_factory=list)

    @property
    def floors(self) -> int:
        return self.config.floors

    def rooms_on_floor(self, floor: int) -> List[int]:
        """Room partition ids of one floor."""
        return list(self.room_ids[floor])

    def hallway_on_floor(self, floor: int) -> int:
        """Hallway partition id of one floor."""
        return self.hallway_ids[floor]

    @property
    def indoor_partition_ids(self) -> List[int]:
        """All partition ids (no outdoor partition is generated)."""
        return list(self.space.partition_ids)


def _emit_building(
    builder: IndoorSpaceBuilder,
    config: BuildingConfig,
    result: SyntheticBuilding,
    first_partition: int = 1,
    first_door: int = 1,
    dx: float = 0.0,
    name_prefix: str = "",
) -> tuple:
    """Emit one §VI-A building into a shared ``builder``.

    ``dx`` shifts the whole building along x and ``first_partition`` /
    ``first_door`` offset the id sequences, so several buildings can share
    one :class:`IndoorSpaceBuilder` (the campus generator's mechanism).
    Returns ``(next_partition, next_door)`` for the caller to continue
    numbering from; bookkeeping lands in ``result``.
    """
    next_partition = first_partition
    next_door = first_door
    south_y0 = 0.0
    south_y1 = config.room_depth
    hall_y1 = south_y1 + config.hallway_width
    north_y1 = hall_y1 + config.room_depth
    length = config.hallway_length

    for floor in range(config.floors):
        hallway_id = next_partition
        next_partition += 1
        builder.add_partition(
            hallway_id,
            rectangle(dx, south_y1, dx + length, hall_y1, floor=floor),
            PartitionKind.HALLWAY,
            name=f"{name_prefix}hallway F{floor}",
        )
        result.hallway_ids[floor] = hallway_id
        result.room_ids[floor] = []

        for i in range(config.rooms_per_side):
            x0 = dx + i * config.room_width
            x1 = x0 + config.room_width
            mid = (x0 + x1) / 2.0
            # South room: door on the wall it shares with the hallway.
            south_id = next_partition
            next_partition += 1
            builder.add_partition(
                south_id,
                rectangle(x0, south_y0, x1, south_y1, floor=floor),
                name=f"{name_prefix}room F{floor}S{i}",
            )
            builder.add_door(
                next_door,
                Segment(
                    Point(mid - 0.5, south_y1, floor),
                    Point(mid + 0.5, south_y1, floor),
                ),
                connects=(south_id, hallway_id),
            )
            next_door += 1
            # North room, mirrored.
            north_id = next_partition
            next_partition += 1
            builder.add_partition(
                north_id,
                rectangle(x0, hall_y1, x1, north_y1, floor=floor),
                name=f"{name_prefix}room F{floor}N{i}",
            )
            builder.add_door(
                next_door,
                Segment(
                    Point(mid - 0.5, hall_y1, floor),
                    Point(mid + 0.5, hall_y1, floor),
                ),
                connects=(north_id, hallway_id),
            )
            next_door += 1
            result.room_ids[floor].extend((south_id, north_id))

    # Staircases between consecutive floors, flanking the hallway ends.
    hall_mid = (south_y1 + hall_y1) / 2.0
    for floor in range(config.floors - 1):
        ends = [
            # West: x0, x1, door at the hallway's west wall.
            (dx - config.staircase_size, dx, dx),
            # East, mirrored.
            (dx + length, dx + length + config.staircase_size, dx + length),
        ]
        for end_index in range(config.staircases_per_gap):
            x0, x1, door_x = ends[end_index]
            staircase_id = next_partition
            next_partition += 1
            builder.add_partition(
                staircase_id,
                rectangle(x0, south_y1, x1, hall_y1, floor=floor),
                PartitionKind.STAIRCASE,
                name=f"{name_prefix}stairs F{floor}-{floor + 1} {'WE'[end_index]}",
                stair_length=config.stair_length,
            )
            result.staircase_ids.append(staircase_id)
            # Lower door onto this floor's hallway.
            builder.add_door(
                next_door,
                Segment(
                    Point(door_x, hall_mid - 0.5, floor),
                    Point(door_x, hall_mid + 0.5, floor),
                ),
                connects=(staircase_id, result.hallway_ids[floor]),
            )
            next_door += 1
            # Upper door onto the hallway one floor up.
            builder.add_door(
                next_door,
                Segment(
                    Point(door_x, hall_mid - 0.5, floor + 1),
                    Point(door_x, hall_mid + 0.5, floor + 1),
                ),
                connects=(staircase_id, result.hallway_ids[floor + 1]),
            )
            next_door += 1
    return next_partition, next_door


def generate_building(config: Optional[BuildingConfig] = None) -> SyntheticBuilding:
    """Generate the §VI-A synthetic building for ``config``."""
    if config is None:
        config = BuildingConfig()
    builder = IndoorSpaceBuilder()
    result = SyntheticBuilding(space=None, config=config)  # space set below
    _emit_building(builder, config, result)
    result.space = builder.build()
    return result
