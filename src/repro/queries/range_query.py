"""Algorithm 5: the indoor range query Q_r(q, r) (paper §V-A1).

Given a query position ``q`` and a radius ``r``, return every object whose
minimum indoor walking distance from ``q`` is at most ``r``.

The algorithm first searches ``q``'s host partition, then, for each door
``d_i`` through which the host partition can be left, scans all other doors
``d_j`` in non-descending M_d2d[d_i, ·] order (via M_idx), stopping as soon
as a door exceeds the remaining budget.  For each reachable door it consults
the DPT: a partition whose f_dv fits entirely inside the remaining budget
contributes its whole bucket without opening it; otherwise a grid-pruned
``rangeSearch`` from the door runs inside the bucket.

``use_index=False`` reproduces the paper's §VI-B baseline: the same
algorithm forced to scan the entire M_d2d row (no sorted order, no cutoff).

Note the paper's §V-A1 remark: the host partition may be *re-entered*
through a door (the Figure-5 out-and-back phenomenon), so its bucket can be
searched more than once — the union semantics below handles that naturally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set

from repro.exceptions import QueryError
from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.queries.checks import require_finite, require_finite_position

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.deadline import Deadline


def range_query(
    framework: IndexFramework,
    position: Point,
    radius: float,
    use_index: bool = True,
    deadline: Optional["Deadline"] = None,
) -> List[int]:
    """All object ids within walking distance ``radius`` of ``position``.

    Args:
        framework: the §IV index structures.
        position: the query position ``q`` (must lie in some partition).
        radius: the range ``r`` in metres; must be finite and non-negative.
        use_index: scan doors through M_idx (sorted, early-terminating) or
            through the raw M_d2d row (the paper's no-index baseline).
        deadline: optional cooperative time budget, checked once per door
            scanned; raises
            :class:`~repro.exceptions.DeadlineExceededError` on expiry.

    Returns:
        Sorted object ids (each object reported once).

    Raises:
        QueryError: for a negative / NaN / infinite radius or a non-finite
            query position.
        StaleIndexError: when the space topology mutated after the
            framework was built.
    """
    require_finite_position(position)
    require_finite(radius, "range radius")
    if radius < 0:
        raise QueryError(f"range radius must be non-negative, got {radius}")
    framework.check_fresh()
    if deadline is not None:
        deadline.check("range query")
    space = framework.space
    host = space.require_host_partition(position)
    store = framework.objects

    results: Set[int] = set()
    bucket = store.bucket(host.partition_id)
    if bucket is not None:
        results.update(oid for oid, _ in bucket.range_search(position, radius))

    for di in sorted(space.topology.leaveable_doors(host.partition_id)):
        if deadline is not None:
            deadline.check("range query")
        budget = radius - space.dist_v(position, di, host)
        if budget < 0:
            continue
        scan = (
            framework.distance_index.doors_by_distance(di, max_distance=budget)
            if use_index
            else framework.distance_index.doors_unsorted(di)
        )
        for dj, door_distance in scan:
            if deadline is not None:
                deadline.check("range query")
            if door_distance > budget:
                continue  # only reachable on the unsorted scan
            remaining = budget - door_distance
            door_point = space.door(dj).midpoint
            for partition_id, longest_reach in framework.dpt.record(dj).enterable():
                target_bucket = store.bucket(partition_id)
                if target_bucket is None:
                    continue
                if longest_reach <= remaining:
                    # The whole partition fits inside the range: take the
                    # bucket without opening it (Algorithm 5 lines 12-13).
                    results.update(target_bucket.object_ids())
                else:
                    results.update(
                        oid
                        for oid, _ in target_bucket.range_search(
                            door_point, remaining
                        )
                    )
    return sorted(results)
