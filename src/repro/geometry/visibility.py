"""Visibility graphs for obstructed intra-partition distances.

The paper notes (§III-C1) that the intra-partition distance ``‖d_i, d_j‖_v``
is not necessarily Euclidean: exhibition stands or other obstacles may block
the line of sight (the d22–d24 example of Figure 1, and the room layout of
Figure 5).  Following the classical approach the paper cites [21], a partition
with obstacles measures distances over a visibility graph whose nodes are the
obstacle vertices (plus the boundary vertices, so non-convex partitions are
handled too) and whose edges connect mutually visible nodes.

The static part of the graph — visibility among obstacle/boundary vertices —
is computed once per partition and cached; each distance query only adds the
two query points.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import GeometryError
from repro.geometry.polygon import Polygon
from repro.geometry.primitives import Point, Segment


class VisibilityGraph:
    """Shortest obstructed paths inside one polygonal partition.

    Args:
        boundary: the partition outline; paths never leave it.
        obstacles: polygons fully inside the boundary that paths must avoid.
            Obstacles are *open* sets, as in the obstructed-distance
            literature the paper cites: their interiors block movement, but
            walking along their edges (even an edge flush with a wall) is
            allowed.
    """

    def __init__(self, boundary: Polygon, obstacles: Sequence[Polygon] = ()) -> None:
        self.boundary = boundary
        self.obstacles: Tuple[Polygon, ...] = tuple(obstacles)
        for obstacle in self.obstacles:
            if obstacle.floor != boundary.floor:
                raise GeometryError("obstacle floor differs from boundary floor")
        self._nodes: List[Point] = self._collect_static_nodes()
        self._static_adjacency: List[List[Tuple[int, float]]] = (
            self._build_static_adjacency()
        )

    @property
    def has_obstacles(self) -> bool:
        """True when at least one obstacle constrains movement."""
        return bool(self.obstacles)

    @property
    def nodes(self) -> Tuple[Point, ...]:
        """The static visibility nodes (boundary + obstacle vertices)."""
        return tuple(self._nodes)

    def _collect_static_nodes(self) -> List[Point]:
        nodes: List[Point] = []
        seen = set()
        for polygon in (self.boundary, *self.obstacles):
            for vertex in polygon.vertices:
                key = (vertex.x, vertex.y)
                if key not in seen:
                    seen.add(key)
                    nodes.append(vertex)
        return nodes

    def _build_static_adjacency(self) -> List[List[Tuple[int, float]]]:
        n = len(self._nodes)
        adjacency: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                if self.is_visible(self._nodes[i], self._nodes[j]):
                    weight = self._nodes[i].distance_to(self._nodes[j])
                    adjacency[i].append((j, weight))
                    adjacency[j].append((i, weight))
        return adjacency

    def is_visible(self, p: Point, q: Point) -> bool:
        """True when the straight segment ``p → q`` is walkable.

        Walkable means: inside the boundary polygon and not passing through
        the interior of any obstacle.  Touching obstacle corners or sliding
        along obstacle edges is allowed.
        """
        if p.approx_equals(q):
            return True
        segment = Segment(p, q)
        if not self.boundary.contains_segment(segment):
            return False
        return not any(
            self._blocked_by(segment, obstacle) for obstacle in self.obstacles
        )

    @staticmethod
    def _blocked_by(segment: Segment, obstacle: Polygon) -> bool:
        if any(segment.properly_intersects(edge) for edge in obstacle.edges()):
            return True
        # A segment can pierce an obstacle corner-to-corner without properly
        # crossing any edge; sample interior points to catch that.
        for i in range(1, 8):
            t = i / 8.0
            p = Point(
                segment.start.x + t * (segment.end.x - segment.start.x),
                segment.start.y + t * (segment.end.y - segment.start.y),
                segment.floor,
            )
            if obstacle.strictly_contains_point(p):
                return True
        return False

    def shortest_path(
        self, source: Point, target: Point
    ) -> Tuple[float, List[Point]]:
        """Shortest walkable path from ``source`` to ``target``.

        Returns:
            ``(distance, waypoints)`` where ``waypoints`` starts at ``source``
            and ends at ``target``.  ``(inf, [])`` when no path exists.
        """
        if source.floor != self.boundary.floor or target.floor != self.boundary.floor:
            raise GeometryError("query points must be on the partition's floor")
        if self.is_visible(source, target):
            return source.distance_to(target), [source, target]
        if not self.has_obstacles and len(self.boundary.vertices) == 4:
            # A convex quadrilateral with no obstacles: invisibility can only
            # be numeric noise at the boundary; fall through to the graph.
            pass

        # Build the query graph: static nodes + source (index n) + target (n+1).
        n = len(self._nodes)
        source_index, target_index = n, n + 1
        adjacency: Dict[int, List[Tuple[int, float]]] = {
            i: list(self._static_adjacency[i]) for i in range(n)
        }
        adjacency[source_index] = []
        adjacency[target_index] = []
        for i, node in enumerate(self._nodes):
            if self.is_visible(source, node):
                weight = source.distance_to(node)
                adjacency[source_index].append((i, weight))
                adjacency[i].append((source_index, weight))
            if self.is_visible(target, node):
                weight = target.distance_to(node)
                adjacency[target_index].append((i, weight))
                adjacency[i].append((target_index, weight))

        dist = [math.inf] * (n + 2)
        prev: List[Optional[int]] = [None] * (n + 2)
        dist[source_index] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source_index)]
        visited = [False] * (n + 2)
        while heap:
            d, u = heapq.heappop(heap)
            if visited[u]:
                continue
            visited[u] = True
            if u == target_index:
                break
            for v, w in adjacency[u]:
                if not visited[v] and d + w < dist[v]:
                    dist[v] = d + w
                    prev[v] = u
                    heapq.heappush(heap, (dist[v], v))

        if math.isinf(dist[target_index]):
            return math.inf, []
        points = {i: node for i, node in enumerate(self._nodes)}
        points[source_index] = source
        points[target_index] = target
        path: List[Point] = []
        cursor: Optional[int] = target_index
        while cursor is not None:
            path.append(points[cursor])
            cursor = prev[cursor]
        path.reverse()
        return dist[target_index], path

    def distance(self, source: Point, target: Point) -> float:
        """Shortest walkable distance (``inf`` when unreachable)."""
        if self.is_visible(source, target):
            return source.distance_to(target)
        return self.shortest_path(source, target)[0]


def obstructed_distance(
    boundary: Polygon,
    obstacles: Sequence[Polygon],
    source: Point,
    target: Point,
) -> float:
    """One-shot obstructed distance without caching the visibility graph.

    Prefer constructing a :class:`VisibilityGraph` per partition when many
    queries hit the same partition (the model layer does exactly that).
    """
    return VisibilityGraph(boundary, obstacles).distance(source, target)
