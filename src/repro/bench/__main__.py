"""CLI for the benchmark harness: ``python -m repro.bench <figure>``.

Figures: fig6 fig7 fig8a fig8b fig8c fig9a fig9b fig9c, or ``all``.
``--out PATH`` additionally writes a Markdown report (used to regenerate
EXPERIMENTS.md's measured sections); ``--json PATH`` writes the raw row
dicts as machine-readable JSON (``{"scale": ..., "figures": {name: rows}}``).

``--gate`` skips the figures and instead replays the committed
benchmarks (``BENCH_serve.json`` / ``BENCH_shard.json`` /
``BENCH_labels.json``) against a fresh run, exiting non-zero on a
>tolerance regression of the speedup/compactness ratios or on any
nonzero mismatch/degraded count (see :mod:`repro.bench.gate`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Tuple

from repro.bench.harness import (
    current_scale,
    measure_fig6,
    measure_fig7,
    measure_fig8a,
    measure_fig8b,
    measure_fig8c,
    measure_fig9a,
    measure_fig9b,
    measure_fig9c,
    render_table,
)

FIGURES: Dict[str, Tuple[str, Callable[[], List[dict]]]] = {
    "fig6": ("Figure 6: distance algorithms on desktop (ms per call)", measure_fig6),
    "fig7": (
        "Figure 7: distance algorithms on simulated phone (ms per call)",
        measure_fig7,
    ),
    "fig8a": (
        "Figure 8(a): range query vs object count, r=30m, 30 floors",
        measure_fig8a,
    ),
    "fig8b": (
        "Figure 8(b): range query vs floor count, r=20m, fixed density",
        measure_fig8b,
    ),
    "fig8c": (
        "Figure 8(c): range query vs object count for r=10..50m",
        measure_fig8c,
    ),
    "fig9a": (
        "Figure 9(a): kNN query vs object count, k=100, 30 floors",
        measure_fig9a,
    ),
    "fig9b": (
        "Figure 9(b): kNN query vs floor count, k=100, fixed density",
        measure_fig9b,
    ),
    "fig9c": ("Figure 9(c): kNN query vs object count for k=1..200", measure_fig9c),
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation figures of Lu/Cao/Jensen ICDE 2012.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="figure",
        help=f"which figure(s) to measure: {', '.join(sorted(FIGURES))}, "
        "or all",
    )
    parser.add_argument(
        "--out", default=None, help="also append Markdown tables to this file"
    )
    parser.add_argument(
        "--json",
        default=None,
        help="also write the raw rows as machine-readable JSON to this file",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="regression-gate the committed BENCH_*.json artifacts "
        "instead of measuring figures (exit 1 on regression)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative slack for the gate's ratio metrics (default 0.20)",
    )
    args = parser.parse_args(argv)

    if args.gate:
        from repro.bench.gate import (
            DEFAULT_TOLERANCE,
            render_gate_report,
            run_gate,
        )

        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        report = run_gate(tolerance=tolerance)
        print(render_gate_report(report))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"# wrote gate report to {args.json}")
        return 0 if report["ok"] else 1
    if not args.figures:
        parser.error("choose figure(s) to measure, or pass --gate")
    unknown = [f for f in args.figures if f != "all" and f not in FIGURES]
    if unknown:
        parser.error(
            f"unknown figure(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(FIGURES))}, or all"
        )

    names = sorted(FIGURES) if "all" in args.figures else args.figures
    scale = current_scale()
    print(f"# scale: {scale.name} (set REPRO_BENCH_SCALE=paper for full runs)")
    markdown_sections = []
    json_figures = {}
    for name in names:
        title, measure = FIGURES[name]
        rows = measure()
        json_figures[name] = {"title": title, "rows": rows}
        table = render_table(rows, title=title)
        print()
        print(table)
        if args.out:
            header = "| " + " | ".join(rows[0].keys()) + " |"
            sep = "|" + "---|" * len(rows[0])
            body = "\n".join(
                "| "
                + " | ".join(
                    f"{v:.2f}" if isinstance(v, float) else str(v)
                    for v in row.values()
                )
                + " |"
                for row in rows
            )
            markdown_sections.append(f"### {title}\n\n{header}\n{sep}\n{body}\n")
    if args.out:
        with open(args.out, "a") as handle:
            handle.write("\n".join(markdown_sections))
        print(f"\n# wrote Markdown tables to {args.out}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(
                {"scale": scale.name, "figures": json_figures},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"\n# wrote JSON rows to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
