"""Tests for the Li & Lee door-count baseline."""

import math

import pytest

from repro.distance import door_count_distance, door_count_pt2pt, pt2pt_distance
from repro.geometry import Point, Segment, rectangle
from repro.model import IndoorSpaceBuilder
from repro.model.figure1 import D12, D13, D15, P, Q, build_figure1


@pytest.fixture(scope="module")
def space():
    return build_figure1()


class TestMotivatingExample:
    def test_door_count_model_picks_the_longer_walk(self, space):
        """§I / §II: the lattice model prefers p -> d13 -> q (one door) even
        though p -> d15 -> d12 -> q is the shorter walk."""
        baseline = door_count_pt2pt(space, P, Q)
        assert baseline.doors_crossed == 1  # through d13
        true_distance = pt2pt_distance(space, P, Q)
        assert baseline.walking_distance > true_distance
        # The one-door route is exactly p -> d13 -> q.
        expected = P.distance_to(Point(8, 6)) + Point(8, 6).distance_to(Q)
        assert baseline.walking_distance == pytest.approx(expected)

    def test_true_shortest_route_crosses_two_doors(self, space):
        from repro.distance import pt2pt_path

        assert len(pt2pt_path(space, P, Q).doors) == 2


class TestDoorCountPt2pt:
    def test_same_partition_is_zero_doors(self, space):
        result = door_count_pt2pt(space, P, Point(9, 9))
        assert result.doors_crossed == 0
        assert result.walking_distance == pytest.approx(P.distance_to(Point(9, 9)))

    def test_unreachable(self):
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 4))
        builder.add_partition(2, rectangle(4, 0, 8, 4))
        builder.add_door(
            1, Segment(Point(4, 1), Point(4, 3)), connects=(2, 1), one_way=True
        )
        space = builder.build()
        result = door_count_pt2pt(space, Point(1, 1), Point(6, 2))
        assert not result.is_reachable
        assert math.isinf(result.walking_distance)

    def test_ties_break_by_walking_distance(self):
        # Two parallel one-door routes; the baseline must choose the shorter.
        builder = IndoorSpaceBuilder()
        builder.add_partition(1, rectangle(0, 0, 4, 8))
        builder.add_partition(2, rectangle(4, 0, 8, 8))
        builder.add_door(1, Segment(Point(4, 6.5), Point(4, 7.5)), connects=(1, 2))
        builder.add_door(2, Segment(Point(4, 0.5), Point(4, 1.5)), connects=(1, 2))
        space = builder.build()
        source, target = Point(1, 6), Point(7, 6)
        result = door_count_pt2pt(space, source, target)
        assert result.doors_crossed == 1
        expected = source.distance_to(Point(4, 7)) + Point(4, 7).distance_to(target)
        assert result.walking_distance == pytest.approx(expected)


class TestDoorCountD2d:
    def test_direct_neighbour_doors(self, space):
        result = door_count_distance(space, D15, D12)
        assert result.doors_crossed == 2
        expected = Point(6, 8).distance_to(Point(5, 6))
        assert result.walking_distance == pytest.approx(expected)

    def test_one_way_asymmetry(self, space):
        forward = door_count_distance(space, D15, D12)
        backward = door_count_distance(space, D12, D15)
        assert backward.doors_crossed == 3  # d12 -> d13 -> d15
        assert backward.doors_crossed > forward.doors_crossed

    def test_same_door(self, space):
        result = door_count_distance(space, D13, D13)
        assert result.doors_crossed == 1
        assert result.walking_distance == 0.0
