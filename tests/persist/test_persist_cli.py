"""Tests for the ``repro persist`` and ``repro doctor --snapshot`` commands."""

import pytest

from repro.cli import main
from repro.io import save_space
from repro.model.figure1 import build_figure1
from repro.persist import SnapshotStore, save_snapshot
from repro.runtime import flip_snapshot_byte


@pytest.fixture
def plan_file(tmp_path):
    path = tmp_path / "plan.json"
    save_space(build_figure1(), path)
    return str(path)


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "snapshots")


class TestPersistSave:
    def test_save_writes_generation_one(self, plan_file, store_dir, capsys):
        assert main(["persist", "save", plan_file, store_dir]) == 0
        out = capsys.readouterr().out
        assert "generation 1" in out
        assert SnapshotStore(store_dir).generations() == [1]

    def test_repeated_saves_advance_the_generation(
        self, plan_file, store_dir, capsys
    ):
        main(["persist", "save", plan_file, store_dir])
        assert main(["persist", "save", plan_file, store_dir]) == 0
        assert "generation 2" in capsys.readouterr().out


class TestPersistVerify:
    def test_healthy_file_and_store(self, plan_file, store_dir, capsys):
        main(["persist", "save", plan_file, store_dir])
        store = SnapshotStore(store_dir)
        assert main(["persist", "verify", str(store.path_for(1))]) == 0
        assert main(["persist", "verify", store_dir]) == 0
        assert "checksum/structure: ok" in capsys.readouterr().out

    def test_corrupt_file_exits_nonzero(self, plan_file, store_dir, capsys):
        main(["persist", "save", plan_file, store_dir])
        store = SnapshotStore(store_dir)
        flip_snapshot_byte(store.path_for(1))
        assert main(["persist", "verify", store_dir]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_empty_store_exits_nonzero(self, store_dir, capsys):
        SnapshotStore(store_dir)  # creates the (empty) directory
        assert main(["persist", "verify", store_dir]) == 1
        assert "no snapshot generations" in capsys.readouterr().out


class TestPersistLoad:
    def test_load_recovers_latest(self, plan_file, store_dir, capsys):
        main(["persist", "save", plan_file, store_dir])
        assert main(["persist", "load", store_dir]) == 0
        out = capsys.readouterr().out
        assert "recovered via snapshot (generation 1)" in out

    def test_corruption_quarantines_and_rebuilds(
        self, plan_file, store_dir, capsys
    ):
        main(["persist", "save", plan_file, store_dir])
        flip_snapshot_byte(SnapshotStore(store_dir).path_for(1))
        assert main(["persist", "load", store_dir, "--plan", plan_file]) == 0
        out = capsys.readouterr().out
        assert "recovered via rebuild" in out
        assert "quarantined" in out

    def test_strict_mode_reports_quarantine(
        self, plan_file, store_dir, capsys
    ):
        main(["persist", "save", plan_file, store_dir])
        flip_snapshot_byte(SnapshotStore(store_dir).path_for(1))
        assert (
            main(
                ["persist", "load", store_dir, "--plan", plan_file, "--strict"]
            )
            == 1
        )

    def test_nothing_loadable_without_plan_fails(self, store_dir, capsys):
        assert main(["persist", "load", store_dir]) == 1
        assert "recovery failed" in capsys.readouterr().out


class TestDoctorSnapshot:
    def _snapshot(self, tmp_path):
        from repro.index import IndexFramework

        framework = IndexFramework.build(build_figure1())
        return str(save_snapshot(framework, tmp_path / "probe.snap"))

    def test_healthy_snapshot(self, tmp_path, capsys):
        snap = self._snapshot(tmp_path)
        assert main(["doctor", "--snapshot", snap]) == 0
        out = capsys.readouterr().out
        assert "checksum/structure: ok" in out
        assert "doctor: healthy" in out

    def test_corrupt_snapshot_exits_nonzero(self, tmp_path, capsys):
        snap = self._snapshot(tmp_path)
        flip_snapshot_byte(snap)
        assert main(["doctor", "--snapshot", snap]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert "doctor: snapshot corrupt" in out

    def test_combined_with_plan_lint(self, tmp_path, plan_file, capsys):
        snap = self._snapshot(tmp_path)
        assert main(["doctor", plan_file, "--snapshot", snap]) == 0
        out = capsys.readouterr().out
        assert "checksum/structure: ok" in out
        assert "floor plan lint:" in out

    def test_no_plan_no_snapshot_is_usage_error(self, capsys):
        assert main(["doctor"]) == 2
