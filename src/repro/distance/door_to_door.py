"""Algorithm 1: door-to-door minimum walking distance (paper §III-D1).

The search expands over *doors* (not partitions) in the spirit of Dijkstra's
algorithm, which is the paper's stated distinction from the textbook version:
graph edges (doors) carry no weights of their own; instead each relaxation
step crosses one partition ``v`` from an entering door ``d_i`` to a leaving
door ``d_j`` at cost ``f_d2d(v, d_i, d_j)``.

The implementation uses a lazy-deletion binary heap, which is semantically
identical to the paper's "replace d_j's element in H" decrease-key but does
not require an addressable heap.  Each door is still settled (visited) at
most once, as the paper requires.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.exceptions import UnknownEntityError
from repro.distance.path import DoorPath
from repro.model.distance_graph import DistanceAwareGraph


@dataclass(frozen=True)
class DoorSearchResult:
    """Outcome of a (possibly early-terminated) door-graph search.

    Attributes:
        source: the source door id.
        dist: settled-or-relaxed distances per door id.  Doors never reached
            are absent; treat absence as ``inf``.
        prev: for every reached door, the ``(partition, door)`` pair through
            which the shortest path arrives (``None`` for the source) — the
            paper's ``prev[.]`` array.
        settled: doors whose distance is final (popped from the heap).
    """

    source: int
    dist: Dict[int, float]
    prev: Dict[int, Optional[Tuple[int, int]]]
    settled: Set[int]

    def distance_to(self, door_id: int) -> float:
        """Final distance to ``door_id`` (``inf`` when not settled)."""
        if door_id in self.settled:
            return self.dist[door_id]
        return math.inf


def door_to_door_search(
    graph: DistanceAwareGraph,
    source_door: int,
    target_door: Optional[int] = None,
    targets: Optional[Iterable[int]] = None,
) -> DoorSearchResult:
    """Run Algorithm 1's expansion from ``source_door``.

    Args:
        graph: the distance-aware graph G_dist.
        source_door: door to start from (distance 0 at its midpoint).
        target_door: stop as soon as this door is settled.
        targets: stop as soon as *all* of these doors are settled (used by
            the refined position-to-position algorithms).  When both stopping
            criteria are ``None`` the search settles every reachable door,
            which is how the all-pairs matrix is built.

    Returns:
        A :class:`DoorSearchResult`; query it with
        :meth:`~DoorSearchResult.distance_to`.
    """
    topology = graph.space.topology
    if not topology.has_door(source_door):
        raise UnknownEntityError("door", source_door)
    if target_door is not None and not topology.has_door(target_door):
        raise UnknownEntityError("door", target_door)

    pending: Optional[Set[int]] = set(targets) if targets is not None else None
    dist: Dict[int, float] = {source_door: 0.0}
    prev: Dict[int, Optional[Tuple[int, int]]] = {source_door: None}
    settled: Set[int] = set()
    heap: list = [(0.0, source_door)]

    while heap:
        d, current = heapq.heappop(heap)
        if current in settled:
            continue
        settled.add(current)
        if current == target_door:
            break
        if pending is not None:
            pending.discard(current)
            if not pending:
                break
        for partition_id in topology.enterable_partitions(current):
            for next_door in topology.leaveable_doors(partition_id):
                if next_door in settled:
                    continue
                weight = graph.fd2d(partition_id, current, next_door)
                if math.isinf(weight):
                    continue
                candidate = d + weight
                if candidate < dist.get(next_door, math.inf):
                    dist[next_door] = candidate
                    prev[next_door] = (partition_id, current)
                    heapq.heappush(heap, (candidate, next_door))

    return DoorSearchResult(source_door, dist, prev, settled)


def d2d_distance(
    graph: DistanceAwareGraph, source_door: int, target_door: int
) -> float:
    """d2dDistance(d_s, d_t): the minimum walking distance between two door
    midpoints, or ``inf`` when the target cannot be reached."""
    result = door_to_door_search(graph, source_door, target_door=target_door)
    return result.distance_to(target_door)


def d2d_path(
    graph: DistanceAwareGraph, source_door: int, target_door: int
) -> DoorPath:
    """Like :func:`d2d_distance` but also reconstructs the concrete shortest
    path (door and partition sequence) from the ``prev`` array."""
    result = door_to_door_search(graph, source_door, target_door=target_door)
    distance = result.distance_to(target_door)
    if math.isinf(distance):
        return DoorPath(math.inf, (), ())

    doors = [target_door]
    partitions = []
    cursor = target_door
    while True:
        step = result.prev[cursor]
        if step is None:
            break
        partition_id, previous_door = step
        partitions.append(partition_id)
        doors.append(previous_door)
        cursor = previous_door
    doors.reverse()
    partitions.reverse()
    return DoorPath(distance, tuple(doors), tuple(partitions))
