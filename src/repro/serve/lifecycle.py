"""Supervised service lifecycle: warm start, readiness, graceful shutdown.

:class:`SupervisedQueryService` wraps a :class:`~repro.serve.service.
QueryService` in the durability contract of :mod:`repro.persist`:

* **Supervised startup** — ``start()`` runs the
  :class:`~repro.persist.RecoveryManager` ladder (verify checksums, replay
  the topology WAL, quarantine damage, fall back to a fresh rebuild) on a
  background thread; the service admits no requests and the readiness
  probe reports ``NOT_READY`` until recovery completes.
* **Readiness probe** — :meth:`readiness` is the health endpoint payload:
  lifecycle state, whether requests are admitted, and the recovery
  provenance (generation, source, replayed WAL records).
* **Graceful shutdown** — :meth:`shutdown` moves to ``DRAINING`` (new
  submissions are refused with
  :class:`~repro.exceptions.ServiceUnavailableError`), lets the workers
  drain every in-flight request, then writes a final snapshot generation
  covering the whole WAL (and truncates it), so the next start is warm.

The wrapper is also a context manager: ``with SupervisedQueryService(...)
as svc:`` starts (waiting for readiness) and shuts down gracefully.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.exceptions import ServiceUnavailableError
from repro.index.framework import IndexFramework
from repro.overload.introspect import overload_snapshot
from repro.persist.recovery import (
    RecoveryManager,
    RecoveryReport,
    SnapshotStore,
)
from repro.persist.wal import WalRecorder
from repro.serve.requests import QueryRequest, QueryResponse
from repro.serve.service import QueryService, ServiceState


class SupervisedQueryService:
    """A :class:`QueryService` with crash-safe startup and shutdown.

    Args:
        store: the generational snapshot store to recover from and
            checkpoint into.
        rebuild: zero-argument callable producing a fresh
            :class:`IndexFramework` when no snapshot generation is loadable
            (omit to make that case fatal at startup).
        recovery: a preconfigured :class:`RecoveryManager` (overrides
            ``rebuild`` / ``verify_integrity``; mostly for tests).
        verify_integrity: run the §IV invariant checks on every restored
            framework during recovery.
        snapshot_on_shutdown: write a final generation (and truncate the
            WAL) during :meth:`shutdown`.
        **service_kwargs: forwarded to the :class:`QueryService`
            constructor (workers, queue capacity, cache size, ...).
    """

    def __init__(
        self,
        store: SnapshotStore,
        *,
        rebuild: Optional[Callable[[], IndexFramework]] = None,
        recovery: Optional[RecoveryManager] = None,
        verify_integrity: bool = True,
        snapshot_on_shutdown: bool = True,
        **service_kwargs: Any,
    ) -> None:
        self.store = store
        self._recovery = recovery or RecoveryManager(
            store, rebuild=rebuild, verify_integrity=verify_integrity
        )
        self._snapshot_on_shutdown = snapshot_on_shutdown
        self._service_kwargs = service_kwargs
        self._service: Optional[QueryService] = None
        self._report: Optional[RecoveryReport] = None
        self._startup_error: Optional[BaseException] = None
        self._state = ServiceState.STARTING
        self._lock = threading.Lock()
        self._ready = threading.Event()
        self._starter: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> ServiceState:
        """The supervised lifecycle state (STARTING → READY → DRAINING →
        STOPPED)."""
        with self._lock:
            return self._state

    def start(self, wait: bool = True) -> "SupervisedQueryService":
        """Begin supervised startup (idempotent).

        Recovery runs on a background thread so callers can poll
        :meth:`readiness` meanwhile; with ``wait=True`` the call blocks
        until the service is READY (re-raising any startup failure).
        """
        with self._lock:
            if self._starter is None and self._state is ServiceState.STARTING:
                self._starter = threading.Thread(
                    target=self._recover_and_serve,
                    name="repro-serve-supervisor",
                    daemon=True,
                )
                self._starter.start()
        if wait:
            self.wait_ready()
        return self

    def _recover_and_serve(self) -> None:
        try:
            report = self._recovery.recover()
            service = QueryService(report.framework, **self._service_kwargs)
            service.start()
        except BaseException as exc:  # surfaced via wait_ready/readiness
            with self._lock:
                self._startup_error = exc
                self._state = ServiceState.STOPPED
            self._ready.set()
            return
        stale: Optional[QueryService] = None
        with self._lock:
            if self._state is ServiceState.STARTING:
                self._report = report
                self._service = service
                self._state = ServiceState.READY
            else:  # shutdown() won the race; don't leak workers
                stale = service
        if stale is not None:
            # Stopped outside the lock: stop() can join worker threads,
            # and nothing here still needs the state guarded.
            stale.stop(wait=False)
        self._ready.set()

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until recovery finished; True when the service is READY.

        Re-raises the startup failure if recovery died.
        """
        finished = self._ready.wait(timeout)
        with self._lock:
            if self._startup_error is not None:
                raise self._startup_error
            return finished and self._state is ServiceState.READY

    def readiness(self) -> Dict[str, Any]:
        """The readiness-probe payload.

        ``ready`` is False (probe: NOT_READY) until recovery completes and
        the workers are up, and again once draining begins.
        """
        with self._lock:
            state = self._state
            report = self._report
            error = self._startup_error
            service = self._service
        payload: Dict[str, Any] = {
            "state": state.value,
            "ready": state is ServiceState.READY,
        }
        if report is not None:
            payload["recovery"] = {
                "source": report.source.value,
                "generation": report.generation,
                "replayed": report.replay.applied if report.replay else 0,
                "quarantined": [p.name for p in report.quarantined],
            }
        if service is not None:
            payload["overload"] = overload_snapshot(
                service.metrics,
                limiter=service.limiter,
                budget=service.retry_budget,
            )
        if error is not None:
            payload["error"] = str(error)
        return payload

    def shutdown(self) -> Optional[RecoveryReport]:
        """Drain gracefully and persist a final snapshot.

        New submissions are refused the moment draining begins; every
        already-admitted request completes before the workers exit; the
        final snapshot (written only when configured and recovery ever
        produced a framework) covers the whole WAL, which is then
        truncated.  Returns the startup recovery report (``None`` when
        startup never completed).
        """
        with self._lock:
            if self._state in (ServiceState.DRAINING, ServiceState.STOPPED):
                return self._report
            self._state = ServiceState.DRAINING
            service = self._service
        if self._starter is not None:
            self._ready.wait()
        if service is None:
            with self._lock:
                service = self._service
        if service is not None:
            service.stop(wait=True)  # drains the admission queue
            if self._snapshot_on_shutdown:
                self.store.checkpoint(service.engine.framework)
        with self._lock:
            self._state = ServiceState.STOPPED
        return self._report

    def __enter__(self) -> "SupervisedQueryService":
        """Start and wait for readiness on context entry."""
        return self.start(wait=True)

    def __exit__(self, exc_type, exc, tb) -> None:
        """Drain, snapshot, and stop on context exit."""
        self.shutdown()

    # ------------------------------------------------------------------
    # Serving (guarded delegation)
    # ------------------------------------------------------------------
    def _require_ready(self) -> QueryService:
        with self._lock:
            if self._state is not ServiceState.READY or self._service is None:
                raise ServiceUnavailableError(
                    f"service is {self._state.value}, not admitting requests",
                    state=self._state.value,
                )
            return self._service

    def submit(self, request: QueryRequest):
        """Admit one request (only while READY)."""
        return self._require_ready().submit(request)

    def serve(self, requests: Iterable[QueryRequest]) -> List[QueryResponse]:
        """Submit many requests and wait for all (only while READY)."""
        return self._require_ready().serve(requests)

    def execute(self, request: QueryRequest) -> QueryResponse:
        """Serve one request synchronously (only while READY)."""
        return self._require_ready().execute(request)

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    @property
    def service(self) -> Optional[QueryService]:
        """The inner service once READY (``None`` before recovery ends)."""
        with self._lock:
            return self._service

    @property
    def recovery_report(self) -> Optional[RecoveryReport]:
        """How startup recovered the indexes (``None`` until READY)."""
        with self._lock:
            return self._report

    def wal_recorder(self) -> WalRecorder:
        """A write-ahead mutation facade over the served space.

        Mutations made through it are durable before they apply, so a
        crash at any point replays them on the next supervised start.
        """
        service = self._require_ready()
        return WalRecorder(service.engine.framework.space, self.store.wal())

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The inner service's metrics (empty dict before READY)."""
        with self._lock:
            service = self._service
        return service.metrics_snapshot() if service is not None else {}
