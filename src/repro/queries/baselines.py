"""Brute-force query oracles.

These evaluate the exact position-to-position distance (Algorithm 3) from
the query position to *every* object — no indexes, no pruning.  They are the
ground truth the engine's results are verified against in tests, the
"how bad would it be with no infrastructure at all" datapoint in examples,
and the ``EXACT_FALLBACK`` rung of the runtime degradation ladder (they
need only the space graph and the object directory, so they keep answering
exactly while M_d2d / DPT are corrupt or mid-rebuild).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.distance.point_to_point import pt2pt_distance_refined
from repro.exceptions import QueryError
from repro.geometry import Point
from repro.index.objects import ObjectStore
from repro.model.builder import IndoorSpace
from repro.queries.checks import require_finite, require_finite_position

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.deadline import Deadline


def brute_force_range(
    space: IndoorSpace,
    store: ObjectStore,
    position: Point,
    radius: float,
    deadline: Optional["Deadline"] = None,
) -> List[int]:
    """Exact range query by evaluating pt2pt distance per object."""
    require_finite_position(position)
    require_finite(radius, "range radius")
    if radius < 0:
        raise QueryError(f"range radius must be non-negative, got {radius}")
    results = []
    for obj in store:
        if deadline is not None:
            deadline.check("brute-force range query")
        distance = pt2pt_distance_refined(
            space, position, obj.position, deadline=deadline
        )
        if distance <= radius + 1e-9:
            results.append(obj.object_id)
    return sorted(results)


def brute_force_knn(
    space: IndoorSpace,
    store: ObjectStore,
    position: Point,
    k: int,
    deadline: Optional["Deadline"] = None,
) -> List[Tuple[int, float]]:
    """Exact kNN by evaluating pt2pt distance per object."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    require_finite_position(position)
    scored = []
    for obj in store:
        if deadline is not None:
            deadline.check("brute-force kNN query")
        distance = pt2pt_distance_refined(
            space, position, obj.position, deadline=deadline
        )
        if not math.isinf(distance):
            scored.append((distance, obj.object_id))
    scored.sort()
    return [(oid, dist) for dist, oid in scored[:k]]
