"""ASCII-art floor plans.

A quick way to author test and demo plans::

    plan = parse_ascii_plan('''
        #########
        #AAA#BBB#
        #AAA1BBB#
        #AAA#BBB#
        ####2####
        #CCCCCCC#
        #########
    ''')

Format rules:

* letters ``A``-``Z`` are partition cells; all cells of one letter must fill
  a solid rectangle, and different letters must be separated by at least one
  wall cell (walls are one cell thick);
* ``#`` is wall;
* a digit ``0``-``9`` in a wall cell between two partition cells is a
  bidirectional door;
* ``<`` ``>`` ``^`` ``v`` are one-way doors permitting movement only in the
  arrow's direction (screen coordinates: ``^`` means towards the top line).

Geometry: each grid cell is ``cell_size`` × ``cell_size`` metres, and every
partition expands half a cell into the walls around it — so one-cell walls
collapse to shared zero-thickness boundaries, exactly as the model expects,
and doors sit on those shared midlines.

Returns the built :class:`~repro.model.builder.IndoorSpace` plus name
mappings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SerializationError
from repro.geometry import Point, Segment, rectangle
from repro.model.builder import IndoorSpace, IndoorSpaceBuilder

WALL = "#"
DOOR_CHARS = set("0123456789<>^v")


@dataclass(frozen=True)
class AsciiPlan:
    """The parse result.

    Attributes:
        space: the built indoor space.
        partitions: letter → partition id.
        doors: (row, column) of each door char → door id.
    """

    space: IndoorSpace
    partitions: Dict[str, int]
    doors: Dict[Tuple[int, int], int]


def _grid_from_text(text: str) -> List[str]:
    lines = [line.rstrip() for line in text.strip("\n").splitlines()]
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise SerializationError("empty ASCII plan")
    width = max(len(line) for line in lines)
    grid = [line.ljust(width) for line in lines]
    for row, line in enumerate(grid):
        for col, char in enumerate(line):
            if char == " ":
                continue
            if char != WALL and char not in DOOR_CHARS and not char.isupper():
                raise SerializationError(
                    f"unexpected character {char!r} at row {row}, column {col}"
                )
    return grid


def _validate_partitions(grid: List[str]) -> Dict[str, Tuple[int, int, int, int]]:
    """Letter extents, with solid-rectangle and wall-separation checks."""
    extents: Dict[str, List[int]] = {}
    for row, line in enumerate(grid):
        for col, char in enumerate(line):
            if not char.isupper():
                continue
            box = extents.setdefault(char, [row, row, col, col])
            box[0] = min(box[0], row)
            box[1] = max(box[1], row)
            box[2] = min(box[2], col)
            box[3] = max(box[3], col)
    if not extents:
        raise SerializationError("plan has no partitions")
    for letter, (r0, r1, c0, c1) in extents.items():
        for row in range(r0, r1 + 1):
            for col in range(c0, c1 + 1):
                if grid[row][col] != letter:
                    raise SerializationError(
                        f"partition {letter!r} is not a solid rectangle "
                        f"(hole at row {row}, column {col})"
                    )
    height, width = len(grid), len(grid[0])
    for row in range(height):
        for col in range(width):
            char = grid[row][col]
            if not char.isupper():
                continue
            for dr, dc in ((0, 1), (1, 0)):
                nr, nc = row + dr, col + dc
                if nr < height and nc < width:
                    other = grid[nr][nc]
                    if other.isupper() and other != char:
                        raise SerializationError(
                            f"partitions {char!r} and {other!r} touch without "
                            f"a wall at row {row}, column {col}; separate "
                            "them by one wall cell"
                        )
    return {letter: tuple(box) for letter, box in extents.items()}


def _door_geometry(
    grid: List[str], row: int, col: int, cell: float
) -> Optional[Tuple[str, str, Segment, bool, Tuple[str, str]]]:
    """For a door cell: (from_letter, to_letter, segment, one_way, pair)."""
    height, width = len(grid), len(grid[0])
    char = grid[row][col]
    left = grid[row][col - 1] if col > 0 else WALL
    right = grid[row][col + 1] if col + 1 < width else WALL
    above = grid[row - 1][col] if row > 0 else WALL
    below = grid[row + 1][col] if row + 1 < height else WALL

    horizontal = left.isupper() and right.isupper()
    vertical = above.isupper() and below.isupper()
    if horizontal == vertical:
        raise SerializationError(
            f"door {char!r} at row {row}, column {col} must face exactly "
            "two partitions across a wall"
        )
    if horizontal:
        if left == right:
            raise SerializationError(
                f"door {char!r} at row {row}, column {col} connects "
                f"partition {left!r} to itself"
            )
        x = (col + 0.5) * cell
        y0 = (height - 1 - row) * cell
        segment = Segment(Point(x, y0), Point(x, y0 + cell))
        if char == ">":
            return left, right, segment, True, (left, right)
        if char == "<":
            return right, left, segment, True, (left, right)
        if char in ("^", "v"):
            raise SerializationError(
                f"vertical arrow {char!r} in a vertical wall at "
                f"row {row}, column {col}"
            )
        return left, right, segment, False, (left, right)

    # Vertical wall run: partitions above and below.
    if above == below:
        raise SerializationError(
            f"door {char!r} at row {row}, column {col} connects "
            f"partition {above!r} to itself"
        )
    y = (height - 1 - row + 0.5) * cell
    x0 = col * cell
    segment = Segment(Point(x0, y), Point(x0 + cell, y))
    # 'below' in text is the smaller y (textual down = south).
    south, north = below, above
    if char == "^":
        return south, north, segment, True, (south, north)
    if char == "v":
        return north, south, segment, True, (south, north)
    if char in ("<", ">"):
        raise SerializationError(
            f"horizontal arrow {char!r} in a horizontal wall at "
            f"row {row}, column {col}"
        )
    return south, north, segment, False, (south, north)


def parse_ascii_plan(text: str, cell_size: float = 2.0) -> AsciiPlan:
    """Parse an ASCII floor plan into an :class:`IndoorSpace`.

    Raises:
        SerializationError: on malformed input (ragged partitions,
            unseparated partitions, doors in the open, ...).
    """
    if cell_size <= 0:
        raise SerializationError(f"cell size must be positive, got {cell_size}")
    grid = _grid_from_text(text)
    height = len(grid)
    extents = _validate_partitions(grid)

    builder = IndoorSpaceBuilder()
    partition_ids: Dict[str, int] = {}
    half = cell_size / 2.0
    for index, letter in enumerate(sorted(extents), start=1):
        r0, r1, c0, c1 = extents[letter]
        builder.add_partition(
            index,
            rectangle(
                c0 * cell_size - half,
                (height - 1 - r1) * cell_size - half,
                (c1 + 1) * cell_size + half,
                (height - r0) * cell_size + half,
            ),
            name=letter,
        )
        partition_ids[letter] = index

    door_ids: Dict[Tuple[int, int], int] = {}
    next_door = 1
    for row, line in enumerate(grid):
        for col, char in enumerate(line):
            if char not in DOOR_CHARS:
                continue
            from_letter, to_letter, segment, one_way, pair = _door_geometry(
                grid, row, col, cell_size
            )
            builder.add_door(
                next_door,
                segment,
                connects=(partition_ids[from_letter], partition_ids[to_letter]),
                one_way=one_way,
                name=f"{pair[0]}{char}{pair[1]}",
            )
            door_ids[(row, col)] = next_door
            next_door += 1

    return AsciiPlan(builder.build(), partition_ids, door_ids)
