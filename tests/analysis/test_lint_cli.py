"""``repro lint`` / ``repro doctor --lint`` command-line behaviour."""

import json
import textwrap

from repro.cli import main

BAD_CHAOS = textwrap.dedent(
    """\
    import time

    def stamp():
        return time.time()
    """
)


def make_project(tmp_path, source=BAD_CHAOS):
    (tmp_path / "pyproject.toml").write_text(
        '[project]\nname = "demo"\nversion = "0.1.0"\n'
    )
    module = tmp_path / "src" / "repro" / "chaos" / "x.py"
    module.parent.mkdir(parents=True)
    module.write_text(source)
    return tmp_path


class TestLintCommand:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert rule in out

    def test_findings_fail_and_render_location(self, tmp_path, capsys):
        root = make_project(tmp_path)
        code = main(["lint", "--root", str(root), str(root / "src")])
        out = capsys.readouterr().out
        assert code == 1
        assert "src/repro/chaos/x.py:4" in out
        assert "REP002" in out
        assert "hint:" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = make_project(tmp_path, source="x = 1\n")
        code = main(["lint", "--strict", "--root", str(root), str(root / "src")])
        assert code == 0
        assert "— ok" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        root = make_project(tmp_path)
        out_path = tmp_path / "findings.json"
        main(
            ["lint", "--root", str(root), "--json", str(out_path),
             str(root / "src")]
        )
        payload = json.loads(out_path.read_text())
        assert payload["checked_modules"] == 1
        assert payload["new"][0]["rule"] == "REP002"
        assert payload["new"][0]["fingerprint"]

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_project(tmp_path)
        assert (
            main(["lint", "--root", str(root), "--write-baseline",
                  str(root / "src")])
            == 0
        )
        assert (root / ".repro-lint-baseline.json").exists()
        capsys.readouterr()
        assert main(["lint", "--root", str(root), str(root / "src")]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        root = make_project(tmp_path)
        code = main(
            ["lint", "--root", str(root), "--select", "REP001",
             str(root / "src")]
        )
        assert code == 0
        assert "1 rules" in capsys.readouterr().out


class TestDoctorLint:
    def test_doctor_lint_healthy(self, tmp_path, monkeypatch, capsys):
        root = make_project(tmp_path, source="x = 1\n")
        monkeypatch.chdir(root)
        assert main(["doctor", "--lint"]) == 0
        out = capsys.readouterr().out
        assert "static analysis: 1 modules" in out
        assert "doctor: healthy" in out

    def test_doctor_lint_regressions(self, tmp_path, monkeypatch, capsys):
        root = make_project(tmp_path)
        monkeypatch.chdir(root)
        assert main(["doctor", "--lint"]) == 1
        out = capsys.readouterr().out
        assert "1 new finding(s)" in out
        assert "doctor: static analysis regressions" in out

    def test_doctor_without_any_target_still_errors(self, capsys):
        assert main(["doctor"]) == 2
        assert "--lint" in capsys.readouterr().out
