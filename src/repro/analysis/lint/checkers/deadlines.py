"""REP003 — deadline propagation.

PR 1's contract: every Algorithm 2–6 loop consults the deadline budget.
That only works if deadlines *reach* the loops — a caller that accepts a
``deadline``/``budget`` parameter and then invokes a deadline-aware
callee without forwarding it silently converts a bounded query into an
unbounded one.

The project-wide ``scan`` pre-pass builds a table of every function and
method in the tree that accepts a deadline-like parameter.  The
per-module pass then walks each deadline-accepting function and flags
calls to deadline-accepting callees that pass neither a
``deadline=``/``budget=`` keyword nor any argument whose name mentions
deadline/budget.

Callee resolution rides the interprocedural call graph
(:mod:`repro.analysis.lint.callgraph`): imports, ``self.m()`` dispatch,
and typed-receiver methods resolve to concrete function summaries, so a
same-named helper in an unrelated module no longer triggers a false
positive.  Calls the resolver cannot pin down fall back to the old
coarse simple-name match — unresolved calls err toward catching dropped
deadlines rather than missing them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.lint.callgraph import (
    FunctionInfo,
    ProjectGraph,
    build_graph,
)
from repro.analysis.lint.context import ModuleContext, ProjectContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import Checker, register

_DEADLINE_PARAMS = {"deadline", "budget"}
_NAME_FRAGMENTS = ("deadline", "budget")


def _deadline_param(node: ast.FunctionDef) -> Optional[str]:
    """The deadline-like parameter name of ``node``, if any."""
    args = node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg in _DEADLINE_PARAMS:
            return arg.arg
    return None


def _callee_simple_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _mentions_deadline(expr: ast.expr) -> bool:
    """Does any name inside ``expr`` look deadline-derived?"""
    for node in ast.walk(expr):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.arg):
            name = node.arg
        if name and any(frag in name.lower() for frag in _NAME_FRAGMENTS):
            return True
    return False


def _call_forwards_deadline(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg in _DEADLINE_PARAMS:
            return True
        if keyword.arg is None and _mentions_deadline(keyword.value):
            return True  # **kwargs that plausibly carries it
        if keyword.arg and _mentions_deadline(keyword.value):
            return True
    return any(_mentions_deadline(arg) for arg in call.args)


class _FunctionCollector(ast.NodeVisitor):
    """Collect (simple name -> accepts deadline) over the whole project."""

    def __init__(self, table: Set[str]) -> None:
        self.table = table

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if _deadline_param(node) is not None:
            self.table.add(node.name)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


def _accepts_deadline(info: "FunctionInfo") -> bool:
    return any(name in _DEADLINE_PARAMS for name in info.params)


@register
class DeadlinePropagationChecker(Checker):
    rule_id = "REP003"
    summary = "deadline-accepting functions must forward to aware callees"

    def __init__(self) -> None:
        self._aware: Set[str] = set()
        self._graph: Optional[ProjectGraph] = None
        self._aware_keys: Set[str] = set()
        self._by_site: Dict[Tuple[str, int, str], FunctionInfo] = {}

    def scan(self, project: ProjectContext) -> None:
        collector = _FunctionCollector(self._aware)
        for module in project.modules:
            collector.visit(module.tree)
        # The Deadline machinery itself is not a "callee to forward to".
        self._aware.discard("__init__")
        self._aware.discard("as_deadline")
        self._graph = build_graph(project)
        self._aware_keys = {
            key
            for key, info in self._graph.functions.items()
            if _accepts_deadline(info)
            and info.name not in ("__init__", "as_deadline")
        }
        self._by_site = {
            (info.relpath, info.lineno, info.name): info
            for info in self._graph.functions.values()
        }

    def check(
        self, module: ModuleContext, project: ProjectContext
    ) -> Iterable[Finding]:
        if not module.module_name.startswith("repro."):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                param = _deadline_param(node)
                if param is None:
                    continue
                findings.extend(self._check_function(module, node, param))
        return findings

    def _resolved_aware(
        self, module: ModuleContext, function: ast.FunctionDef, call: ast.Call
    ) -> Optional[bool]:
        """Graph-resolved awareness of a call's callee.

        ``True``/``False`` when the call graph pinned the callee down;
        ``None`` when it could not (caller falls back to name matching).
        """
        if self._graph is None:
            return None
        info = self._by_site.get(
            (module.relpath, function.lineno, function.name)
        )
        if info is None:
            return None
        for event in info.calls:
            if event.line == call.lineno and event.col == call.col_offset:
                return any(
                    callee in self._aware_keys for callee in event.callees
                )
        return None

    def _check_function(
        self,
        module: ModuleContext,
        function: ast.FunctionDef,
        param: str,
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(function):
            # Nested defs get their own pass from check(); skip their
            # bodies here to avoid double-reporting.
            if node is not function and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_simple_name(node.func)
            if callee is None or callee == function.name:
                continue
            resolved = self._resolved_aware(module, function, node)
            if resolved is False:
                continue  # resolved to a callee with no deadline param
            if resolved is None and callee not in self._aware:
                continue
            if _call_forwards_deadline(node):
                continue
            findings.append(
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{function.name}() accepts '{param}' but calls "
                    f"deadline-aware {callee}() without forwarding it",
                    hint=f"pass {param}={param} (or a derived budget) "
                    f"to {callee}()",
                )
            )
        return findings
