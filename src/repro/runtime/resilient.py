"""The hardened query facade: :class:`ResilientQueryEngine`.

Wraps a :class:`~repro.queries.engine.QueryEngine` (or a bare
:class:`~repro.index.IndexFramework`) behind admission control and the
degradation ladder of :mod:`repro.runtime.ladder`:

1. **Validation** — NaN / infinite radii and coordinates are rejected with
   :class:`~repro.exceptions.QueryError` before any work happens.
2. **Freshness** — if the space's topology epoch moved past the framework's
   build epoch, the indexes are rebuilt under the bounded
   :class:`~repro.runtime.retry.RetryPolicy` (or, when rebuilds are
   disabled or keep failing, the exact-indexed rung is skipped).
3. **Integrity** — M_d2d / DPT invariants are verified before the indexed
   rung is trusted; corruption routes the query down the ladder instead of
   returning silently wrong answers.
4. **Deadlines** — a per-query :class:`~repro.runtime.deadline.Deadline`
   is threaded through every rung's hot loop; on expiry the engine either
   degrades to the instantaneous Euclidean rung (default) or re-raises.

Every answer is a :class:`~repro.runtime.ladder.ResilientResult` tagging
the rung that produced it, so callers always know what they got.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.exceptions import (
    CorruptIndexError,
    DeadlineExceededError,
    IndexError_,
    ReproError,
    StaleIndexError,
    UnknownEntityError,
)
from repro.geometry import Point
from repro.index.framework import IndexFramework
from repro.queries.baselines import brute_force_knn, brute_force_range
from repro.queries.checks import require_finite, require_finite_position
from repro.queries.engine import QueryEngine
from repro.queries.knn_query import knn_query
from repro.queries.range_query import range_query
from repro.runtime.deadline import DeadlineLike, as_deadline
from repro.runtime.integrity import require_index_integrity
from repro.runtime.ladder import (
    QualityLevel,
    ResilientResult,
    RungFailure,
    door_count_distance_value,
    door_count_knn,
    door_count_range,
    euclidean_knn,
    euclidean_lower_bound,
    euclidean_range,
    exact_fallback_distance,
)
from repro.runtime.retry import RetryPolicy

#: Failures of the exact indexed rung that route a query down the ladder
#: rather than out to the caller.  ``UnknownEntityError`` covers dropped
#: DPT / matrix records; ``IndexError_`` covers staleness and corruption.
_INDEX_FAULTS = (IndexError_, UnknownEntityError)


class ResilientQueryEngine:
    """Distance-aware indoor queries that degrade instead of failing.

    Args:
        framework: the index framework (or an existing
            :class:`QueryEngine`) to harden.
        retry_policy: bounds for transparent stale-index rebuilds.
        rebuild_on_stale: rebuild when the topology epoch moved (otherwise
            the exact indexed rung is skipped for stale frameworks).
        rebuild_on_corrupt: also rebuild when integrity checks fail
            (default off: corruption usually indicates a bug worth
            surfacing in the result's ``failures`` rather than papering
            over with CPU time).
        verify_integrity: run the M_d2d / DPT invariant checks before each
            indexed answer.  Vectorised over the matrix — cheap for the
            building sizes of the paper's experiments; disable for very
            large deployments that audit out of band.
        degrade_on_deadline: on deadline expiry fall to cheaper rungs and
            ultimately the instantaneous Euclidean bound (default);
            when False, :class:`DeadlineExceededError` propagates.
    """

    def __init__(
        self,
        framework: Union[IndexFramework, QueryEngine],
        retry_policy: Optional[RetryPolicy] = None,
        rebuild_on_stale: bool = True,
        rebuild_on_corrupt: bool = False,
        verify_integrity: bool = True,
        degrade_on_deadline: bool = True,
    ) -> None:
        self.engine = (
            framework
            if isinstance(framework, QueryEngine)
            else QueryEngine(framework)
        )
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.rebuild_on_stale = rebuild_on_stale
        self.rebuild_on_corrupt = rebuild_on_corrupt
        self.verify_integrity = verify_integrity
        self.degrade_on_deadline = degrade_on_deadline

    @classmethod
    def for_space(cls, space, objects=None, **options) -> "ResilientQueryEngine":
        """Build every index for ``space`` and wrap it resiliently."""
        return cls(QueryEngine.for_space(space, objects), **options)

    # ------------------------------------------------------------------
    # Introspection / delegation
    # ------------------------------------------------------------------
    @property
    def framework(self) -> IndexFramework:
        """The current (possibly rebuilt) index framework."""
        return self.engine.framework

    @property
    def space(self):
        """The underlying indoor space."""
        return self.engine.space

    def __getattr__(self, name):
        # Object maintenance and the rest of the plain-engine surface pass
        # straight through; only the query entry points are hardened here.
        return getattr(self.engine, name)

    # ------------------------------------------------------------------
    # Admission: freshness + integrity for the exact indexed rung
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        self.engine.framework = self.retry_policy.run(
            self.engine.framework.rebuild
        )

    def _admit_indexed_rung(
        self, failures: List[RungFailure]
    ) -> Tuple[bool, bool]:
        """Ensure the indexed rung is trustworthy.

        Returns ``(usable, rebuilt)``; on failure the reason is appended to
        ``failures`` and the ladder proceeds from the fallback rung.
        """
        rebuilt = False
        try:
            self.engine.framework.check_fresh()
        except StaleIndexError as exc:
            if self.rebuild_on_stale and self.retry_policy.max_attempts > 0:
                try:
                    self._rebuild()
                    rebuilt = True
                except ReproError as rebuild_exc:
                    failures.append(
                        RungFailure(QualityLevel.EXACT_INDEXED, rebuild_exc)
                    )
                    return False, rebuilt
            else:
                failures.append(RungFailure(QualityLevel.EXACT_INDEXED, exc))
                return False, rebuilt
        if self.verify_integrity:
            try:
                require_index_integrity(self.engine.framework)
            except CorruptIndexError as exc:
                if (
                    self.rebuild_on_corrupt
                    and self.retry_policy.max_attempts > 0
                ):
                    try:
                        self._rebuild()
                        rebuilt = True
                        require_index_integrity(self.engine.framework)
                    except ReproError as rebuild_exc:
                        failures.append(
                            RungFailure(
                                QualityLevel.EXACT_INDEXED, rebuild_exc
                            )
                        )
                        return False, rebuilt
                else:
                    failures.append(
                        RungFailure(QualityLevel.EXACT_INDEXED, exc)
                    )
                    return False, rebuilt
        return True, rebuilt

    def _deadline_failure(
        self,
        failures: List[RungFailure],
        level: QualityLevel,
        exc: DeadlineExceededError,
    ) -> None:
        """Record a deadline expiry, or re-raise when degradation is off."""
        if not self.degrade_on_deadline:
            raise exc
        failures.append(RungFailure(level, exc))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(
        self, position: Point, radius: float, deadline: DeadlineLike = None
    ) -> ResilientResult:
        """Ladder-protected range query; ``value`` is the sorted id list."""
        deadline = as_deadline(deadline)
        require_finite_position(position)
        require_finite(radius, "range radius")
        failures: List[RungFailure] = []
        usable, rebuilt = self._admit_indexed_rung(failures)
        if usable:
            try:
                value = range_query(
                    self.framework, position, radius, deadline=deadline
                )
                return ResilientResult(
                    value, QualityLevel.EXACT_INDEXED, tuple(failures), rebuilt
                )
            except DeadlineExceededError as exc:
                self._deadline_failure(
                    failures, QualityLevel.EXACT_INDEXED, exc
                )
            except _INDEX_FAULTS as exc:
                failures.append(RungFailure(QualityLevel.EXACT_INDEXED, exc))
        try:
            value = brute_force_range(
                self.space,
                self.framework.objects,
                position,
                radius,
                deadline=deadline,
            )
            return ResilientResult(
                value, QualityLevel.EXACT_FALLBACK, tuple(failures), rebuilt
            )
        except DeadlineExceededError as exc:
            self._deadline_failure(failures, QualityLevel.EXACT_FALLBACK, exc)
        try:
            value = door_count_range(
                self.framework, position, radius, deadline=deadline
            )
            return ResilientResult(
                value, QualityLevel.DOOR_COUNT, tuple(failures), rebuilt
            )
        except DeadlineExceededError as exc:
            self._deadline_failure(failures, QualityLevel.DOOR_COUNT, exc)
        value = euclidean_range(self.framework, position, radius)
        return ResilientResult(
            value, QualityLevel.EUCLIDEAN, tuple(failures), rebuilt
        )

    def knn(
        self, position: Point, k: int = 1, deadline: DeadlineLike = None
    ) -> ResilientResult:
        """Ladder-protected kNN; ``value`` is ``[(object_id, distance)]``."""
        deadline = as_deadline(deadline)
        require_finite_position(position)
        failures: List[RungFailure] = []
        usable, rebuilt = self._admit_indexed_rung(failures)
        if usable:
            try:
                value = knn_query(
                    self.framework, position, k, deadline=deadline
                )
                return ResilientResult(
                    value, QualityLevel.EXACT_INDEXED, tuple(failures), rebuilt
                )
            except DeadlineExceededError as exc:
                self._deadline_failure(
                    failures, QualityLevel.EXACT_INDEXED, exc
                )
            except _INDEX_FAULTS as exc:
                failures.append(RungFailure(QualityLevel.EXACT_INDEXED, exc))
        try:
            value = brute_force_knn(
                self.space,
                self.framework.objects,
                position,
                k,
                deadline=deadline,
            )
            return ResilientResult(
                value, QualityLevel.EXACT_FALLBACK, tuple(failures), rebuilt
            )
        except DeadlineExceededError as exc:
            self._deadline_failure(failures, QualityLevel.EXACT_FALLBACK, exc)
        try:
            value = door_count_knn(
                self.framework, position, k, deadline=deadline
            )
            return ResilientResult(
                value, QualityLevel.DOOR_COUNT, tuple(failures), rebuilt
            )
        except DeadlineExceededError as exc:
            self._deadline_failure(failures, QualityLevel.DOOR_COUNT, exc)
        value = euclidean_knn(self.framework, position, k)
        return ResilientResult(
            value, QualityLevel.EUCLIDEAN, tuple(failures), rebuilt
        )

    def distance(
        self, source: Point, target: Point, deadline: DeadlineLike = None
    ) -> ResilientResult:
        """Ladder-protected pt2pt distance; ``value`` is metres.

        The exact rung runs on the space's distance graph (not the M_d2d
        matrix), so index faults cannot corrupt it — only deadline pressure
        pushes this query down the ladder.
        """
        deadline = as_deadline(deadline)
        require_finite_position(source, "source position")
        require_finite_position(target, "target position")
        failures: List[RungFailure] = []
        try:
            value = self.engine.distance(source, target, deadline=deadline)
            return ResilientResult(
                value, QualityLevel.EXACT_INDEXED, tuple(failures)
            )
        except DeadlineExceededError as exc:
            self._deadline_failure(failures, QualityLevel.EXACT_INDEXED, exc)
        try:
            value = exact_fallback_distance(
                self.framework, source, target, deadline=deadline
            )
            return ResilientResult(
                value, QualityLevel.EXACT_FALLBACK, tuple(failures)
            )
        except DeadlineExceededError as exc:
            self._deadline_failure(failures, QualityLevel.EXACT_FALLBACK, exc)
        try:
            if deadline is not None:
                deadline.check("door-count distance")
            value = door_count_distance_value(self.framework, source, target)
            return ResilientResult(
                value, QualityLevel.DOOR_COUNT, tuple(failures)
            )
        except DeadlineExceededError as exc:
            self._deadline_failure(failures, QualityLevel.DOOR_COUNT, exc)
        value = euclidean_lower_bound(source, target)
        return ResilientResult(value, QualityLevel.EUCLIDEAN, tuple(failures))
