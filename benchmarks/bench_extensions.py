"""Benchmarks for the extension layers (not paper figures).

Covers the §VII-derived extensions so their costs are visible: temporal
snapshot materialisation, integrated indoor-outdoor distances, composite
queries, and continuous-monitor churn throughput.
"""

import random


from repro import IndoorObject, Point, QueryEngine
from repro.bench.harness import get_building
from repro.index import IndexFramework
from repro.model.figure1 import build_figure1
from repro.queries import aggregate_nn, distance_join, range_query_with_distances
from repro.synthetic import BuildingConfig, build_object_store, generate_building, random_positions
from repro.temporal import DoorSchedule, TemporalIndoorSpace
from repro.tracking import TrackingSession


def test_temporal_snapshot_build(benchmark):
    """Materialising a door-closure snapshot of a 10-floor building."""
    building = get_building(10)
    schedule = DoorSchedule()
    for staircase_id in building.staircase_ids[:4]:
        for door_id in building.space.topology.doors_of(staircase_id):
            schedule.set_closed(door_id)
    temporal = TemporalIndoorSpace(building.space, schedule)

    def build_snapshot():
        temporal._snapshots.clear()
        return temporal.snapshot(0.0)

    benchmark.pedantic(build_snapshot, rounds=3, iterations=1)


def test_temporal_distance_with_warm_snapshot(benchmark):
    building = get_building(10)
    schedule = DoorSchedule()
    temporal = TemporalIndoorSpace(building.space, schedule)
    positions = random_positions(building, 4, seed=61)
    temporal.distance(0.0, positions[0], positions[1])  # warm the snapshot

    def run():
        temporal.distance(0.0, positions[0], positions[1])
        temporal.distance(0.0, positions[2], positions[3])

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_composite_range_with_distances(benchmark):
    framework = IndexFramework.build(get_building(10).space).with_objects(
        build_object_store(get_building(10), 5_000, seed=3)
    )
    positions = random_positions(get_building(10), 10, seed=62)

    def run():
        for q in positions:
            range_query_with_distances(framework, q, 25.0)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_composite_aggregate_nn(benchmark):
    framework = IndexFramework.build(get_building(10).space).with_objects(
        build_object_store(get_building(10), 2_000, seed=4)
    )
    members = random_positions(get_building(10), 3, seed=63)
    benchmark.pedantic(
        aggregate_nn, args=(framework, members), kwargs={"k": 5},
        rounds=2, iterations=1,
    )


def test_composite_distance_join(benchmark):
    """Distance join over a small population (quadratic-ish by nature)."""
    framework = IndexFramework.build(build_figure1())
    rng = random.Random(9)
    for i in range(60):
        while True:
            candidate = Point(rng.uniform(0, 20), rng.uniform(0, 10))
            if framework.space.get_host_partition(candidate) is not None:
                framework.objects.add(IndoorObject(i, candidate))
                break
    benchmark.pedantic(distance_join, args=(framework, 5.0), rounds=2, iterations=1)


def test_tracking_churn_throughput(benchmark):
    """100 mixed mutations against 4 standing monitors."""
    building = generate_building(BuildingConfig(floors=2, rooms_per_floor=8))
    engine = QueryEngine.for_space(building.space)
    rng = random.Random(11)
    positions = random_positions(building, 120, seed=64)
    for i in range(20):
        engine.add_object(IndoorObject(i, positions[i]))
    session = TrackingSession(engine)
    anchors = random_positions(building, 4, seed=65)
    for anchor in anchors[:2]:
        session.watch_range(anchor, 15.0)
    for anchor in anchors[2:]:
        session.watch_knn(anchor, 5)

    moves = positions[20:]

    def churn():
        for step in range(100):
            live = [o.object_id for o in engine.framework.objects]
            session.move_object(
                live[step % len(live)], moves[step % len(moves)]
            )

    benchmark.pedantic(churn, rounds=1, iterations=1)


def test_integrated_campus_distance(benchmark):
    """Union-graph Dijkstra over a 10-floor building + a 100-node road grid."""
    from repro.outdoor import IntegratedSpace, RoadNetwork

    building = get_building(10)
    network = RoadNetwork()
    for row in range(10):
        for col in range(10):
            network.add_node(row * 10 + col, Point(col * 20 - 50, row * 20 + 20))
    for row in range(10):
        for col in range(10):
            nid = row * 10 + col
            if col < 9:
                network.add_edge(nid, nid + 1)
            if row < 9:
                network.add_edge(nid, nid + 10)
    integrated = IntegratedSpace(building.space, network)
    # Anchor the ground-floor staircase doors as entrances.
    for staircase_id in building.staircase_ids[:2]:
        for door_id in building.space.topology.doors_of(staircase_id):
            integrated.anchor(door_id, network.nearest_node(
                building.space.door(door_id).midpoint.on_floor(0)
            ))
    source = random_positions(building, 1, seed=66)[0]
    from repro.outdoor import OutdoorLocation

    target = OutdoorLocation(99)

    def run():
        return integrated.distance(source, target)

    benchmark.pedantic(run, rounds=3, iterations=1)
