"""One JSON-safe view of the overload-control state, for probes.

Both serving tiers surface the same payload — readiness endpoints,
``repro doctor``, and chaos reports all render it — so the counters are
named once here instead of being re-listed at every call site.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.overload.budget import RetryBudget
from repro.overload.limiter import AdaptiveConcurrencyLimiter
from repro.serve.metrics import MetricsRegistry, ScopedMetrics

#: Counters every overload-aware component feeds (zero until touched).
OVERLOAD_COUNTERS = (
    "serve.shed",
    "overload.hedged",
    "overload.hedge_wins",
    "overload.hedge_cancelled",
    "overload.budget_spent",
    "overload.budget_denied",
    "overload.limit_increased",
    "overload.limit_decreased",
)


def overload_snapshot(
    metrics: Union[MetricsRegistry, ScopedMetrics],
    *,
    limiter: Optional[AdaptiveConcurrencyLimiter] = None,
    budget: Optional[RetryBudget] = None,
) -> Dict[str, Any]:
    """Shed / hedge / budget counters plus component snapshots."""
    payload: Dict[str, Any] = {
        "counters": {
            name: metrics.counter(name).value for name in OVERLOAD_COUNTERS
        }
    }
    if limiter is not None:
        payload["limiter"] = limiter.snapshot()
    if budget is not None:
        payload["budget"] = budget.snapshot()
    return payload
