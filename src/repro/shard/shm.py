"""Shared-memory placement of the static distance indexes (M_d2d, M_idx).

The §IV-A matrices are immutable once built: every shard reads them, none
writes.  Keeping a private copy per worker process would multiply the
dominant memory cost (two N×N float64/int64 arrays) by the shard count and
— worse — force a respawned worker to either re-run the all-pairs builder
or re-parse a snapshot before serving again.

:class:`SharedIndexArena` instead publishes the arrays once, as
:mod:`multiprocessing.shared_memory` segments, and ships only the segment
*descriptor* (names, dtypes, shapes — plain JSON) inside each
:class:`~repro.shard.spec.ShardSpec`.  A restarting worker reattaches in
milliseconds and reassembles the index via
:meth:`~repro.index.distance_matrix.DistanceIndexMatrix.from_parts`,
skipping both the Algorithm-1 build and the M_idx argsort.

Ownership is strictly supervisor-side: workers ``close()`` their mapping
on exit but never ``unlink()``; the supervisor unlinks the segments during
shutdown.  Attached views are marked read-only so a buggy worker cannot
corrupt the matrices under its siblings — index damage stays a
:mod:`repro.chaos` *injected* fault, never an accidental one.
"""

from __future__ import annotations

import os
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.distance.matrix import DoorDistanceMatrix
from repro.index.distance_matrix import DistanceIndexMatrix

#: segment key -> attribute of the arena holding its view
_SEGMENTS = ("md2d", "order", "door_ids")

_name_lock = threading.Lock()
_name_seq = 0


def _next_segment_name(key: str) -> str:
    """A process-unique segment name (pid + monotonic counter — no uuid or
    wall clock, so arena creation stays deterministic per process)."""
    global _name_seq
    with _name_lock:
        _name_seq += 1
        seq = _name_seq
    return f"repro-shard-{os.getpid()}-{seq}-{key}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    On Python <= 3.12 every ``SharedMemory(name=...)`` attach registers the
    segment with a resource tracker, which unlinks it when *any* attached
    process exits — yanking the arena out from under the surviving shards
    (cpython#82300; 3.13 grew ``track=False`` for exactly this).  Only the
    creating supervisor may own the segment's lifetime, so attachment
    suppresses registration entirely.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedIndexArena:
    """The static distance indexes, mapped into shared memory.

    Exactly one process (the supervisor) calls :meth:`create` and later
    :meth:`unlink`; every worker calls :meth:`attach` with the descriptor
    and :meth:`close` on exit.

    Attributes:
        md2d: read-only N×N float64 view of M_d2d.
        order: read-only N×N int64 view of the M_idx scan order
            (matrix indices, not door ids — matching
            :attr:`DistanceIndexMatrix.scan_order`).
        door_ids: read-only length-N int64 view of the ascending door ids.
        owner: True only for the creating process.
    """

    def __init__(
        self,
        segments: Dict[str, shared_memory.SharedMemory],
        views: Dict[str, np.ndarray],
        descriptor: Dict,
        owner: bool,
    ) -> None:
        self._segments = segments
        self._views = views
        self._descriptor = descriptor
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, index: DistanceIndexMatrix) -> "SharedIndexArena":
        """Publish ``index``'s arrays into fresh shared-memory segments."""
        arrays = {
            "md2d": np.ascontiguousarray(index.md2d, dtype=np.float64),
            "order": np.ascontiguousarray(index.scan_order, dtype=np.int64),
            "door_ids": np.ascontiguousarray(index.door_ids, dtype=np.int64),
        }
        segments: Dict[str, shared_memory.SharedMemory] = {}
        views: Dict[str, np.ndarray] = {}
        described: Dict[str, Dict] = {}
        try:
            for key in _SEGMENTS:
                source = arrays[key]
                shm = shared_memory.SharedMemory(
                    name=_next_segment_name(key),
                    create=True,
                    size=max(1, source.nbytes),
                )
                segments[key] = shm
                view = np.ndarray(
                    source.shape, dtype=source.dtype, buffer=shm.buf
                )
                view[...] = source
                view.flags.writeable = False
                views[key] = view
                described[key] = {
                    "name": shm.name,
                    "dtype": str(source.dtype),
                    "shape": list(source.shape),
                }
        except BaseException:
            for shm in segments.values():
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            raise
        descriptor = {"doors": int(arrays["door_ids"].shape[0]),
                      "segments": described}
        return cls(segments, views, descriptor, owner=True)

    @classmethod
    def attach(cls, descriptor: Dict) -> "SharedIndexArena":
        """Map an existing arena from its JSON descriptor (worker side)."""
        segments: Dict[str, shared_memory.SharedMemory] = {}
        views: Dict[str, np.ndarray] = {}
        try:
            for key in _SEGMENTS:
                spec = descriptor["segments"][key]
                shm = _attach_untracked(spec["name"])
                segments[key] = shm
                view = np.ndarray(
                    tuple(spec["shape"]),
                    dtype=np.dtype(spec["dtype"]),
                    buffer=shm.buf,
                )
                view.flags.writeable = False
                views[key] = view
        except BaseException:
            for shm in segments.values():
                shm.close()
            raise
        return cls(segments, views, dict(descriptor), owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def md2d(self) -> np.ndarray:
        return self._views["md2d"]

    @property
    def order(self) -> np.ndarray:
        return self._views["order"]

    @property
    def door_ids(self) -> Tuple[int, ...]:
        return tuple(int(d) for d in self._views["door_ids"])

    @property
    def descriptor(self) -> Dict:
        """JSON-safe segment map; embed it in shard specs."""
        return self._descriptor

    def distance_index(self) -> DistanceIndexMatrix:
        """Assemble a :class:`DistanceIndexMatrix` over the shared views
        (no copy, no argsort — the millisecond-reattach path)."""
        distances = DoorDistanceMatrix(self.md2d, self.door_ids)
        return DistanceIndexMatrix.from_parts(distances, self.order)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (both sides, idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._views = {}
        for shm in self._segments.values():
            shm.close()

    def unlink(self) -> None:
        """Destroy the segments (owner only, after :meth:`close`)."""
        if not self.owner:
            raise ValueError("only the creating process may unlink the arena")
        self.close()
        for shm in self._segments.values():
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double shutdown
                pass

    def __enter__(self) -> "SharedIndexArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()
